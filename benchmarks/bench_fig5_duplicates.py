"""Figure 5 — bytecode-duplicate skew among proxies and logic contracts.

The paper: 19.6M proxies collapse to 96,420 unique bytecodes; the top three
clone families exceed a million copies each; logic contracts are mostly
unique with two >10k-duplicate outliers."""

from __future__ import annotations

from repro.landscape.survey import figure5_duplicates

from conftest import emit


def test_fig5_duplicate_skew(benchmark, sweep, landscape) -> None:
    census = benchmark(figure5_duplicates, sweep, landscape.node)

    def histogram_lines(counts: list[int], label: str) -> list[str]:
        lines = [f"{label}: {len(counts)} unique bytecodes, "
                 f"{sum(counts)} instances"]
        for rank, count in enumerate(counts[:8]):
            bar = "#" * max(1, int(40 * count / counts[0]))
            lines.append(f"  #{rank + 1:<3d} x{count:<6d} {bar}")
        if len(counts) > 8:
            lines.append(f"  ... {len(counts) - 8} more")
        return lines

    lines = histogram_lines(census.proxy_duplicate_counts, "proxies")
    lines.append("")
    lines.extend(histogram_lines(census.logic_duplicate_counts, "logics"))
    lines.append("")
    lines.append(f"top-3 proxy families hold {census.top_proxy_share(3):.1%} "
                 f"of all proxies (paper: 42%)")
    emit("fig5_duplicates", "\n".join(lines))

    assert census.unique_proxies < census.total_proxies
    assert census.top_proxy_share(3) > 0.25
    counts = census.proxy_duplicate_counts
    # Heavy-headed skew: the top family dwarfs the median.
    assert counts[0] >= 5 * counts[len(counts) // 2]
