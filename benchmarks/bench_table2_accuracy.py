"""Table 2 — collision-detection accuracy vs USCHunt and CRUSH.

Scores every tool's own pipeline on the labelled corpus under both
methodologies; the "union" methodology is the paper's §6.3 protocol (only
tool-flagged pairs are manually inspected).  Reproduction target: the
ordering — ProxioN above both baselines on storage, above USCHunt on
function — with ProxioN's FPs at zero and its FNs explained by emulation
errors and symbolic slots.
"""

from __future__ import annotations

from repro.landscape.accuracy import table2

from conftest import emit

PAPER = {
    ("storage", "USCHunt"): "TP=33 FP=83 TN=79 FN=11 accuracy=54.4%",
    ("storage", "CRUSH"): "TP=26 FP=76 TN=86 FN=18 accuracy=54.4%",
    ("storage", "Proxion"): "TP=27 FP=28 TN=134 FN=17 accuracy=78.2%",
    ("function", "USCHunt"): "TP=299 FP=1 TN=0 FN=261 accuracy=53.3%",
    ("function", "Proxion"): "TP=557 FP=0 TN=1 FN=3 accuracy=99.5%",
}


def test_table2_accuracy(benchmark, accuracy_corpus) -> None:
    union = benchmark(table2, accuracy_corpus, "union")
    full = table2(accuracy_corpus, methodology="all")

    lines = [f"labelled pairs: {len(accuracy_corpus.pairs)}", ""]
    for methodology, matrices in (("union (paper §6.3 protocol)", union),
                                  ("all labelled pairs", full)):
        lines.append(f"--- methodology: {methodology} ---")
        for collision_type, tools in matrices.items():
            for tool, matrix in tools.items():
                paper_row = PAPER.get((collision_type, tool), "")
                lines.append(f"{collision_type:8s} {tool:8s} {matrix.row()}"
                             + (f"   [paper: {paper_row}]" if paper_row else ""))
        lines.append("")
    emit("table2_accuracy", "\n".join(lines))

    for matrices in (union, full):
        assert (matrices["storage"]["Proxion"].accuracy
                > matrices["storage"]["USCHunt"].accuracy)
        assert (matrices["storage"]["Proxion"].accuracy
                > matrices["storage"]["CRUSH"].accuracy)
        assert (matrices["function"]["Proxion"].accuracy
                > matrices["function"]["USCHunt"].accuracy)
        assert matrices["storage"]["Proxion"].fp == 0
        assert matrices["function"]["Proxion"].fp == 0
