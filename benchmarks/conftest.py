"""Shared benchmark fixtures and the result emitter.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (also archived under
``benchmarks/results/``).  Populations are scaled (hundreds to thousands of
contracts instead of 36M); proportions, orderings and crossovers are the
reproduction target, not absolute counts — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.setrecursionlimit(20_000)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale factors (contracts generated per corpus).
LANDSCAPE_TOTAL = 700
ACCURACY_PAIRS_PER_CASE = 10


def emit(name: str, text: str) -> None:
    """Print a result block and archive it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def landscape():
    from repro.corpus.generator import generate_landscape
    return generate_landscape(total=LANDSCAPE_TOTAL, seed=2024)


@pytest.fixture(scope="session")
def upgraded_landscape():
    """A landscape with a boosted upgrade rate so Figure 6 has a tail."""
    from repro.corpus.generator import generate_landscape
    return generate_landscape(total=300, seed=77, upgrade_probability=0.5)


@pytest.fixture(scope="session")
def sweep(landscape):
    """One full ProxioN sweep shared by the §7 benches."""
    from repro.core.pipeline import Proxion
    proxion = Proxion(landscape.node, landscape.registry, landscape.dataset)
    return proxion.analyze_all()


@pytest.fixture(scope="session")
def accuracy_corpus():
    from repro.corpus.ground_truth import build_accuracy_corpus
    return build_accuracy_corpus(pairs_per_case=ACCURACY_PAIRS_PER_CASE,
                                 seed=2024)
