"""Shared benchmark fixtures and the result emitter.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (also archived under
``benchmarks/results/``).  Populations are scaled (hundreds to thousands of
contracts instead of 36M); proportions, orderings and crossovers are the
reproduction target, not absolute counts — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import pytest

sys.setrecursionlimit(20_000)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale factors (contracts generated per corpus).
LANDSCAPE_TOTAL = 700
ACCURACY_PAIRS_PER_CASE = 10


def emit(name: str, text: str, data: dict | None = None) -> None:
    """Print a result block and archive it under benchmarks/results/.

    Next to the human-readable ``<name>.txt``, a structured JSON row
    (``<name>.json``, schema ``repro.bench-row/1``) feeds the same perf
    trajectory the ``repro bench`` payloads use — pass ``data`` for
    machine-readable values, otherwise the text lines are archived as-is.
    Write failures surface as :class:`OSError` naming the target, instead
    of silently losing the run's results.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    row = {
        "schema": "repro.bench-row/1",
        "name": name,
        "created_unix": round(time.time(), 3),
        "lines": text.splitlines(),
        "data": data or {},
    }
    target = RESULTS_DIR / f"{name}.txt"
    try:
        RESULTS_DIR.mkdir(exist_ok=True)
        target.write_text(text + "\n", encoding="utf-8")
        target = RESULTS_DIR / f"{name}.json"
        target.write_text(json.dumps(row, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    except OSError as error:
        raise OSError(f"cannot archive benchmark result to {target}: "
                      f"{error}") from error


@pytest.fixture(scope="session")
def landscape():
    from repro.corpus.generator import generate_landscape
    return generate_landscape(total=LANDSCAPE_TOTAL, seed=2024)


@pytest.fixture(scope="session")
def upgraded_landscape():
    """A landscape with a boosted upgrade rate so Figure 6 has a tail."""
    from repro.corpus.generator import generate_landscape
    return generate_landscape(total=300, seed=77, upgrade_probability=0.5)


@pytest.fixture(scope="session")
def sweep(landscape):
    """One full ProxioN sweep shared by the §7 benches."""
    from repro.core.pipeline import Proxion
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    return proxion.analyze_all()


@pytest.fixture(scope="session")
def accuracy_corpus():
    from repro.corpus.ground_truth import build_accuracy_corpus
    return build_accuracy_corpus(pairs_per_case=ACCURACY_PAIRS_PER_CASE,
                                 seed=2024)
