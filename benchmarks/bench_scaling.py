"""Scaling — throughput stays flat as the landscape grows.

The paper processes 36M contracts in 65 hours (≈156/s) because every stage
is per-contract with dedup; nothing is super-linear.  The bench sweeps
growing corpora and checks contracts/second holds (the extrapolation that
justifies the full-mainnet run)."""

from __future__ import annotations

import time

from repro.core.pipeline import Proxion
from repro.corpus.generator import generate_landscape

from conftest import emit

SIZES = (150, 300, 600)


def test_sweep_scaling(benchmark) -> None:
    rows = []
    throughputs = []
    for size in SIZES:
        landscape = generate_landscape(total=size, seed=size)
        proxion = Proxion(landscape.node, registry=landscape.registry,
                          dataset=landscape.dataset)
        start = time.perf_counter()
        report = proxion.analyze_all()
        elapsed = time.perf_counter() - start
        throughput = len(report) / elapsed
        throughputs.append(throughput)
        rows.append(f"{len(report):>6d} contracts  {elapsed * 1000:>7.0f} ms  "
                    f"{throughput:>6.0f}/s  "
                    f"({len(report.proxies())} proxies)")

    # Benchmark the largest size for the timing table.
    landscape = generate_landscape(total=SIZES[-1], seed=SIZES[-1])

    def sweep():
        return Proxion(landscape.node, registry=landscape.registry,
                       dataset=landscape.dataset).analyze_all()

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    mainnet_hours = 36_000_000 / throughputs[-1] / 3600
    rows.append("")
    rows.append(f"extrapolated 36M-contract sweep at this rate: "
                f"{mainnet_hours:,.0f} h (paper: 65 h on 24 threads)")
    emit("scaling", "\n".join(rows))

    # Throughput does not collapse with size (allow 2.5x wobble).
    assert max(throughputs) / min(throughputs) < 2.5
