"""Figure 6 — logic-upgrade counts across proxies.

The paper: 99.7% of proxies never upgrade; the upgraded ones average 1.32
logic contracts; 68,804 upgrade events total.  Two series are produced: the
paper-calibrated rare-upgrade landscape (headline share) and a boosted one
exercising the histogram's tail."""

from __future__ import annotations

from repro.core.pipeline import Proxion
from repro.landscape.survey import figure6_upgrades

from conftest import emit


def test_fig6_upgrade_distribution(benchmark, sweep,
                                   upgraded_landscape) -> None:
    census = benchmark(figure6_upgrades, sweep)

    boosted_report = Proxion(
        upgraded_landscape.node, registry=upgraded_landscape.registry,
        dataset=upgraded_landscape.dataset).analyze_all()
    boosted = figure6_upgrades(boosted_report)

    lines = ["paper-calibrated landscape:",
             f"  proxies:           {census.total_proxies}",
             f"  never upgraded:    {census.never_upgraded_share:.1%} "
             f"(paper: 99.7%)",
             f"  upgrade events:    {census.total_upgrade_events}",
             "",
             "boosted-upgrade landscape (histogram tail):"]
    for upgrades in sorted(boosted.histogram):
        count = boosted.histogram[upgrades]
        bar = "#" * min(60, count)
        lines.append(f"  {upgrades:>3d} upgrades: {count:>5d} {bar}")
    lines.append(f"  mean logic contracts per upgraded proxy: "
                 f"{boosted.mean_logic_contracts:.2f} (paper: 1.32)")
    emit("fig6_upgrades", "\n".join(lines))

    assert census.never_upgraded_share > 0.95
    assert boosted.upgraded_proxies > 0
    assert 1.0 < boosted.mean_logic_contracts < 3.0
    # The histogram decays: no-upgrade bucket dominates even when boosted.
    assert boosted.histogram[0] == max(boosted.histogram.values())
