"""§6.2 — effectiveness vs USCHunt and CRUSH on their own terms.

Sanctuary-style comparison (all-source corpus): ProxioN completes more
analyses than USCHunt (whose compile halts cost ~30% of contracts) and so
finds more proxies and more collisions.  CRUSH-style comparison (full
landscape): ProxioN excludes library-call false positives, finds the
hidden (no-transaction) proxies CRUSH cannot see, and detects more
exploitable storage collisions.
"""

from __future__ import annotations

import pytest

from repro.baselines.crush import Crush
from repro.baselines.uschunt import USCHunt
from repro.core.proxy_detector import NotProxyReason

from conftest import emit


def test_vs_uschunt_on_sanctuary_like(benchmark, accuracy_corpus) -> None:
    """All-source corpus: completion rates, proxies found, collisions found."""
    corpus = accuracy_corpus
    addresses = sorted({pair.proxy for pair in corpus.pairs})
    uschunt = USCHunt(corpus.node, corpus.registry)

    from repro.core.proxy_detector import ProxyDetector
    detector = ProxyDetector(corpus.chain.state, corpus.chain.block_context())

    proxion_checks = benchmark(
        lambda: {address: detector.check(address) for address in addresses})

    uschunt_results = {address: uschunt.check(address)
                       for address in addresses}
    uschunt_halts = sum(1 for result in uschunt_results.values()
                        if result.halted)
    uschunt_proxies = {address for address, result in uschunt_results.items()
                       if result.is_proxy}
    proxion_failures = sum(
        1 for check in proxion_checks.values()
        if check.reason is NotProxyReason.EMULATION_ERROR)
    proxion_proxies = {address for address, check in proxion_checks.items()
                       if check.is_proxy}

    extra = proxion_proxies - uschunt_proxies
    extra_collisions = 0
    for pair in corpus.pairs:
        if pair.proxy in extra and pair.function_collision:
            extra_collisions += 1

    emit("sec62_vs_uschunt", "\n".join([
        f"contracts (all with source):  {len(addresses)}",
        f"USCHunt compile halts:        {uschunt_halts} "
        f"({uschunt_halts / len(addresses):.1%}; paper: ~30%)",
        f"ProxioN emulation failures:   {proxion_failures} "
        f"({proxion_failures / len(addresses):.1%}; paper: ~1.2%)",
        f"USCHunt proxies found:        {len(uschunt_proxies)}",
        f"ProxioN proxies found:        {len(proxion_proxies)} "
        f"(paper: 35,924 vs 29,023)",
        f"function collisions only ProxioN reaches: {extra_collisions} "
        f"(paper: +257)",
    ]))
    assert len(proxion_proxies) > len(uschunt_proxies)
    assert proxion_failures / len(addresses) < uschunt_halts / len(addresses)


@pytest.fixture(scope="module")
def crush_result(landscape):
    return Crush(landscape.node).mine_pairs(landscape.addresses())


def test_vs_crush_on_full_landscape(benchmark, landscape, sweep,
                                    crush_result) -> None:
    proxion_proxies = {a for a, r in sweep.analyses.items() if r.is_proxy}
    crush_proxies = crush_result.proxies

    benchmark(lambda: Crush(landscape.node).mine_pairs(
        landscape.addresses()[:100]))

    library_users = set(landscape.contracts_of_kind("library_user"))
    crush_library_fps = crush_proxies & library_users
    proxion_library_fps = proxion_proxies & library_users

    hidden_only_proxion = {
        address for address in proxion_proxies - crush_proxies
        if not landscape.chain.has_transactions(address)}

    proxion_verified = sum(
        1 for analysis in sweep.analyses.values()
        if analysis.has_verified_storage_exploit)
    crush_verified = sum(
        1 for report in Crush(landscape.node).analyze(
            sorted(crush_proxies)).storage_reports
        if report.has_verified_exploit)

    emit("sec62_vs_crush", "\n".join([
        f"landscape contracts:              {len(landscape.truths)}",
        f"CRUSH proxies (tx mining):        {len(crush_proxies)}",
        f"  incl. library-call FPs:         {len(crush_library_fps)}",
        f"ProxioN proxies:                  {len(proxion_proxies)}",
        f"  incl. library-call FPs:         {len(proxion_library_fps)} "
        f"(library exclusion, §2.2)",
        f"hidden proxies only ProxioN sees: {len(hidden_only_proxion)} "
        f"(paper: +1,667,905)",
        f"verified storage exploits:        ProxioN {proxion_verified} vs "
        f"CRUSH {crush_verified} (paper: +1,480)",
    ]))
    assert proxion_library_fps == set()
    assert crush_library_fps or not library_users
    assert hidden_only_proxion
    assert len(proxion_proxies - library_users) > len(
        crush_proxies - library_users)
    assert proxion_verified >= crush_verified
