"""§2.3 experiment — how cheap is crafting a colliding selector?

The paper: a colliding function name for ``free_ether_withdrawal()`` was
found after ~600M attempts in 1.5 hours on a commodity laptop.  This bench
mines a 12-bit prefix collision live, measures the hash rate, and
extrapolates the full 32-bit expected cost on this machine.
"""

from __future__ import annotations

from repro.core.selector_miner import (
    estimate_full_collision_attempts,
    estimate_full_collision_hours,
    mine_selector,
)
from repro.utils.abi import function_selector

from conftest import emit

TARGET = function_selector("free_ether_withdrawal()")   # 0xdf4a3106


def test_selector_mining(benchmark) -> None:
    result = benchmark.pedantic(
        lambda: mine_selector(TARGET, prefix_bits=12, max_attempts=200_000),
        rounds=1, iterations=1)
    assert result.found
    rate = result.attempts_per_second
    expected_attempts = estimate_full_collision_attempts()
    hours = estimate_full_collision_hours(rate)
    emit("selector_mining", "\n".join([
        f"target selector:            0x{TARGET.hex()} "
        f"(free_ether_withdrawal())",
        f"12-bit prefix collision:    {result.prototype!r} after "
        f"{result.attempts} attempts in {result.seconds:.2f}s",
        f"local hash rate:            {rate:,.0f} attempts/s (pure Python)",
        f"full 32-bit expected cost:  {expected_attempts:,} attempts "
        f"≈ {hours:,.1f} h at this rate",
        "paper (compiled hasher):    ~600M attempts in 1.5 h — the attack "
        "is accessible to any motivated adversary",
    ]))
    assert function_selector(result.prototype)[:1] == TARGET[:1]
