"""Ablation — bytecode-hash dedup and the disassembly prefilter.

Two of the paper's scaling levers, measured directly:

* §6.1's dedup: identical bytecode is emulated once (48 days instead of
  years for the storage sweep);
* §4.1's prefilter: bytecode without DELEGATECALL is rejected without
  spinning up the emulator at all.
"""

from __future__ import annotations

import time

from repro.core.pipeline import Proxion, ProxionOptions
from repro.core.proxy_detector import ProxyDetector
from repro.evm.disassembler import contains_delegatecall

from conftest import emit


def test_dedup_cache_speedup(benchmark, landscape) -> None:
    addresses = landscape.addresses()

    def run(dedup: bool) -> tuple[float, int]:
        proxion = Proxion(landscape.node, registry=landscape.registry,
                          dataset=landscape.dataset,
                          options=ProxionOptions(dedup_by_code_hash=dedup,
                                         detect_function_collisions=False,
                                         detect_storage_collisions=False))
        start = time.perf_counter()
        for address in addresses:
            proxion.check_proxy(address)
        return time.perf_counter() - start, len(proxion._check_cache)

    benchmark.pedantic(lambda: run(True), rounds=2, iterations=1)
    with_dedup, unique_codes = run(True)
    without_dedup, _ = run(False)
    speedup = without_dedup / with_dedup
    emit("ablation_dedup", "\n".join([
        f"contracts:            {len(addresses)}",
        f"unique bytecodes:     {unique_codes}",
        f"sweep without dedup:  {without_dedup * 1000:.0f} ms",
        f"sweep with dedup:     {with_dedup * 1000:.0f} ms",
        f"speedup:              {speedup:.1f}x "
        f"(the §6.1 optimization; grows with clone skew)",
    ]))
    assert unique_codes < len(addresses)
    assert speedup > 1.2


def test_prefilter_speedup(benchmark, landscape) -> None:
    """§4.1's DELEGATECALL prefilter vs emulating every contract."""
    state = landscape.chain.state
    block = landscape.chain.block_context()
    addresses = landscape.addresses()
    codes = [state.get_code(address) for address in addresses]

    def prefilter_only():
        return sum(1 for code in codes if code and contains_delegatecall(code))

    candidates = benchmark(prefilter_only)

    detector = ProxyDetector(state, block)
    start = time.perf_counter()
    for address in addresses:
        detector.check(address)
    full_pipeline = time.perf_counter() - start

    start = time.perf_counter()
    prefilter_only()
    prefilter_time = time.perf_counter() - start

    emit("ablation_prefilter", "\n".join([
        f"contracts:                  {len(addresses)}",
        f"pass the prefilter:         {candidates} "
        f"({candidates / len(addresses):.1%})",
        f"prefilter-only sweep:       {prefilter_time * 1000:.1f} ms",
        f"full two-step sweep:        {full_pipeline * 1000:.0f} ms",
        f"non-proxies rejected for free: "
        f"{len(addresses) - candidates}",
    ]))
    assert candidates < len(addresses)
    assert prefilter_time < full_pipeline
