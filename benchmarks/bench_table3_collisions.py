"""Table 3 — function and storage collisions per deployment year.

The paper's shape: collisions concentrate in 2021–2022 (the clone-factory
era) and ~98.7% of function collisions are byte-identical duplicates of one
contract family (OwnableDelegateProxy)."""

from __future__ import annotations

from repro.landscape.survey import YEARS, table3_collisions_by_year

from conftest import emit


def test_table3_collisions_by_year(benchmark, sweep) -> None:
    table = benchmark(table3_collisions_by_year, sweep)

    lines = [f"{'year':>4s}  {'function':>9s}  {'storage':>8s}"]
    for year in YEARS:
        lines.append(f"{year:>4d}  {table.function_by_year[year]:>9d}  "
                     f"{table.storage_by_year[year]:>8d}")
    lines.append(f"{'total':>4s}  {table.total_function_collisions:>9d}  "
                 f"{sum(table.storage_by_year.values()):>8d}")
    lines.append("")
    lines.append(f"duplicate share of function collisions: "
                 f"{table.duplicate_share:.1%} (paper: 98.7%)")
    emit("table3_collisions", "\n".join(lines))

    assert table.total_function_collisions > 0
    assert sum(table.storage_by_year.values()) > 0
    # 2021–2022 dominate, as in the paper.
    peak_years = sorted(table.function_by_year,
                        key=table.function_by_year.get)[-2:]
    assert set(peak_years) <= {2021, 2022, 2023}
    assert table.duplicate_share > 0.5
