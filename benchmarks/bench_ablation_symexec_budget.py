"""Ablation — symbolic-execution path budget vs storage-collision recall.

The CRUSH-style engine forks on every symbolic branch under a path budget.
Too small a budget truncates exploration and silently loses storage
accesses (and with them collisions); the bench measures where recall
saturates for compiler-idiomatic contracts, justifying the default.
"""

from __future__ import annotations

from repro.core.storage_collision import StorageCollisionDetector, profile_from_bytecode
from repro.core.symexec import SymbolicExecutor

from conftest import emit


def test_path_budget_vs_recall(benchmark, accuracy_corpus) -> None:
    corpus = accuracy_corpus
    positives = [pair for pair in corpus.pairs
                 if pair.case == "storage-positive"]
    detector = StorageCollisionDetector(
        corpus.registry, corpus.chain.state, corpus.chain.block_context())

    def recall_at(max_paths: int) -> float:
        found = 0
        for pair in positives:
            proxy_code = corpus.node.get_code(pair.proxy)
            logic_code = corpus.node.get_code(pair.logic)
            proxy_profile = profile_from_bytecode(
                proxy_code, pair.proxy,
                summary=SymbolicExecutor(max_paths=max_paths).summarize(
                    proxy_code),
                state=corpus.chain.state)
            logic_profile = profile_from_bytecode(
                logic_code, pair.logic,
                summary=SymbolicExecutor(max_paths=max_paths).summarize(
                    logic_code))
            if detector.compare_profiles(proxy_profile, logic_profile):
                found += 1
        return found / len(positives)

    benchmark(recall_at, 256)

    lines = [f"storage-positive pairs: {len(positives)}",
             f"{'max_paths':>9s}  {'recall':>7s}"]
    for budget in (1, 2, 4, 8, 32, 256):
        lines.append(f"{budget:>9d}  {recall_at(budget):>7.1%}")
    emit("ablation_symexec_budget", "\n".join(lines))

    assert recall_at(256) == 1.0
    assert recall_at(1) < 1.0  # a single path cannot cover the dispatcher
