"""§8.1 extension — measuring the emulation-vs-reality discrepancy.

The paper admits the extent of the §4.2 emulation's divergence from real
execution "is not known".  Here it is measured: every recorded transaction
on the landscape is replayed under the emulation conditions (latest-block
environment, current state) and compared to its true receipt; then again
with historical state to separate *state drift* from *environment drift*.
"""

from __future__ import annotations

from repro.core.emulation_fidelity import EmulationFidelityAuditor

from conftest import emit


def test_emulation_fidelity(benchmark, landscape) -> None:
    node = landscape.node
    addresses = landscape.addresses()

    auditor = EmulationFidelityAuditor(node)
    report = benchmark.pedantic(
        lambda: auditor.audit(addresses, max_transactions=300),
        rounds=1, iterations=1)

    historical = EmulationFidelityAuditor(
        node, use_historical_state=True).audit(addresses,
                                               max_transactions=300)

    emit("emulation_fidelity", "\n".join([
        f"transactions replayed:        {report.total}",
        "",
        "under §4.2 emulation conditions (latest block, current state):",
        f"  verdict agreement:          {report.verdict_agreement:.1%}",
        f"  delegate-target agreement:  {report.delegate_agreement:.1%}",
        f"  full fidelity:              {report.full_fidelity:.1%}",
        "",
        "with historical state (drift isolated to the environment):",
        f"  verdict agreement:          {historical.verdict_agreement:.1%}",
        f"  delegate-target agreement:  {historical.delegate_agreement:.1%}",
        f"  full fidelity:              {historical.full_fidelity:.1%}",
        "",
        "The §4.2 approximations keep the *proxy verdicts* (delegate-target",
        "agreement) near-perfect even as outputs drift — exactly why the",
        "detection criterion is the forwarding event, not the output.",
    ]))
    assert report.total > 50
    assert report.delegate_agreement > 0.9
    assert historical.full_fidelity >= report.full_fidelity
