"""Ablation — Algorithm 1's binary search vs the naive per-block scan,
and the exact change-point variant vs Algorithm 1's no-reuse assumption.

Quantifies the design decision of §4.3: the RPC saving (the paper's 26
calls vs millions of blocks) and the price of the no-reuse assumption
(value-reuse histories silently lose versions)."""

from __future__ import annotations

from repro.chain.blockchain import Blockchain
from repro.chain.node import ArchiveNode
from repro.core.logic_finder import (
    algorithm1_values,
    history_from_events,
    slot_change_points,
)
from repro.lang import compile_contract, stdlib
from repro.utils import encode_call
from repro.utils.hexutil import address_to_word

from conftest import emit

ALICE = b"\xaa" * 20


def _history_world(upgrades: int, reuse: bool = False):
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 24)
    logics = [chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet(f"L{i}", ALICE)).init_code
    ).created_address for i in range(max(2, upgrades + 1))]
    proxy = chain.deploy(
        ALICE,
        compile_contract(stdlib.storage_proxy("P", logics[0], ALICE)).init_code
    ).created_address
    sequence = [logics[0]]
    for step in range(upgrades):
        target = logics[0] if reuse and step % 2 else logics[
            (step + 1) % len(logics)]
        chain.advance_to_block(chain.latest_block_number + 40_000)
        chain.transact(ALICE, proxy,
                       encode_call("setImplementation(address)", [target]))
        sequence.append(target)
    chain.advance_to_block(chain.latest_block_number + 2_000_000)
    return chain, proxy, sequence


def test_rpc_savings_vs_naive(benchmark) -> None:
    chain, proxy, _ = _history_world(upgrades=3)
    node = ArchiveNode(chain)

    def run_algorithm1():
        node.api_calls.reset()
        values = algorithm1_values(node, proxy, 1)
        return values, node.api_calls.get("eth_getStorageAt")

    (values, calls) = benchmark(run_algorithm1)
    total_blocks = node.latest_block_number
    savings = total_blocks / calls
    emit("ablation_binary_search", "\n".join([
        f"chain height:          {total_blocks} blocks",
        f"distinct slot values:  {len(values)}",
        f"Algorithm 1 RPC calls: {calls}",
        f"naive scan RPC calls:  {total_blocks}",
        f"saving factor:         {savings:,.0f}x",
    ]))
    assert calls < 300
    assert savings > 1000


def test_events_vs_storage_recovery(benchmark) -> None:
    """Event-log recovery (one eth_getLogs) vs Algorithm 1 (storage reads):
    events are cheaper but only exist for EIP-1967-style emitting proxies
    and never cover the constructor-set implementation."""
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 24)
    logics = [chain.deploy(
        ALICE, compile_contract(stdlib.simple_wallet(f"L{i}", ALICE)).init_code
    ).created_address for i in range(4)]
    emitting = chain.deploy(ALICE, compile_contract(
        stdlib.eip1967_proxy("P", logics[0], ALICE)).init_code).created_address
    silent = chain.deploy(ALICE, compile_contract(
        stdlib.storage_proxy("S", logics[0], ALICE)).init_code).created_address
    for logic in logics[1:]:
        chain.advance_to_block(chain.latest_block_number + 50_000)
        chain.transact(ALICE, emitting,
                       encode_call("upgradeTo(address)", [logic]))
        chain.transact(ALICE, silent,
                       encode_call("setImplementation(address)", [logic]))
    node = ArchiveNode(chain)

    events = benchmark(history_from_events, node, emitting)
    from repro.lang.storage_layout import EIP1967_IMPLEMENTATION_SLOT
    node.api_calls.reset()
    storage_emitting = slot_change_points(node, emitting,
                                          EIP1967_IMPLEMENTATION_SLOT)
    storage_calls = node.api_calls.get("eth_getStorageAt")
    events_silent = history_from_events(node, silent)
    storage_silent = slot_change_points(node, silent, 1)

    emit("ablation_events_vs_storage", "\n".join([
        "EIP-1967 (emitting) proxy, 3 upgrades:",
        f"  event recovery:    {len(events)} upgrades via 1 eth_getLogs "
        f"(initial implementation invisible)",
        f"  storage recovery:  {len(storage_emitting)} change points via "
        f"{storage_calls} eth_getStorageAt calls (complete)",
        "non-standard (silent) proxy, 3 upgrades:",
        f"  event recovery:    {len(events_silent)} upgrades — blind",
        f"  storage recovery:  {len(storage_silent)} change points",
    ]))
    assert len(events) == 3
    assert len(storage_emitting) == 4        # constructor value + 3 upgrades
    assert events_silent == []
    assert len(storage_silent) == 4


def test_no_reuse_assumption_failure_mode(benchmark) -> None:
    """A→B→A histories: Algorithm 1 can under-report; change points never do."""
    chain, proxy, sequence = _history_world(upgrades=4, reuse=True)
    node = ArchiveNode(chain)

    algorithm1 = benchmark(lambda: algorithm1_values(node, proxy, 1))
    exact = slot_change_points(node, proxy, 1)

    truth_values = {address_to_word(address) for address in sequence}
    exact_values = {value for _, value in exact}
    emit("ablation_no_reuse", "\n".join([
        f"true distinct logic addresses: {len(truth_values)}",
        f"Algorithm 1 recovered:         "
        f"{len(algorithm1 - {0} & truth_values)} value(s)",
        f"exact change points recovered: "
        f"{len(exact_values & truth_values)} value(s) over "
        f"{len(exact)} change events",
    ]))
    assert exact_values >= truth_values
    assert len(exact) == len(sequence)
    # Algorithm 1 never invents values...
    assert algorithm1 - {0} <= truth_values
