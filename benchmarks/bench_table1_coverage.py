"""Table 1 — tool coverage matrix.

For each (source × transaction) availability quadrant, deploy a genuine
proxy and check which tools can classify it; for collisions, check which
tools can detect the honeypot (function) and Audius (storage) pairs with
and without source.  Regenerates the paper's ✓-matrix from actual tool
runs, not assertions.
"""

from __future__ import annotations

import pytest

from repro.baselines.crush import Crush
from repro.baselines.etherscan_like import EtherscanVerifier
from repro.baselines.salehi import SalehiReplay
from repro.baselines.slither_like import SlitherKeyword
from repro.baselines.uschunt import USCHunt
from repro.chain.blockchain import Blockchain
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.proxy_detector import ProxyDetector
from repro.core.storage_collision import StorageCollisionDetector
from repro.lang import compile_contract, contract_source_of, stdlib

from conftest import emit

ALICE = b"\xaa" * 20
BOB = b"\xbb" * 20


def _build_quadrant_world():
    """Four storage proxies, one per availability quadrant, plus collision
    pairs with and without source."""
    chain = Blockchain()
    chain.fund(ALICE, 10 ** 24)
    chain.fund(BOB, 10 ** 24)
    registry = SourceRegistry()
    node = ArchiveNode(chain)

    def deploy(contract):
        receipt = chain.deploy(ALICE, compile_contract(contract).init_code)
        assert receipt.success
        return receipt.created_address

    logic = deploy(stdlib.simple_wallet("Logic", ALICE))
    quadrants = {}
    for has_source in (True, False):
        for has_tx in (True, False):
            name = f"P{'S' if has_source else 'x'}{'T' if has_tx else 'x'}"
            contract = stdlib.storage_proxy(name, logic, ALICE)
            address = deploy(contract)
            if has_source:
                registry.verify(address, contract_source_of(contract),
                                compile_contract(contract).runtime_code)
            if has_tx:
                chain.transact(BOB, address, b"\xf0\x0d\xba\xbe" + b"\x00" * 32)
            quadrants[(has_source, has_tx)] = address

    # Collision pairs: honeypot (function) and audius (storage), one copy
    # verified, one hidden.
    pairs = {}
    for label, with_source in (("src", True), ("nosrc", False)):
        hp_logic_ast = stdlib.honeypot_logic(f"G{label}")
        hp_logic = deploy(hp_logic_ast)
        hp_ast = stdlib.honeypot_proxy(f"HP{label}", hp_logic, ALICE)
        hp = deploy(hp_ast)
        au_logic_ast = stdlib.audius_logic(f"AL{label}")
        au_logic = deploy(au_logic_ast)
        au_ast = stdlib.audius_proxy(f"AP{label}", au_logic, ALICE)
        au = deploy(au_ast)
        chain.transact(BOB, hp, b"\xf0\x0d\xba\xbe")
        chain.transact(BOB, au, b"\xf0\x0d\xba\xbe")
        if with_source:
            for address, contract in ((hp, hp_ast), (hp_logic, hp_logic_ast),
                                      (au, au_ast), (au_logic, au_logic_ast)):
                registry.verify(address, contract_source_of(contract),
                                compile_contract(contract).runtime_code)
        pairs[label] = {"function": (hp, hp_logic), "storage": (au, au_logic)}
    return chain, node, registry, quadrants, pairs


@pytest.fixture(scope="module")
def world():
    return _build_quadrant_world()


def _mark(flag: bool) -> str:
    return "v" if flag else "."


def test_table1_coverage(benchmark, world) -> None:
    chain, node, registry, quadrants, pairs = world

    proxion_detector = ProxyDetector(chain.state, chain.block_context())
    benchmark(lambda: [proxion_detector.check(a) for a in quadrants.values()])

    tools = {
        "EtherScan": lambda a: EtherscanVerifier(node).is_proxy(a),
        "Slither": lambda a: bool(SlitherKeyword(node, registry).is_proxy(a)),
        "Salehi": lambda a: SalehiReplay(node).is_proxy(a),
        "USCHunt": lambda a: USCHunt(node, registry).check(a).is_proxy,
        "CRUSH": lambda a: a in Crush(node).mine_pairs([a]).proxies,
        "Proxion": lambda a: proxion_detector.check(a).is_proxy,
    }

    lines = ["Smart-contract coverage (proxy detected per availability "
             "quadrant: src+tx / src-only / tx-only / hidden)",
             f"{'tool':10s}  src+tx  src-only  tx-only  hidden"]
    for tool_name, check in tools.items():
        row = [check(quadrants[(s, t)])
               for (s, t) in ((True, True), (True, False),
                              (False, True), (False, False))]
        lines.append(f"{tool_name:10s}  {_mark(row[0]):^6s}  {_mark(row[1]):^8s}"
                     f"  {_mark(row[2]):^7s}  {_mark(row[3]):^6s}")

    # Collision coverage.
    function_detector = FunctionCollisionDetector(registry)
    storage_detector = StorageCollisionDetector(registry, chain.state,
                                                chain.block_context())
    uschunt = USCHunt(node, registry)
    crush = Crush(node)

    def uschunt_function(pair):
        return bool(uschunt.function_collisions(*pair))

    def uschunt_storage(pair):
        return bool(uschunt.storage_collisions(*pair))

    def crush_storage(pair):
        mined = crush.mine_pairs([pair[0]])
        return pair in mined.pairs and crush.storage_collisions(
            *pair).has_collision

    def proxion_function(pair):
        return function_detector.detect(
            node.get_code(pair[0]), node.get_code(pair[1]),
            pair[0], pair[1]).has_collision

    def proxion_storage(pair):
        return storage_detector.detect(
            node.get_code(pair[0]), node.get_code(pair[1]),
            pair[0], pair[1], verify_exploits=False).has_collision

    lines.append("")
    lines.append("Collision coverage (detected: function/storage × "
                 "with/without source)")
    lines.append(f"{'tool':10s}  fn+src  fn-nosrc  st+src  st-nosrc")
    for tool_name, fn_check, st_check in (
            ("USCHunt", uschunt_function, uschunt_storage),
            ("CRUSH", None, crush_storage),
            ("Proxion", proxion_function, proxion_storage)):
        fn_src = fn_check(pairs["src"]["function"]) if fn_check else False
        fn_nosrc = fn_check(pairs["nosrc"]["function"]) if fn_check else False
        st_src = st_check(pairs["src"]["storage"])
        st_nosrc = st_check(pairs["nosrc"]["storage"])
        lines.append(f"{tool_name:10s}  {_mark(fn_src):^6s}  {_mark(fn_nosrc):^8s}"
                     f"  {_mark(st_src):^6s}  {_mark(st_nosrc):^8s}")

    text = "\n".join(lines)
    emit("table1_coverage", text)

    # The paper's novel cells: only ProxioN covers the hidden quadrant and
    # bytecode-only function collisions.
    assert proxion_detector.check(quadrants[(False, False)]).is_proxy
    assert proxion_function(pairs["nosrc"]["function"])
    assert proxion_storage(pairs["nosrc"]["storage"])
    assert not uschunt_function(pairs["nosrc"]["function"])
