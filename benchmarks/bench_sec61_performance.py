"""§6.1 — performance: per-contract check latency, throughput, RPC economy.

The paper reports 6.4 ms per proxy check (156 contracts/second), ~26
``getStorageAt`` calls per storage proxy, and 6.7 ms per function-collision
check.  Absolute numbers depend on hardware; the reproduction target is
millisecond-scale checks and double-digit RPC counts against million-block
histories.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core.function_collision import FunctionCollisionDetector
from repro.core.logic_finder import LogicFinder
from repro.core.proxy_detector import ProxyDetector

from conftest import emit


@pytest.fixture(scope="module")
def detector(landscape) -> ProxyDetector:
    return ProxyDetector(landscape.chain.state,
                         landscape.chain.block_context())


def test_proxy_check_latency(benchmark, landscape, detector) -> None:
    addresses = landscape.addresses()

    def sweep():
        for address in addresses:
            detector.check(address)

    benchmark.pedantic(sweep, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    per_contract_ms = seconds / len(addresses) * 1000
    throughput = len(addresses) / seconds
    emit("sec61_proxy_check", "\n".join([
        f"contracts analyzed:      {len(addresses)}",
        f"mean per-contract check: {per_contract_ms:.2f} ms   (paper: 6.4 ms)",
        f"throughput:              {throughput:.0f} contracts/s "
        f"(paper: 156.3 /s)",
    ]))
    assert per_contract_ms < 100


def test_getstorageat_economy(benchmark, landscape, detector) -> None:
    """API calls per storage proxy for full logic-history recovery."""
    node = landscape.node
    storage_proxies = []
    for address, truth in landscape.truths.items():
        if truth.is_proxy and truth.standard in ("Others", "EIP-1967",
                                                 "EIP-1822"):
            check = detector.check(address)
            if check.is_proxy and check.logic_slot is not None:
                storage_proxies.append(check)
    finder = LogicFinder(node)

    def recover_all():
        return [finder.find(check) for check in storage_proxies]

    histories = benchmark.pedantic(recover_all, rounds=2, iterations=1)
    calls = [history.api_calls_used for history in histories]
    total_blocks = node.latest_block_number
    emit("sec61_getstorageat", "\n".join([
        f"storage proxies:            {len(storage_proxies)}",
        f"chain height:               {total_blocks} blocks",
        f"mean getStorageAt calls:    {statistics.mean(calls):.1f} "
        f"(paper: ~26)",
        f"max getStorageAt calls:     {max(calls)}",
        f"naive per-block scan cost:  {total_blocks} calls per proxy",
    ]))
    assert statistics.mean(calls) < 100
    assert max(calls) < total_blocks / 1000


def test_function_collision_latency(benchmark, landscape) -> None:
    node = landscape.node
    detector = FunctionCollisionDetector(landscape.registry)
    pairs = []
    for address, truth in landscape.truths.items():
        if truth.is_proxy and truth.logic_addresses:
            logic = truth.logic_addresses[0]
            pairs.append((node.get_code(address), node.get_code(logic)))
    pairs = pairs[:100]

    def check_all():
        for proxy_code, logic_code in pairs:
            detector.detect(proxy_code, logic_code)

    benchmark.pedantic(check_all, rounds=3, iterations=1)
    per_pair_ms = benchmark.stats.stats.mean / len(pairs) * 1000
    emit("sec61_function_collision", "\n".join([
        f"pairs checked:        {len(pairs)}",
        f"mean per-pair check:  {per_pair_ms:.2f} ms   (paper: 6.7 ms)",
    ]))
    assert per_pair_ms < 100
