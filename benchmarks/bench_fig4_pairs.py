"""Figure 4 — accumulated proxy/logic pairs by source availability.

The paper's shape: pair counts track the proxy boom; in the vast majority
of pairs the proxy has only bytecode (the orange/red curves dominate), and
roughly 90% of proxies lack source.
"""

from __future__ import annotations

from repro.landscape.survey import (
    PAIR_BOTH_SOURCE,
    PAIR_CLASSES,
    YEARS,
    figure4_pair_availability,
)

from conftest import emit


def test_fig4_pair_availability(benchmark, sweep, landscape) -> None:
    series = benchmark(figure4_pair_availability, sweep, landscape.node,
                       landscape.registry)

    lines = [f"{'year':>4s}  " + "  ".join(f"{c:>18s}" for c in PAIR_CLASSES)]
    for year in YEARS:
        row = series[year]
        lines.append(f"{year:>4d}  "
                     + "  ".join(f"{row[c]:>18d}" for c in PAIR_CLASSES))
    final = series[2023]
    total = sum(final.values())
    proxy_no_source = final["only-logic-source"] + final["no-source"]
    lines.append("")
    lines.append(f"total pairs: {total}")
    lines.append(f"pairs whose proxy lacks source: "
                 f"{proxy_no_source / total:.1%} (paper: ~90%)")
    emit("fig4_pairs", "\n".join(lines))

    assert total > 0
    assert proxy_no_source > final[PAIR_BOTH_SOURCE]
    # Cumulative monotonicity.
    for pair_class in PAIR_CLASSES:
        values = [series[year][pair_class] for year in YEARS]
        assert values == sorted(values)
