"""Table 4 — proxy design-standard census.

The paper: EIP-1167 minimal proxies dominate at 89.05%, EIP-1967 at 1.00%,
EIP-1822 at 0.12%, and 9.83% non-standard ("Others")."""

from __future__ import annotations

from repro.landscape.survey import table4_standards

from conftest import emit

PAPER_SHARES = {"EIP-1167": 0.8905, "EIP-1822": 0.0012,
                "EIP-1967": 0.0100, "Others": 0.0983}


def test_table4_standards_census(benchmark, sweep) -> None:
    rows = benchmark(table4_standards, sweep)

    lines = [f"{'standard':10s}  {'count':>6s}  {'share':>7s}  {'paper':>7s}"]
    for standard, (count, share) in rows.items():
        lines.append(f"{standard:10s}  {count:>6d}  {share:>7.2%}  "
                     f"{PAPER_SHARES[standard]:>7.2%}")
    emit("table4_standards", "\n".join(lines))

    shares = {standard: share for standard, (_, share) in rows.items()}
    # Ordering reproduces: minimal >> others > 1967 > 1822.
    assert shares["EIP-1167"] > shares["Others"]
    assert shares["Others"] > shares["EIP-1967"]
    assert shares["EIP-1967"] >= shares["EIP-1822"]
    assert shares["EIP-1167"] > 0.5
