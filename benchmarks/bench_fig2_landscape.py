"""Figure 2 — accumulated alive contracts by availability quadrant.

Regenerates the four cumulative curves (source-only, source+tx, tx-only,
hidden) over 2015–2023.  The paper's shape: hidden + tx-only dominate;
source availability stays below ~20%; growth explodes after 2020.
"""

from __future__ import annotations

from repro.landscape.survey import (
    HIDDEN,
    QUADRANTS,
    SOURCE_AND_TX,
    SOURCE_ONLY,
    YEARS,
    figure2_accumulated_contracts,
)

from conftest import emit


def test_fig2_accumulated_contracts(benchmark, sweep) -> None:
    series = benchmark(figure2_accumulated_contracts, sweep)

    lines = [f"{'year':>4s}  " + "  ".join(f"{q:>12s}" for q in QUADRANTS)
             + f"  {'total':>8s}"]
    for year in YEARS:
        row = series[year]
        total = sum(row.values())
        lines.append(f"{year:>4d}  "
                     + "  ".join(f"{row[q]:>12d}" for q in QUADRANTS)
                     + f"  {total:>8d}")
    final = series[2023]
    total = sum(final.values())
    with_source = final[SOURCE_ONLY] + final[SOURCE_AND_TX]
    with_tx = final[SOURCE_AND_TX] + final["tx-only"]
    lines.append("")
    lines.append(f"with source: {with_source / total:6.1%}   (paper: ~18%)")
    lines.append(f"with tx:     {with_tx / total:6.1%}   (paper: ~53%)")
    lines.append(f"hidden:      {final[HIDDEN] / total:6.1%}   "
                 f"(the quadrant only ProxioN covers)")
    emit("fig2_landscape", "\n".join(lines))

    # Shape assertions.
    assert with_source / total < 0.40
    assert final[HIDDEN] > 0
    growth_pre_2020 = sum(series[2019][q] for q in QUADRANTS)
    growth_post_2020 = total - growth_pre_2020
    assert growth_post_2020 > growth_pre_2020  # the post-2020 surge
