"""Parallel sharded landscape sweeps (§7 at scale).

Public surface:

* :class:`~repro.parallel.spec.SweepSpec` — pickle-able description of a
  sweep a worker can rebuild from scratch;
* :func:`~repro.parallel.shard.shard_addresses` /
  :data:`~repro.parallel.shard.STRATEGIES` — deterministic partitioning;
* :func:`~repro.parallel.engine.run_sharded_sweep` — the engine: fan out,
  analyze, merge back to one deterministic
  :class:`~repro.core.report.LandscapeReport`;
* :class:`~repro.parallel.supervisor.SupervisorConfig` /
  :func:`~repro.parallel.supervisor.run_supervised_sweep` — the sweep
  supervisor behind the multi-process path: heartbeat-monitored workers,
  respawn-with-resume, poison-shard bisection.

Both sweep entry points accept ``events_path`` to write a
``repro.events/1`` flight-recorder journal (:mod:`repro.obs.events`) —
the live feed behind ``repro status`` / ``repro tail`` and the
``--serve-obs`` HTTP endpoints.

See ``docs/parallelism.md`` for the byte-identity guarantees per shard
strategy and ``docs/robustness.md`` for the supervision failure model.
"""

from repro.parallel.engine import (
    ShardedSweepResult,
    ShardStats,
    run_sharded_sweep,
)
from repro.parallel.shard import STRATEGIES, shard_addresses
from repro.parallel.spec import SweepSpec
from repro.parallel.supervisor import (
    SupervisionStats,
    SupervisorConfig,
    run_supervised_sweep,
)

__all__ = [
    "STRATEGIES",
    "ShardStats",
    "ShardedSweepResult",
    "SupervisionStats",
    "SupervisorConfig",
    "SweepSpec",
    "run_sharded_sweep",
    "run_supervised_sweep",
    "shard_addresses",
]
