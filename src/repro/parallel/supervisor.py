"""The sweep supervisor: self-healing process-level fault tolerance.

``run_sharded_sweep`` used to drive a bare ``multiprocessing.Pool.map``:
one OOM-killed worker aborted the whole sweep, and one wedged worker hung
it forever — precisely the failure modes a §6.1-scale multi-day run hits.
This module replaces the pool with a **supervisor**: per-shard worker
processes launched individually, each with

* a **heartbeat channel** — the worker pings a ``multiprocessing`` queue
  once at startup and once per completed contract (hooked into its shard
  checkpoint), so the parent always knows how stale every worker is;
* a **monitor loop** — the parent detects dead workers by ``exitcode``
  and hung workers by heartbeat age (``shard_timeout_s``), kills the hung
  ones, and respawns either kind *resuming from the shard's own
  ``repro.checkpoint/1`` file* (every supervised shard keeps one, in a
  private temp directory when the caller did not ask for checkpoints);
* **poison-shard bisection** — a shard that keeps sinking its worker past
  ``max_shard_retries`` is salvaged (completed prefix recovered from its
  checkpoint, tolerating a crash-truncated tail) and its *pending* suffix
  is split in two; each half gets a fresh retry budget, recursively, until
  the crash is pinned to a single contract, which is quarantined as a
  cause-classified ``worker-crash`` :class:`~repro.core.report.ContractFailure`
  — the merged report stays complete, and every healthy contract is
  analyzed exactly once.

Crash-free, the supervised sweep is **byte-identical** to both the old
pool engine and the serial sweep (codehash strategy): supervision changes
how workers are babysat, never what they compute.  Under crash injection
(the ``worker-*`` fault plans in :mod:`repro.chain.faults`) the report is
identical *modulo* the quarantined ``worker-crash`` records — the
invariant ``tools/check_supervised_sweep.py`` gates in CI.

Supervision is observable: ``parallel.respawns``, ``parallel.hung_kills``,
``parallel.poison_contracts`` counters and the high-water
``parallel.heartbeat_lag_seconds`` gauge land in the merged registry, and
poison contracts also count under ``pipeline.quarantined{cause=worker-crash}``
like every other quarantine.

With ``events_path`` set, the supervisor is also the flight recorder's
primary author (:mod:`repro.obs.events`): it journals every spawn, exit,
respawn, hung-kill, bisection and quarantine, plus a throttled
``supervisor.tick`` per live worker carrying completed-count and
heartbeat lag (the raw feed of ``repro status`` / ``/healthz``).  Each
worker keeps a *private* per-attempt journal in the supervisor's
workdir — narrating its pipeline starts, checkpoint resumes, contract
quarantines and breaker trips from inside the process — and when the
worker is reaped (cleanly or not) the parent folds that file into the
parent journal over the same crash-safe channel as results; readers
recover the total order from the events' monotonic timestamps.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, WorkerCrash, classify_cause
from repro.core.report import ContractFailure
from repro.landscape.checkpoint import SweepCheckpoint, shard_checkpoint_path
from repro.landscape.merge import _COUNTER_FIELDS
from repro.landscape.serialize import analysis_to_dict, failure_to_dict
from repro.obs import events as ev
from repro.obs.events import EventJournal, EventRecorder, NULL_RECORDER


@dataclass(slots=True)
class SupervisorConfig:
    """Knobs of the monitor loop (CLI: ``--shard-timeout`` /
    ``--max-shard-retries``).

    ``shard_timeout_s`` is a *per-contract* staleness bound, not a shard
    duration: the heartbeat ticks once per completed contract, so it must
    exceed worker startup (world build) plus the slowest single contract
    — never the whole shard.  ``max_shard_retries`` is how many failures
    one task absorbs by plain respawn-and-resume before the supervisor
    escalates to bisection.
    """

    shard_timeout_s: float = 30.0
    max_shard_retries: int = 2
    poll_interval_s: float = 0.02
    #: Throttle for ``supervisor.tick`` flight-recorder events (one per
    #: live worker per interval) when an events journal is wired.
    tick_interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.shard_timeout_s <= 0:
            raise ConfigurationError("shard_timeout_s must be positive")
        if self.max_shard_retries < 1:
            raise ConfigurationError("max_shard_retries must be >= 1 "
                                     "(0 would bisect on the first crash)")


@dataclass(slots=True)
class SupervisionStats:
    """What the monitor loop did to keep the sweep alive."""

    respawns: int = 0            # dead/hung workers relaunched (resume)
    hung_kills: int = 0          # workers killed for heartbeat staleness
    poison_contracts: int = 0    # single contracts quarantined by bisection
    bisections: int = 0          # task splits performed
    worker_launches: int = 0     # processes started, all causes
    max_heartbeat_lag_s: float = 0.0


class _HeartbeatCheckpoint:
    """A checkpoint decorator that pings the supervisor per contract.

    Wraps the worker's real :class:`SweepCheckpoint`: every record is
    written through (durability first), then one heartbeat is emitted
    carrying the completed-count so far — the parent uses it both for
    staleness detection and for the per-shard progress it journals in
    ``supervisor.tick`` events.  The restore surface is delegated so
    ``analyze_all`` sees a normal checkpoint.
    """

    def __init__(self, inner: SweepCheckpoint,
                 beat: Callable[[int], None]) -> None:
        self._inner = inner
        self._beat = beat

    # Restore surface (read by analyze_all on resume).
    @property
    def completed(self):
        return self._inner.completed

    @property
    def skipped(self):
        return self._inner.skipped

    @property
    def recovered_truncations(self) -> int:
        return self._inner.recovered_truncations

    def restored_analyses(self):
        return self._inner.restored_analyses()

    def restored_failures(self):
        return self._inner.restored_failures()

    # Recording surface (one heartbeat per completed contract).
    def record_analysis(self, analysis) -> None:
        self._inner.record_analysis(analysis)
        self._beat(len(self._inner.completed))

    def record_failure(self, failure) -> None:
        self._inner.record_failure(failure)
        self._beat(len(self._inner.completed))

    def record_skip(self, address: bytes) -> None:
        self._inner.record_skip(address)
        self._beat(len(self._inner.completed))

    def close(self) -> None:
        self._inner.close()


def _supervised_worker(task: tuple, heartbeat_queue) -> None:
    """Worker entry point: analyze one task, write its result atomically.

    Results travel as a JSON *file* (written to ``.tmp`` then
    ``os.replace``\\ d), not through a queue: a worker killed mid-transfer
    must never corrupt the parent's channel, and an ``os._exit`` mid-write
    leaves only an invisible temp file.  The heartbeat queue carries only
    ``(task_id, completed_count)`` — small enough for atomic pipe writes.

    ``events_path`` (optional) names this attempt's *private*
    flight-recorder journal: the worker narrates its pipeline and breaker
    events there, one flushed line each, and the parent folds the file
    into the merged journal after reaping the process — so even an
    ``os._exit`` or SIGKILL loses at most one half-written line, which
    the tail-tolerant reader drops.

    ``audit_dir`` (optional, last tuple slot) is the *shared* verdict
    provenance directory: the worker writes one atomic
    ``repro.evidence/1`` file per contract straight into it.  No folding
    needed — shards partition addresses, so each contract has exactly
    one writer, and a respawned attempt simply rewrites the files for
    contracts it re-analyzes (checkpoint-restored contracts keep the
    evidence the dead attempt already persisted).

    ``store_spec`` (optional, last tuple slot) is the durable-store
    binding spec ``(main_store_path, incremental)``: the worker writes
    analysis facts through to its *own* ``PATH.shardNN`` store (single
    writer per file — the parent folds shard stores after the merge) and,
    when incremental, warms its caches read-only from the main store.
    Bisected halves of one shard share the shard store; SQLite WAL plus
    the 30s busy timeout absorbs that concurrency.
    """
    (spec, task_id, shard_index, addresses, checkpoint_path, resume,
     result_path, events_path, audit_dir, store_spec) = task

    def beat(completed: int = 0) -> None:
        try:
            heartbeat_queue.put((task_id, completed))
        except (OSError, ValueError):
            pass  # parent gone; finishing the shard is still useful

    beat()  # alive before the (possibly slow) world build
    from repro.parallel.engine import _analyze_shard, _world_for

    journal: EventJournal | None = None
    events = NULL_RECORDER
    if events_path is not None:
        journal = EventJournal.create(events_path)
        events = EventRecorder(sinks=(journal,), shard=shard_index)
    binding = None
    try:
        try:
            world = _world_for(spec)
            if store_spec is not None:
                from repro.store.binding import open_worker_binding
                binding = open_worker_binding(store_spec, shard_index)
            proxion = spec.build_proxion(world, events=events,
                                         audit=audit_dir, store=binding)
            beat()  # world built, analysis starting

            if resume and os.path.exists(checkpoint_path):
                inner = SweepCheckpoint.resume(checkpoint_path, addresses)
            else:
                inner = SweepCheckpoint.start(checkpoint_path, addresses)
            checkpoint = _HeartbeatCheckpoint(inner, beat)
            try:
                result = _analyze_shard(proxion, shard_index, addresses,
                                        checkpoint)
            finally:
                checkpoint.close()
        except ConfigurationError as error:
            # Misconfiguration (e.g. a mismatched checkpoint fingerprint) is
            # NOT a crash: respawning or bisecting would silently "heal" an
            # operator mistake.  Ship it to the parent, which fails loudly.
            result = {"fatal": str(error)}
    finally:
        if binding is not None:
            binding.close()
        if journal is not None:
            journal.close()

    tmp_path = result_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(result, stream, separators=(",", ":"))
    os.replace(tmp_path, result_path)


@dataclass(slots=True)
class _Task:
    """One supervised unit of work: a root shard or a bisected sub-range."""

    task_id: int
    shard: int                   # original shard index (stats/merge key)
    addresses: list[bytes]
    checkpoint_path: str
    resume: bool
    attempts: int = 0            # failed launches of this task so far
    depth: int = 0               # bisection depth (0 = root shard)


@dataclass(slots=True)
class _Running:
    process: Any
    task: _Task
    last_beat: float
    events_path: str | None = None   # this attempt's private journal
    completed: int = 0               # last heartbeat's completed-count


def _empty_result(shard: int) -> dict[str, Any]:
    return {
        "shard": shard,
        "addresses": 0,
        "analyses": [],
        "failures": [],
        "counters": dict.fromkeys(_COUNTER_FIELDS, 0),
        "metrics": {},
        "wall_s": 0.0,
        "cpu_s": 0.0,
    }


def _salvage(task: _Task) -> tuple[dict[str, Any], set[bytes]]:
    """Recover a failed task's completed prefix from its checkpoint.

    Returns a partial result dict (possibly empty) plus the completed
    address set (skips included).  Tolerates everything a crash can leave
    behind — missing file, headerless file, truncated tail — because this
    runs precisely after workers died ungracefully.
    """
    try:
        checkpoint = SweepCheckpoint.resume(task.checkpoint_path,
                                            task.addresses)
    except (ConfigurationError, OSError):
        return _empty_result(task.shard), set()
    try:
        result = _empty_result(task.shard)
        result["analyses"] = [analysis_to_dict(analysis)
                              for analysis in checkpoint.restored_analyses()]
        result["failures"] = [failure_to_dict(failure)
                              for failure in checkpoint.restored_failures()]
        completed = set(checkpoint.completed)
    finally:
        checkpoint.close()
    return result, completed


def run_supervised_sweep(spec, *,
                         workers: int = 4,
                         strategy: str = "codehash",
                         addresses: Sequence[bytes] | None = None,
                         checkpoint_path: str | None = None,
                         resume: bool = False,
                         world: Any = None,
                         config: SupervisorConfig | None = None,
                         progress: Callable[[str], None] | None = None,
                         events_path: str | None = None,
                         audit_dir: str | None = None,
                         store_spec: tuple[str, bool] | None = None):
    """Run one landscape sweep under supervision and merge deterministically.

    The drop-in process backend of
    :func:`repro.parallel.engine.run_sharded_sweep` — same parameters plus
    ``config`` and ``events_path``.  ``events_path``, when set, is where
    the merged ``repro.events/1`` flight-recorder journal is written
    (typically next to the checkpoint); ``repro status`` / ``repro tail``
    and the ``/healthz`` probe read it live.  ``audit_dir``, when set,
    turns on verdict provenance: every worker attaches an
    :class:`~repro.obs.provenance.AuditDir` over that shared directory
    and persists one evidence file per contract — atomically, so crashed
    attempts never leave a corrupt file, and respawn/bisection replays
    only rewrite what they re-analyze.  ``store_spec``
    (``(main_store_path, incremental)``, optional) wires each worker to
    a durable analysis store: workers write facts to their own
    ``PATH.shardNN`` stores (the parent — ``run_sharded_sweep`` — folds
    them back into the main store after the merge, the checkpoint idiom).
    Returns the same :class:`~repro.parallel.engine.ShardedSweepResult`
    (with its supervision fields populated).
    """
    # Imported here, not at module top: engine imports this module lazily
    # and the two would otherwise be circular.
    from repro.obs.registry import MetricsRegistry
    from repro.parallel.engine import (
        ShardStats,
        ShardedSweepResult,
        _partial_report,
        _plant_parent_world,
        _world_for,
    )
    from repro.landscape.merge import merge_reports
    from repro.parallel.shard import shard_addresses

    config = config or SupervisorConfig()
    wall_start = time.perf_counter()
    say = progress or (lambda message: None)

    if world is None:
        world = _world_for(spec)
    _plant_parent_world(spec, world)
    if addresses is None:
        addresses = world.addresses()
    addresses = list(addresses)

    def code_of(address: bytes) -> bytes:
        return world.chain.state.get_code(address)

    partitions = shard_addresses(addresses, workers, strategy,
                                 code_of=code_of)
    say(f"sweeping {len(addresses)} contracts across {workers} supervised "
        f"shard(s), strategy={strategy}, timeout={config.shard_timeout_s}s, "
        f"retries={config.max_shard_retries}")

    journal: EventJournal | None = None
    events = NULL_RECORDER
    if events_path is not None:
        journal = EventJournal.create(events_path)
        events = EventRecorder(sinks=(journal,))
    events.emit(ev.SWEEP_START, contracts=len(addresses), workers=workers,
                strategy=strategy, chaos=spec.chaos,
                timeout_s=config.shard_timeout_s)

    # Every supervised shard checkpoints — respawn-with-resume depends on
    # it.  Callers that did not ask for durable checkpoints get throwaway
    # ones in a private temp directory.
    workdir = tempfile.mkdtemp(prefix="repro-supervised-")
    if checkpoint_path is not None:
        base = checkpoint_path
    else:
        base = os.path.join(workdir, "sweep.ckpt")

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    heartbeats = context.Queue()

    stats = SupervisionStats()
    next_task_id = 0

    def new_task(shard: int, task_addresses: list[bytes],
                 path: str | None = None, *, resume_task: bool = False,
                 depth: int = 0) -> _Task:
        nonlocal next_task_id
        task_id = next_task_id
        next_task_id += 1
        if path is None:
            path = f"{base}.task{task_id:03d}"
        return _Task(task_id=task_id, shard=shard,
                     addresses=task_addresses, checkpoint_path=path,
                     resume=resume_task, depth=depth)

    pending: deque[_Task] = deque()
    for index, partition in enumerate(partitions):
        pending.append(new_task(index, list(partition),
                                shard_checkpoint_path(base, index),
                                resume_task=resume))

    running: dict[int, _Running] = {}
    results: list[dict[str, Any]] = []
    shard_wall: dict[int, float] = dict.fromkeys(range(workers), 0.0)
    shard_cpu: dict[int, float] = dict.fromkeys(range(workers), 0.0)

    def result_path_of(task: _Task) -> str:
        return os.path.join(workdir, f"task{task.task_id:03d}.result.json")

    def launch(task: _Task) -> None:
        stats.worker_launches += 1
        worker_events = None
        if journal is not None:
            # One private journal per attempt: a respawn must not append
            # to (or clobber mid-read) its predecessor's file.
            worker_events = os.path.join(
                workdir,
                f"task{task.task_id:03d}.a{task.attempts}.events.jsonl")
        payload = (spec, task.task_id, task.shard, task.addresses,
                   task.checkpoint_path, task.resume, result_path_of(task),
                   worker_events, audit_dir, store_spec)
        process = context.Process(target=_supervised_worker,
                                  args=(payload, heartbeats), daemon=True)
        process.start()
        running[task.task_id] = _Running(process=process, task=task,
                                         last_beat=time.monotonic(),
                                         events_path=worker_events)
        events.emit(ev.WORKER_SPAWN, shard=task.shard, task=task.task_id,
                    attempt=task.attempts, depth=task.depth,
                    total=len(task.addresses), worker_pid=process.pid)

    def ingest_worker_journal(worker: _Running) -> None:
        """Fold a reaped worker's private journal into the merged one.

        Runs precisely when workers may have died ungracefully, so it
        tolerates everything a crash leaves behind: no file (died before
        the header fsync), or a truncated final line (dropped by the
        tail-tolerant reader).  Events are re-emitted verbatim — the
        worker's own pid/mono/seq provenance is the merge key.
        """
        if journal is None or worker.events_path is None:
            return
        try:
            loaded = ev.read_journal(worker.events_path)
        except (ConfigurationError, OSError):
            return
        for event in loaded.events:
            journal.append_record(event.to_dict())

    def collect(task: _Task) -> bool:
        """Ingest a finished worker's result file; False if it is unusable."""
        path = result_path_of(task)
        try:
            with open(path, encoding="utf-8") as stream:
                result = json.load(stream)
        except (OSError, json.JSONDecodeError):
            return False
        if "fatal" in result:
            raise ConfigurationError(
                f"shard {task.shard} worker: {result['fatal']}")
        # Addresses crossed the JSON boundary: analyses/failures carry hex
        # strings and _partial_report reverses them, nothing to fix here.
        results.append(result)
        shard_wall[task.shard] = shard_wall.get(task.shard, 0.0) \
            + float(result.get("wall_s", 0.0))
        shard_cpu[task.shard] = shard_cpu.get(task.shard, 0.0) \
            + float(result.get("cpu_s", 0.0))
        return True

    def quarantine_poison(task: _Task, address: bytes,
                          error: WorkerCrash) -> None:
        stats.poison_contracts += 1
        failure = ContractFailure(address=address,
                                  cause=classify_cause(error),
                                  error=str(error), stage="worker")
        result = _empty_result(task.shard)
        result["failures"] = [failure_to_dict(failure)]
        results.append(result)
        events.emit(ev.SUPERVISOR_QUARANTINE, shard=task.shard,
                    task=task.task_id, address="0x" + address.hex(),
                    error=str(error))
        say(f"poison contract 0x{address.hex()} quarantined "
            f"({error})")

    def escalate(task: _Task, error: WorkerCrash) -> None:
        """Past the retry budget: salvage, then bisect or quarantine."""
        salvaged, completed = _salvage(task)
        if salvaged["analyses"] or salvaged["failures"]:
            results.append(salvaged)
            events.emit(ev.SUPERVISOR_SALVAGE, shard=task.shard,
                        task=task.task_id,
                        analyses=len(salvaged["analyses"]),
                        failures=len(salvaged["failures"]))
        remaining = [address for address in task.addresses
                     if address not in completed]
        if not remaining:
            return  # the crash hit after the final record — nothing lost
        if len(remaining) == 1:
            quarantine_poison(task, remaining[0], error)
            return
        stats.bisections += 1
        middle = len(remaining) // 2
        events.emit(ev.SUPERVISOR_BISECT, shard=task.shard,
                    task=task.task_id, pending=len(remaining),
                    depth=task.depth)
        say(f"bisecting shard {task.shard} (depth {task.depth}): "
            f"{len(remaining)} contracts still pending after "
            f"{task.attempts} failures")
        for half in (remaining[:middle], remaining[middle:]):
            pending.append(new_task(task.shard, half, depth=task.depth + 1))

    def on_failure(task: _Task, error: WorkerCrash) -> None:
        task.attempts += 1
        if task.attempts <= config.max_shard_retries:
            stats.respawns += 1
            task.resume = True  # pick up from the shard's own checkpoint
            events.emit(ev.WORKER_RESPAWN, shard=task.shard,
                        task=task.task_id, attempt=task.attempts,
                        error=str(error))
            say(f"worker for shard {task.shard} died ({error}); respawn "
                f"{task.attempts}/{config.max_shard_retries}")
            pending.append(task)
        else:
            escalate(task, error)

    last_tick = time.monotonic()
    try:
        while pending or running:
            while pending and len(running) < workers:
                launch(pending.popleft())

            # Drain heartbeats (stale task ids — from workers already
            # collected or killed — are simply ignored).
            while True:
                try:
                    task_id, completed = heartbeats.get_nowait()
                except queue_module.Empty:
                    break
                worker = running.get(task_id)
                if worker is not None:
                    worker.last_beat = time.monotonic()
                    if completed > worker.completed:
                        worker.completed = completed

            now = time.monotonic()
            if (events.enabled and running
                    and now - last_tick >= config.tick_interval_s):
                last_tick = now
                for worker in running.values():
                    events.emit(ev.SUPERVISOR_TICK, shard=worker.task.shard,
                                task=worker.task.task_id,
                                completed=worker.completed,
                                total=len(worker.task.addresses),
                                lag_s=round(now - worker.last_beat, 3))

            for task_id in list(running):
                worker = running[task_id]
                process, task = worker.process, worker.task
                exitcode = process.exitcode
                if exitcode is not None:
                    process.join()
                    del running[task_id]
                    ingest_worker_journal(worker)
                    if exitcode == 0 and collect(task):
                        events.emit(ev.WORKER_EXIT, shard=task.shard,
                                    task=task.task_id, exitcode=0,
                                    clean=True, completed=worker.completed)
                        continue
                    events.emit(ev.WORKER_EXIT, shard=task.shard,
                                task=task.task_id, exitcode=exitcode,
                                clean=False, completed=worker.completed)
                    on_failure(task, WorkerCrash(
                        f"worker exited with code {exitcode}"
                        + ("" if exitcode else " without a result"),
                        shard=task.shard, exitcode=exitcode,
                        attempts=task.attempts + 1))
                    continue
                lag = now - worker.last_beat
                if lag > stats.max_heartbeat_lag_s:
                    stats.max_heartbeat_lag_s = lag
                if lag > config.shard_timeout_s:
                    stats.hung_kills += 1
                    process.terminate()
                    process.join(timeout=0.5)
                    if process.is_alive():
                        process.kill()
                        process.join()
                    del running[task_id]
                    ingest_worker_journal(worker)
                    events.emit(ev.WORKER_HUNG_KILL, shard=task.shard,
                                task=task.task_id, lag_s=round(lag, 3),
                                completed=worker.completed)
                    on_failure(task, WorkerCrash(
                        f"worker hung (heartbeat {lag:.2f}s > "
                        f"shard timeout {config.shard_timeout_s}s)",
                        shard=task.shard, exitcode=process.exitcode,
                        hung=True, attempts=task.attempts + 1))

            if running:
                time.sleep(config.poll_interval_s)
    finally:
        for worker in running.values():
            worker.process.kill()
            worker.process.join()
        heartbeats.close()
        heartbeats.join_thread()
        # Result files are transient either way; durable checkpoints (when
        # the caller asked for them) live under ``checkpoint_path``, not
        # here, and survive.
        shutil.rmtree(workdir, ignore_errors=True)

    results.sort(key=lambda result: result["shard"])
    report = merge_reports([_partial_report(result) for result in results],
                           order=addresses)
    metrics = MetricsRegistry()
    for result in results:
        metrics.merge_state(result["metrics"])
    metrics.counter("parallel.respawns").inc(stats.respawns)
    metrics.counter("parallel.hung_kills").inc(stats.hung_kills)
    metrics.counter("parallel.poison_contracts").inc(stats.poison_contracts)
    metrics.counter("parallel.bisections").inc(stats.bisections)
    metrics.gauge("parallel.heartbeat_lag_seconds").max(
        stats.max_heartbeat_lag_s)
    if stats.poison_contracts:
        metrics.counter("pipeline.quarantined", cause="worker-crash").inc(
            stats.poison_contracts)

    events.emit(ev.SWEEP_END, analyses=len(report.analyses),
                failures=len(report.failures), respawns=stats.respawns,
                hung_kills=stats.hung_kills,
                poison_contracts=stats.poison_contracts,
                bisections=stats.bisections,
                wall_s=round(time.perf_counter() - wall_start, 6))
    if journal is not None:
        journal.close()

    shards = [ShardStats(shard=index, addresses=len(partition),
                         wall_s=shard_wall.get(index, 0.0),
                         cpu_s=shard_cpu.get(index, 0.0))
              for index, partition in enumerate(partitions)]
    outcome = ShardedSweepResult(
        report=report, metrics=metrics, shards=shards, workers=workers,
        strategy=strategy, wall_s=time.perf_counter() - wall_start,
        supervised=True, respawns=stats.respawns,
        hung_kills=stats.hung_kills,
        poison_contracts=stats.poison_contracts)
    say(f"merged {len(report.analyses)} analyses, "
        f"{len(report.failures)} failures under supervision "
        f"({stats.respawns} respawns, {stats.hung_kills} hung kills, "
        f"{stats.poison_contracts} poison contracts)")
    return outcome


__all__ = [
    "SupervisionStats",
    "SupervisorConfig",
    "run_supervised_sweep",
]
