"""The sharded sweep engine: N workers, one merged, deterministic report.

``run_sharded_sweep`` partitions a landscape's address list with
:mod:`repro.parallel.shard`, runs one :class:`~repro.core.pipeline.Proxion`
per shard, and folds the partial results back into a single
:class:`~repro.core.report.LandscapeReport` plus one merged
:class:`~repro.obs.registry.MetricsRegistry`.

Determinism is the design center, not an afterthought:

* workers ship results as the *serialized* analysis/failure dicts
  (:func:`~repro.landscape.serialize.analysis_to_dict`), whose round-trip
  through :func:`~repro.landscape.serialize.dict_to_analysis` is exact
  w.r.t. ``report_to_dict`` — so nothing is lost crossing the process
  boundary;
* :func:`~repro.landscape.merge.merge_reports` re-emits contracts in the
  original sweep order, making the merged report independent of worker
  completion order;
* under the default ``codehash`` strategy the merged report serializes
  **byte-identically** to a serial ``analyze_all`` over the same
  addresses (see :mod:`repro.parallel.shard` for why).

Process model: the ``fork`` start method is preferred — the parent plants
its generated world in a module global before launching workers, and
children inherit it copy-on-write, skipping regeneration.  Under
``spawn`` (or when a child's inherited world does not match the spec) the
worker rebuilds the world from its pickle-able
:class:`~repro.parallel.spec.SweepSpec` and memoizes it per process.
``processes=False`` runs every shard sequentially in-process through the
*same* worker function — the fast, deterministic path the test suite
leans on.

The multi-process path is no longer a bare ``Pool.map``: it delegates to
the **sweep supervisor** (:mod:`repro.parallel.supervisor`), which
launches one monitored process per shard, respawns dead or hung workers
from their shard checkpoints, and bisects poison shards down to the
single quarantinable contract.  Crash-free, the supervised sweep computes
exactly what the pool did — same workers' code path, same merge — so
every determinism guarantee above carries over unchanged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.report import LandscapeReport
from repro.landscape.checkpoint import SweepCheckpoint, shard_checkpoint_path
from repro.landscape.merge import _COUNTER_FIELDS, merge_reports
from repro.landscape.serialize import (
    analysis_to_dict,
    dict_to_analysis,
    dict_to_failure,
    failure_to_dict,
)
from repro.obs.registry import MetricsRegistry
from repro.parallel.shard import shard_addresses
from repro.parallel.spec import SweepSpec

# Planted by the parent before forking so children inherit the generated
# world copy-on-write instead of regenerating it.  Keyed by
# ``SweepSpec.world_key()`` — a child whose spec does not match rebuilds.
_PARENT_WORLD: tuple[tuple, Any] | None = None

# Per-worker-process memo for spawn-style rebuilds (one worker may run
# several shards of the same sweep).
_WORLD_CACHE: dict[tuple, Any] = {}


def _plant_parent_world(spec: SweepSpec, world: Any) -> None:
    global _PARENT_WORLD
    _PARENT_WORLD = (spec.world_key(), world)


def _world_for(spec: SweepSpec) -> Any:
    key = spec.world_key()
    if _PARENT_WORLD is not None and _PARENT_WORLD[0] == key:
        return _PARENT_WORLD[1]
    world = _WORLD_CACHE.get(key)
    if world is None:
        world = spec.build_world()
        _WORLD_CACHE[key] = world
    return world


def _analyze_shard(proxion: Any, shard_index: int,
                   addresses: Sequence[bytes],
                   checkpoint: Any) -> dict[str, Any]:
    """Analyze one shard and shape the result as a JSON-able wire dict.

    Shared by the pool-era worker (:func:`_run_shard`) and the
    supervisor's monitored worker — everything in the return value is
    plain JSON-able data, and the parent reconstructs the partial report
    through the exact serialization round-trip, which is what makes the
    merge byte-faithful.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    report = proxion.analyze_all(addresses, checkpoint=checkpoint)
    return {
        "shard": shard_index,
        "addresses": len(addresses),
        "analyses": [analysis_to_dict(analysis)
                     for analysis in report.analyses.values()],
        "failures": [failure_to_dict(failure)
                     for failure in report.failures.values()],
        "counters": {name: getattr(report, name)
                     for name in _COUNTER_FIELDS},
        "metrics": proxion.metrics.state(),
        "wall_s": time.perf_counter() - wall_start,
        "cpu_s": time.process_time() - cpu_start,
    }


def _run_shard(task: tuple, events=None) -> dict[str, Any]:
    """In-process worker: analyze one shard, return a pickle-able dict.

    Still the backbone of the sequential (``processes=False``) path; the
    supervised path runs the same :func:`_analyze_shard` core behind a
    heartbeat-wrapped checkpoint instead.  ``events`` (an
    :class:`~repro.obs.events.EventRecorder`, sequential path only) lets
    the in-process shards narrate into the caller's flight recorder.
    """
    # The sixth/seventh slots (audit_dir, store_spec) are optional so
    # pre-provenance 5-tuples keep working (older checkpoint drivers,
    # the pool-era tests).
    spec, shard_index, addresses, checkpoint_path, resume, *rest = task
    audit_dir = rest[0] if rest else None
    store_spec = rest[1] if len(rest) > 1 else None
    world = _world_for(spec)
    binding = None
    if store_spec is not None:
        from repro.store.binding import open_worker_binding
        binding = open_worker_binding(store_spec, shard_index)
    proxion = spec.build_proxion(world, events=events, audit=audit_dir,
                                 store=binding)

    checkpoint: SweepCheckpoint | None = None
    if checkpoint_path is not None:
        path = shard_checkpoint_path(checkpoint_path, shard_index)
        if resume and os.path.exists(path):
            checkpoint = SweepCheckpoint.resume(path, addresses)
        else:
            checkpoint = SweepCheckpoint.start(path, addresses)
    try:
        return _analyze_shard(proxion, shard_index, addresses, checkpoint)
    finally:
        if checkpoint is not None:
            checkpoint.close()
        if binding is not None:
            binding.close()


def _partial_report(result: dict[str, Any]) -> LandscapeReport:
    """Rebuild one shard's :class:`LandscapeReport` from the wire dict."""
    report = LandscapeReport()
    for record in result["analyses"]:
        report.add(dict_to_analysis(record))
    for record in result["failures"]:
        report.add_failure(dict_to_failure(record))
    for name, value in result["counters"].items():
        setattr(report, name, value)
    return report


@dataclass(slots=True)
class ShardStats:
    """Per-shard accounting of one sharded sweep."""

    shard: int
    addresses: int
    wall_s: float
    cpu_s: float


@dataclass(slots=True)
class ShardedSweepResult:
    """Everything a sharded sweep produces, merged and per-shard."""

    report: LandscapeReport
    metrics: MetricsRegistry
    shards: list[ShardStats]
    workers: int
    strategy: str
    wall_s: float = 0.0
    #: Supervision accounting — only populated by the supervised
    #: (multi-process) path; the sequential path leaves the defaults.
    supervised: bool = False
    respawns: int = 0
    hung_kills: int = 0
    poison_contracts: int = 0
    #: Contracts restored from the durable store instead of re-analyzed
    #: (``--store --incremental`` sweeps only).
    store_restored: int = 0

    @property
    def sum_shard_cpu_s(self) -> float:
        return sum(stats.cpu_s for stats in self.shards)

    @property
    def max_shard_cpu_s(self) -> float:
        return max((stats.cpu_s for stats in self.shards), default=0.0)

    @property
    def critical_path_speedup(self) -> float:
        """CPU-work parallelism: total shard CPU over the slowest shard.

        On a host with at least ``workers`` free cores this is (up to
        pool overhead) the achievable wall-clock speedup; on a saturated
        or single-core host wall time cannot beat the CPU sum, so this
        is the honest hardware-independent number to report.
        """
        slowest = self.max_shard_cpu_s
        return self.sum_shard_cpu_s / slowest if slowest else 1.0


def _remove_store_files(path: str) -> None:
    """Delete one SQLite database and its WAL sidecars."""
    for candidate in (path, path + "-wal", path + "-shm"):
        try:
            os.remove(candidate)
        except OSError:
            pass


def _salvage_shard_stores(store, store_path: str,
                          say: Callable[[str], None]) -> None:
    """Fold leftover shard stores of a killed sweep into the main store.

    A ``kill -9`` of the *parent* mid-merge (or mid-sweep) leaves
    ``PATH.shardNN`` files whose committed rows are a consistent prefix
    of each worker's progress (per-contract transactions).  Recovering
    them before this sweep starts means ``--incremental`` resumes from
    everything any worker ever committed; unmergeable leftovers are
    discarded with a warning — they are this sweep's own temp files,
    never operator data.
    """
    import glob

    for shard_path in sorted(glob.glob(store_path + ".shard[0-9][0-9]")):
        try:
            store.merge_from(shard_path)
            say(f"store: salvaged stale shard store {shard_path}")
        except Exception as error:
            say(f"store: stale shard store {shard_path!r} not mergeable "
                f"({error}) — discarded")
        _remove_store_files(shard_path)


def _fold_store(result: ShardedSweepResult, store, restored,
                addresses: list[bytes], code_of, spec: SweepSpec,
                workers: int, store_path: str,
                say: Callable[[str], None]) -> ShardedSweepResult:
    """Post-sweep store work: fold restored prefix, merge shard stores."""
    from repro.store.binding import (
        replayed_counter_baseline,
        shard_store_path,
    )

    if restored is not None and restored.completed:
        prefix = LandscapeReport()
        for analysis in restored.analyses:
            prefix.add(analysis)
        for failure in restored.failures:
            prefix.add_failure(failure)
        report = merge_reports([prefix, result.report], order=addresses)
        # The dedup counters a from-scratch sweep would have accrued over
        # the restored prefix — replayed from the restored analyses, never
        # read from the store (a kill -9 could leave stored counters
        # stale; the committed rows themselves cannot lie).
        baseline = replayed_counter_baseline(restored.analyses, code_of,
                                             spec.options)
        for name, value in baseline.items():
            setattr(report, name, getattr(report, name) + value)
        result.report = report
        result.store_restored = (len(restored.analyses)
                                 + len(restored.failures))
        result.metrics.counter("pipeline.store_restored_contracts").inc(
            result.store_restored)
        result.metrics.counter("pipeline.store_restored_skips").inc(
            len(restored.skips))
        if restored.invalidated:
            result.metrics.counter("store.invalidated_instances").inc(
                restored.invalidated)
    for shard in range(workers):
        path = shard_store_path(store_path, shard)
        if not os.path.exists(path):
            continue
        try:
            store.merge_from(path)
        except Exception as error:
            say(f"store: shard store {path!r} not mergeable ({error}) — "
                f"discarded (its contracts were still merged into the "
                f"report from the worker's result)")
        _remove_store_files(path)
    try:
        store.close()
    except Exception as error:
        say(f"store: closing {store_path!r} failed ({error})")
    return result


def run_sharded_sweep(spec: SweepSpec, *,
                      workers: int = 4,
                      strategy: str = "codehash",
                      addresses: Sequence[bytes] | None = None,
                      checkpoint_path: str | None = None,
                      resume: bool = False,
                      world: Any = None,
                      processes: bool = True,
                      progress: Callable[[str], None] | None = None,
                      supervise: Any = None,
                      events_path: str | None = None,
                      audit_dir: str | None = None,
                      store_path: str | None = None,
                      incremental: bool = False,
                      ) -> ShardedSweepResult:
    """Run one landscape sweep across ``workers`` shards and merge.

    ``world`` (optional) is a pre-generated landscape matching ``spec`` —
    passed by callers that already hold one (the CLI, the bench harness)
    so the parent does not regenerate it.  ``addresses`` defaults to the
    world's full address list.  ``checkpoint_path`` is the *base* path;
    each shard keeps its own ``.shardNN`` file and resumes independently
    when ``resume`` is set.  ``processes=False`` runs the shards
    sequentially in this process (identical results, no worker
    processes); ``processes=True`` runs them under the sweep supervisor,
    tuned by ``supervise`` (a
    :class:`~repro.parallel.supervisor.SupervisorConfig`, defaulted).
    ``events_path``, when set, writes the ``repro.events/1``
    flight-recorder journal there (see :mod:`repro.obs.events`) — the
    supervised path journals the full worker lifecycle, the sequential
    path the pipeline-level narrative.  ``audit_dir``, when set, turns
    on verdict provenance (:mod:`repro.obs.provenance`): every worker
    writes one ``repro.evidence/1`` file per contract into that shared
    directory (shards partition addresses, so each contract has exactly
    one writer), and the merged report's analyses carry evidence
    digests.

    ``store_path`` binds the sweep to a durable ``repro.store/1``
    database (:mod:`repro.store`): the parent opens (or creates,
    quarantining corruption) the main store, each worker writes a
    private ``PATH.shardNN`` store — single writer per file, the
    checkpoint idiom — and the parent folds the shard stores back after
    the merge.  With ``incremental`` the parent first restores every
    instance the store has already settled (validating stored codehashes
    against the live code) and dispatches only the pending delta; the
    merged report is byte-identical to a from-scratch sweep of the same
    corpus.
    """
    wall_start = time.perf_counter()
    say = progress or (lambda message: None)

    if world is None:
        world = _world_for(spec)
    _plant_parent_world(spec, world)

    if addresses is None:
        addresses = world.addresses()
    addresses = list(addresses)

    def code_of(address: bytes) -> bytes:
        # Metrics-free read straight off the simulated state: sharding and
        # store restore are bookkeeping, not RPC traffic, and must not
        # perturb counters (or be perturbed by chaos wrappers).
        return world.chain.state.get_code(address)

    store = None
    restored = None
    store_spec: tuple[str, bool] | None = None
    pending = addresses
    if store_path is not None:
        from repro.store.binding import open_store, restore_instances
        store = open_store(store_path)
        if store is not None:
            store_spec = (store_path, incremental)
            _salvage_shard_stores(store, store_path, say)
            if incremental:
                restored = restore_instances(store, addresses, code_of)
                pending = [address for address in addresses
                           if address not in restored.completed]
                say(f"store: restored {len(restored.analyses)} analyses, "
                    f"{len(restored.failures)} failures, "
                    f"{len(restored.skips)} skips from {store_path} — "
                    f"{len(pending)} contract(s) pending")

    if not pending:
        result = ShardedSweepResult(
            report=LandscapeReport(), metrics=MetricsRegistry(),
            shards=[], workers=workers, strategy=strategy,
            wall_s=time.perf_counter() - wall_start)
        say("store: nothing pending — the store already settles the "
            "whole corpus")
        return _fold_store(result, store, restored, addresses, code_of,
                           spec, workers, store_path, say)

    if processes and workers > 1:
        from repro.parallel.supervisor import run_supervised_sweep
        result = run_supervised_sweep(
            spec, workers=workers, strategy=strategy, addresses=pending,
            checkpoint_path=checkpoint_path, resume=resume, world=world,
            config=supervise, progress=progress, events_path=events_path,
            audit_dir=audit_dir, store_spec=store_spec)
        if store is not None:
            result = _fold_store(result, store, restored, addresses,
                                 code_of, spec, workers, store_path, say)
        return result

    partitions = shard_addresses(pending, workers, strategy,
                                 code_of=code_of)
    tasks = [(spec, index, partition, checkpoint_path, resume, audit_dir,
              store_spec)
             for index, partition in enumerate(partitions)]
    say(f"sweeping {len(pending)} contracts across {workers} "
        f"shard(s), strategy={strategy}")

    journal = None
    events = None
    if events_path is not None:
        from repro.obs import events as ev
        journal = ev.EventJournal.create(events_path)
        events = ev.EventRecorder(sinks=(journal,))
        events.emit(ev.SWEEP_START, contracts=len(pending),
                    workers=workers, strategy=strategy, chaos=spec.chaos)

    results = [_run_shard(task, events=events) for task in tasks]

    if events is not None:
        from repro.obs import events as ev
        events.emit(ev.SWEEP_END,
                    analyses=sum(len(r["analyses"]) for r in results),
                    failures=sum(len(r["failures"]) for r in results),
                    wall_s=round(time.perf_counter() - wall_start, 6))
        journal.close()

    results.sort(key=lambda result: result["shard"])
    report = merge_reports([_partial_report(result) for result in results],
                           order=pending)
    metrics = MetricsRegistry()
    for result in results:
        metrics.merge_state(result["metrics"])
    shards = [ShardStats(shard=result["shard"],
                         addresses=result["addresses"],
                         wall_s=result["wall_s"],
                         cpu_s=result["cpu_s"])
              for result in results]
    outcome = ShardedSweepResult(report=report, metrics=metrics,
                                 shards=shards, workers=workers,
                                 strategy=strategy,
                                 wall_s=time.perf_counter() - wall_start)
    say(f"merged {len(report.analyses)} analyses, "
        f"{len(report.failures)} failures "
        f"(critical-path speedup {outcome.critical_path_speedup:.2f}x)")
    if store is not None:
        outcome = _fold_store(outcome, store, restored, addresses, code_of,
                              spec, workers, store_path, say)
    return outcome


__all__ = [
    "ShardStats",
    "ShardedSweepResult",
    "run_sharded_sweep",
]
