"""Pickle-able sweep specifications: how a worker rebuilds its world.

``multiprocessing`` workers cannot share the parent's simulated chain under
the ``spawn`` start method, so a sharded sweep ships each worker a
:class:`SweepSpec` — a small frozen value object naming everything needed
to reconstruct the node/registry/dataset stack deterministically:

* the landscape parameters (``total``, ``seed``, ``chain`` profile name) —
  :func:`repro.corpus.generator.generate_landscape` is fully deterministic
  for these, so every worker materializes *the same* world the parent has;
* the :class:`~repro.core.pipeline.ProxionOptions` feature switches;
* the optional chaos layering (canned fault-plan name + seed), rebuilt via
  :func:`repro.chain.faults.build_chaos_stack` so `--chaos` composes with
  `--workers` exactly like it does with the serial sweep.

Under the ``fork`` start method the engine passes the parent's
already-generated world to the children for free (copy-on-write); the spec
is still the source of truth — a worker that receives no inherited world,
or one generated from different parameters, rebuilds from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import Proxion, ProxionOptions


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """Everything a worker needs to rebuild its analyzer stack."""

    total: int
    seed: int
    chain: str = "ethereum"
    options: ProxionOptions = field(default_factory=ProxionOptions)
    chaos: str | None = None
    chaos_seed: int = 1337
    #: Number of RPC backends per worker; > 1 fronts the chain with a
    #: :class:`~repro.chain.failover.FailoverNode` (chaos then strikes
    #: only the primary endpoint — the failover absorbs it).
    rpc_endpoints: int = 1

    def world_key(self) -> tuple[int, int, str]:
        """The identity of the deterministic landscape this spec names."""
        return (self.total, self.seed, self.chain)

    # ------------------------------------------------------- rebuild hooks
    def build_world(self):
        """Regenerate the landscape (deterministic for this spec)."""
        from repro.chain.profiles import get_profile
        from repro.corpus.generator import generate_landscape

        return generate_landscape(total=self.total, seed=self.seed,
                                  chain_profile=get_profile(self.chain))

    def build_node(self, world, events=None):
        """A *fresh* node stack over ``world``'s chain.

        Fresh means a private :class:`~repro.chain.node.ArchiveNode` (and
        so a private metrics registry): workers never mutate an inherited
        node's counters, and per-shard metrics merge cleanly.  The chaos
        sandwich, when configured, wraps it exactly like ``survey
        --chaos`` does.  ``events`` (an
        :class:`~repro.obs.events.EventRecorder`, optional) is threaded
        into the resilient layer so the flight recorder sees breaker and
        retry events from inside the worker.
        """
        from repro.chain.failover import build_failover_node
        from repro.chain.faults import build_chaos_stack
        from repro.chain.node import ArchiveNode

        node = ArchiveNode(world.chain,
                           call_instruction_budget=(
                               world.node.call_instruction_budget))
        if self.rpc_endpoints > 1:
            # Failover carries its own retry/breaker machinery; chaos (if
            # any) wraps only the primary endpoint inside the fleet.
            return build_failover_node(node, self.rpc_endpoints,
                                       chaos=self.chaos,
                                       chaos_seed=self.chaos_seed,
                                       events=events)
        if self.chaos is not None:
            return build_chaos_stack(node, self.chaos, seed=self.chaos_seed,
                                     events=events)
        return node

    def build_proxion(self, world, events=None, audit=None,
                      store=None) -> Proxion:
        """The full per-worker analyzer, options applied.

        ``audit`` (an :class:`~repro.obs.provenance.AuditDir` or path)
        turns on verdict provenance: the worker records a
        ``repro.evidence/1`` trail per contract and persists it there.
        Shards partition the address list, so workers share one audit
        directory without coordination — each contract has exactly one
        writer.

        ``store`` (a :class:`~repro.store.StoreBinding`, optional) makes
        the worker's dedup caches durable — in a sharded sweep each
        worker gets a binding over its *own* shard store
        (:func:`~repro.store.open_worker_binding`), upholding the
        single-writer-per-file discipline.
        """
        return Proxion.from_node(self.build_node(world, events=events),
                                 registry=world.registry,
                                 dataset=world.dataset,
                                 options=self.options,
                                 events=events,
                                 audit=audit,
                                 store=store)


__all__ = ["SweepSpec"]
