"""Deterministic address partitioning for sharded sweeps.

Two strategies, both pure functions of the address list (and, for
``codehash``, the deployed code), so the same inputs always produce the
same partition — a prerequisite for per-shard checkpoint resume:

``roundrobin``
    Address *i* goes to shard ``i % shards``.  Perfectly balanced counts,
    but clones of one implementation scatter across shards, so each shard
    pays its own §6.1 dedup cache misses and the merged ``summary.dedup``
    counters differ from a serial sweep's (contract verdicts are still
    identical).

``codehash``
    Address goes to shard ``keccak256(code)[-8:] % shards``.  Clone
    families — and therefore the dedup caches' key space — land whole on
    one shard: ``proxy_check`` keys by ``keccak(code)`` directly, and the
    collision caches key by ``(proxy_hash, logic_hash)`` where the proxy
    hash determines the shard.  Per-shard relative order is preserved
    from the input list, so summed per-shard hit/miss counters equal the
    serial sweep's exactly and the merged report serializes
    *byte-identically*.  The cost is load skew proportional to clone-family
    sizes.  This is the default strategy.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.utils.keccak import keccak256

#: Recognised partitioning strategies, in documentation order.
STRATEGIES = ("roundrobin", "codehash")


def _codehash_slot(address: bytes, shards: int,
                   code_of: Callable[[bytes], bytes] | None) -> int:
    code = code_of(address) if code_of is not None else b""
    # Self-destructed / never-deployed addresses have no code to key on;
    # hashing the address keeps the assignment deterministic anyway.
    digest = keccak256(code if code else address)
    return int.from_bytes(digest[-8:], "big") % shards


def shard_addresses(addresses: Sequence[bytes], shards: int,
                    strategy: str = "codehash",
                    code_of: Callable[[bytes], bytes] | None = None,
                    ) -> list[list[bytes]]:
    """Partition ``addresses`` into ``shards`` disjoint ordered lists.

    Every shard preserves the relative order of its members from the
    input list.  ``code_of`` resolves an address to its deployed runtime
    code (required by the ``codehash`` strategy; ignored by
    ``roundrobin``).
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shards}")
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown shard strategy {strategy!r} "
            f"(choose from {', '.join(STRATEGIES)})")
    partitions: list[list[bytes]] = [[] for _ in range(shards)]
    for index, address in enumerate(addresses):
        if strategy == "roundrobin":
            slot = index % shards
        else:
            slot = _codehash_slot(address, shards, code_of)
        partitions[slot].append(address)
    return partitions


__all__ = ["STRATEGIES", "shard_addresses"]
