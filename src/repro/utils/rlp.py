"""Just enough RLP to derive contract addresses.

CREATE addresses are ``keccak256(rlp([sender, nonce]))[12:]``; this module
implements RLP encoding for byte strings and non-negative integers, which is
all that derivation needs (plus decoding for its tests).
"""

from __future__ import annotations


def encode_bytes(data: bytes) -> bytes:
    """RLP-encode a byte string."""
    if len(data) == 1 and data[0] < 0x80:
        return data
    if len(data) <= 55:
        return bytes([0x80 + len(data)]) + data
    length_bytes = _encode_length(len(data))
    return bytes([0xB7 + len(length_bytes)]) + length_bytes + data


def encode_int(value: int) -> bytes:
    """RLP-encode a non-negative integer (big-endian, no leading zeros)."""
    if value < 0:
        raise ValueError("RLP integers must be non-negative")
    if value == 0:
        return encode_bytes(b"")
    return encode_bytes(value.to_bytes((value.bit_length() + 7) // 8, "big"))


def encode_list(items: list[bytes]) -> bytes:
    """RLP-encode a list of already-encoded items."""
    payload = b"".join(items)
    if len(payload) <= 55:
        return bytes([0xC0 + len(payload)]) + payload
    length_bytes = _encode_length(len(payload))
    return bytes([0xF7 + len(length_bytes)]) + length_bytes + payload


def _encode_length(length: int) -> bytes:
    return length.to_bytes((length.bit_length() + 7) // 8, "big")
