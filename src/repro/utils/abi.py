"""Minimal Solidity ABI support: selectors plus elementary-type codec.

The ProxioN pipeline needs function selectors (the first four bytes of the
Keccak-256 hash of a canonical prototype string, §2.1 of the paper) and just
enough argument encoding to craft transaction calldata for the EVM emulation
and exploit-synthesis stages.  Only the elementary static types the paper's
contracts use are supported: ``uintN``/``intN``, ``address``, ``bool``,
``bytesN`` and (head-encoded) ``bytes``/``string``.
"""

from __future__ import annotations

import re

from repro.utils.hexutil import (
    WORD_BYTES,
    address_to_word,
    ceil32,
    from_signed,
    to_signed,
    word_to_address,
    word_to_bytes,
)
from repro.utils.keccak import keccak256

SELECTOR_BYTES = 4

_PROTOTYPE_RE = re.compile(r"^(\w+)\((.*)\)$")
_UINT_RE = re.compile(r"^uint(\d+)?$")
_INT_RE = re.compile(r"^int(\d+)?$")
_BYTES_N_RE = re.compile(r"^bytes(\d+)$")


def function_selector(prototype: str) -> bytes:
    """Return the 4-byte selector for a canonical prototype string.

    >>> function_selector("free_ether_withdrawal()").hex()
    'df4a3106'
    """
    return keccak256(prototype.encode("ascii"))[:SELECTOR_BYTES]


def parse_prototype(prototype: str) -> tuple[str, list[str]]:
    """Split ``name(type1,type2)`` into its name and argument type list."""
    match = _PROTOTYPE_RE.match(prototype)
    if not match:
        raise ValueError(f"malformed function prototype: {prototype!r}")
    name, arg_text = match.groups()
    arg_types = [t.strip() for t in arg_text.split(",") if t.strip()]
    return name, arg_types


def _encode_static(abi_type: str, value: object) -> int:
    """Encode one static value as an unsigned 256-bit word."""
    if abi_type == "address":
        if isinstance(value, bytes):
            return address_to_word(value)
        if isinstance(value, int):
            return value
        raise TypeError(f"address value must be bytes or int, got {type(value)}")
    if abi_type == "bool":
        return 1 if value else 0
    uint_match = _UINT_RE.match(abi_type)
    if uint_match:
        bits = int(uint_match.group(1) or 256)
        word = int(value)  # type: ignore[arg-type]
        if word < 0 or word >= (1 << bits):
            raise ValueError(f"{value} out of range for {abi_type}")
        return word
    int_match = _INT_RE.match(abi_type)
    if int_match:
        bits = int(int_match.group(1) or 256)
        signed = int(value)  # type: ignore[arg-type]
        if signed < -(1 << (bits - 1)) or signed >= (1 << (bits - 1)):
            raise ValueError(f"{value} out of range for {abi_type}")
        return from_signed(signed)
    bytes_match = _BYTES_N_RE.match(abi_type)
    if bytes_match:
        width = int(bytes_match.group(1))
        if not isinstance(value, bytes) or len(value) != width:
            raise ValueError(f"{abi_type} value must be exactly {width} bytes")
        # Fixed-size byte arrays are left-aligned in their word.
        return int.from_bytes(value.ljust(WORD_BYTES, b"\x00"), "big")
    raise ValueError(f"unsupported static ABI type: {abi_type}")


def _is_dynamic(abi_type: str) -> bool:
    return abi_type in ("bytes", "string")


def encode_arguments(arg_types: list[str], values: list[object]) -> bytes:
    """ABI-encode ``values`` per ``arg_types`` (head/tail layout)."""
    if len(arg_types) != len(values):
        raise ValueError(
            f"expected {len(arg_types)} values, got {len(values)}"
        )
    head_size = WORD_BYTES * len(arg_types)
    heads: list[bytes] = []
    tail = bytearray()
    for abi_type, value in zip(arg_types, values):
        if _is_dynamic(abi_type):
            raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)  # type: ignore[arg-type]
            heads.append(word_to_bytes(head_size + len(tail)))
            tail.extend(word_to_bytes(len(raw)))
            tail.extend(raw.ljust(ceil32(len(raw)), b"\x00"))
        else:
            heads.append(word_to_bytes(_encode_static(abi_type, value)))
    return b"".join(heads) + bytes(tail)


def encode_call(prototype: str, values: list[object] | None = None) -> bytes:
    """Build full calldata (selector + encoded arguments) for a prototype."""
    _, arg_types = parse_prototype(prototype)
    return function_selector(prototype) + encode_arguments(arg_types, values or [])


def decode_arguments(arg_types: list[str], data: bytes) -> list[object]:
    """Decode ABI-encoded return data into Python values."""
    values: list[object] = []
    for index, abi_type in enumerate(arg_types):
        head = data[index * WORD_BYTES:(index + 1) * WORD_BYTES]
        word = int.from_bytes(head, "big")
        if _is_dynamic(abi_type):
            length = int.from_bytes(data[word:word + WORD_BYTES], "big")
            raw = data[word + WORD_BYTES:word + WORD_BYTES + length]
            values.append(raw.decode("utf-8") if abi_type == "string" else raw)
        elif abi_type == "address":
            values.append(word_to_address(word))
        elif abi_type == "bool":
            values.append(bool(word))
        elif _INT_RE.match(abi_type) and not _UINT_RE.match(abi_type):
            values.append(to_signed(word))
        elif _BYTES_N_RE.match(abi_type):
            width = int(_BYTES_N_RE.match(abi_type).group(1))  # type: ignore[union-attr]
            values.append(word.to_bytes(WORD_BYTES, "big")[:width])
        else:
            values.append(word)
    return values
