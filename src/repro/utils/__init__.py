"""Shared low-level utilities: Keccak-256, ABI codec and hex helpers."""

from repro.utils.abi import (
    decode_arguments,
    encode_arguments,
    encode_call,
    function_selector,
    parse_prototype,
)
from repro.utils.hexutil import (
    ADDRESS_BYTES,
    WORD_BYTES,
    WORD_MASK,
    ZERO_ADDRESS,
    address_to_word,
    bytes_to_word,
    ceil32,
    format_address,
    format_hex,
    from_signed,
    parse_address,
    parse_hex,
    to_signed,
    to_word,
    word_to_address,
    word_to_bytes,
)
from repro.utils.keccak import keccak256, keccak256_hex

__all__ = [
    "ADDRESS_BYTES",
    "WORD_BYTES",
    "WORD_MASK",
    "ZERO_ADDRESS",
    "address_to_word",
    "bytes_to_word",
    "ceil32",
    "decode_arguments",
    "encode_arguments",
    "encode_call",
    "format_address",
    "format_hex",
    "from_signed",
    "function_selector",
    "keccak256",
    "keccak256_hex",
    "parse_address",
    "parse_hex",
    "parse_prototype",
    "to_signed",
    "to_word",
    "word_to_address",
    "word_to_bytes",
]
