"""Hex, word and address helpers shared across the EVM and chain layers.

Throughout the codebase:

* an *address* is a 20-byte ``bytes`` value,
* a *word* is an unsigned integer in ``[0, 2**256)``,
* bytecode and calldata are plain ``bytes``.

These helpers centralize the conversions so that byte-width bugs cannot hide
in call sites.
"""

from __future__ import annotations

WORD_BITS = 256
WORD_BYTES = 32
WORD_MASK = (1 << WORD_BITS) - 1
SIGN_BIT = 1 << (WORD_BITS - 1)

ADDRESS_BYTES = 20
ADDRESS_MASK = (1 << (ADDRESS_BYTES * 8)) - 1

ZERO_ADDRESS = b"\x00" * ADDRESS_BYTES


def to_word(value: int) -> int:
    """Truncate an integer into an unsigned 256-bit EVM word."""
    return value & WORD_MASK


def to_signed(word: int) -> int:
    """Interpret an unsigned 256-bit word as a two's-complement integer."""
    if word & SIGN_BIT:
        return word - (1 << WORD_BITS)
    return word


def from_signed(value: int) -> int:
    """Encode a (possibly negative) integer as an unsigned 256-bit word."""
    return value & WORD_MASK


def word_to_bytes(word: int) -> bytes:
    """Encode an unsigned 256-bit word as 32 big-endian bytes."""
    return word.to_bytes(WORD_BYTES, "big")


def bytes_to_word(data: bytes) -> int:
    """Decode up to 32 big-endian bytes into an unsigned word."""
    if len(data) > WORD_BYTES:
        raise ValueError(f"word too long: {len(data)} bytes")
    return int.from_bytes(data, "big")


def word_to_address(word: int) -> bytes:
    """Extract the low-order 20 bytes of a word as an address."""
    return (word & ADDRESS_MASK).to_bytes(ADDRESS_BYTES, "big")


def address_to_word(address: bytes) -> int:
    """Zero-extend a 20-byte address into an unsigned word."""
    if len(address) != ADDRESS_BYTES:
        raise ValueError(f"address must be {ADDRESS_BYTES} bytes, got {len(address)}")
    return int.from_bytes(address, "big")


def parse_address(text: str | bytes) -> bytes:
    """Parse a ``0x``-prefixed hex string (or pass through bytes) as an address."""
    if isinstance(text, bytes):
        if len(text) != ADDRESS_BYTES:
            raise ValueError(f"address must be {ADDRESS_BYTES} bytes, got {len(text)}")
        return text
    stripped = text.removeprefix("0x").removeprefix("0X")
    raw = bytes.fromhex(stripped)
    if len(raw) != ADDRESS_BYTES:
        raise ValueError(f"address must be {ADDRESS_BYTES} bytes, got {len(raw)}")
    return raw


def format_address(address: bytes) -> str:
    """Render an address as a ``0x``-prefixed lowercase hex string."""
    return "0x" + address.hex()


def parse_hex(text: str) -> bytes:
    """Parse an optionally ``0x``-prefixed hex string into bytes."""
    return bytes.fromhex(text.removeprefix("0x").removeprefix("0X"))


def format_hex(data: bytes) -> str:
    """Render bytes as a ``0x``-prefixed lowercase hex string."""
    return "0x" + data.hex()


def ceil32(length: int) -> int:
    """Round ``length`` up to the next multiple of 32 (EVM memory word size)."""
    return (length + 31) & ~31
