"""Pure-Python Keccak-256 as used by Ethereum.

Ethereum uses the original Keccak submission (multi-rate padding byte
``0x01``), *not* the finalized NIST SHA-3 (padding byte ``0x06``), so Python's
``hashlib.sha3_256`` produces different digests and cannot be used.  This
module implements the Keccak-f[1600] permutation and the sponge construction
from scratch.

The implementation is verified against published test vectors in
``tests/utils/test_keccak.py`` (e.g. ``keccak256(b"") ==
c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470``).
"""

from __future__ import annotations

# Rotation offsets r[x][y] for the rho step, indexed [x][y].
_ROTATION_OFFSETS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)

# Round constants for the iota step of Keccak-f[1600] (24 rounds).
_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

_LANE_MASK = 0xFFFFFFFFFFFFFFFF

# Keccak-256 parameters: 1088-bit rate (136 bytes), 512-bit capacity.
_RATE_BYTES = 136
_DIGEST_BYTES = 32


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    return ((value << shift) | (value >> (64 - shift))) & _LANE_MASK


def _keccak_f1600(state: list[int]) -> None:
    """Apply the Keccak-f[1600] permutation to a 25-lane state in place.

    The state is a flat list of 25 64-bit integers, indexed lane(x, y) =
    state[x + 5 * y] per the Keccak reference ordering.
    """
    for round_constant in _ROUND_CONSTANTS:
        # theta: column parities mixed into every lane.
        parities = [
            state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20]
            for x in range(5)
        ]
        for x in range(5):
            theta_effect = parities[(x - 1) % 5] ^ _rotl64(parities[(x + 1) % 5], 1)
            for y in range(0, 25, 5):
                state[x + y] ^= theta_effect

        # rho (rotations) and pi (lane permutation), combined.
        rotated = [0] * 25
        for x in range(5):
            for y in range(5):
                rotated[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    state[x + 5 * y], _ROTATION_OFFSETS[x][y]
                )

        # chi: non-linear row mixing.
        for y in range(0, 25, 5):
            row = rotated[y:y + 5]
            for x in range(5):
                state[x + y] = row[x] ^ ((~row[(x + 1) % 5]) & row[(x + 2) % 5])

        # iota: break symmetry with the round constant.
        state[0] ^= round_constant


def keccak256(data: bytes) -> bytes:
    """Return the 32-byte Keccak-256 digest of ``data`` (Ethereum flavour)."""
    state = [0] * 25

    # Absorb phase: XOR rate-sized blocks into the state and permute.  The
    # final (possibly empty) partial block gets Keccak multi-rate padding:
    # 0x01 after the message, 0x80 on the last byte of the block.
    padded_tail = bytearray(data[len(data) - (len(data) % _RATE_BYTES):])
    full_blocks_end = len(data) - len(padded_tail)
    padded_tail.append(0x01)
    padded_tail.extend(b"\x00" * (_RATE_BYTES - len(padded_tail)))
    padded_tail[-1] |= 0x80

    for block_start in range(0, full_blocks_end, _RATE_BYTES):
        block = data[block_start:block_start + _RATE_BYTES]
        for lane_index in range(_RATE_BYTES // 8):
            state[lane_index] ^= int.from_bytes(
                block[lane_index * 8:lane_index * 8 + 8], "little"
            )
        _keccak_f1600(state)

    for lane_index in range(_RATE_BYTES // 8):
        state[lane_index] ^= int.from_bytes(
            padded_tail[lane_index * 8:lane_index * 8 + 8], "little"
        )
    _keccak_f1600(state)

    # Squeeze phase: 32 bytes fit inside one rate block, so no extra permute.
    digest = bytearray()
    for lane_index in range(_DIGEST_BYTES // 8):
        digest.extend(state[lane_index].to_bytes(8, "little"))
    return bytes(digest)


def keccak256_hex(data: bytes) -> str:
    """Return the Keccak-256 digest of ``data`` as a lowercase hex string."""
    return keccak256(data).hex()
