"""``repro store fsck|stats|vacuum`` — store maintenance operations.

``fsck`` is the operator's answer to "can I trust this file after the
machine died?": it layers SQLite's own ``integrity_check`` with
store-level invariants — schema tag, table presence, JSON parse of every
fact/instance row, column↔JSON consistency, derived-row orphans and
instance-table overlap.  With ``--repair`` it drops garbled rows (their
facts are simply recomputed on the next sweep), resolves overlaps
(analysis > failure > skip) and rebuilds the derived query tables from
the instance rows; anything it cannot repair — a failed
``integrity_check``, a foreign or future schema — it refuses loudly and
leaves untouched.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.store.schema import (
    SCHEMA,
    TABLES,
    VERSION,
    connect,
    parse_version,
    stored_schema,
)

_FACT_TABLES = {
    "proxy_verdicts": ("code_hash", "check_json"),
    "selector_sets": ("code_hash", "selectors_json"),
}


@dataclass(slots=True)
class FsckReport:
    """What one fsck pass found (and, with ``--repair``, fixed)."""

    path: str
    issues: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)
    fatal: bool = False

    @property
    def clean(self) -> bool:
        return not self.issues and not self.fatal

    @property
    def ok(self) -> bool:
        """Exit-0 condition: clean, or every issue repaired."""
        return not self.fatal and all(
            issue in self.repaired for issue in self.issues)


def _json_ok(text: str) -> Any | None:
    try:
        return json.loads(text)
    except (json.JSONDecodeError, TypeError):
        return None


def fsck(path: str, repair: bool = False) -> FsckReport:
    """Check (and optionally repair) one store file."""
    report = FsckReport(path=path)
    if not os.path.exists(path):
        report.issues.append(f"no store at {path!r}")
        report.fatal = True
        return report
    try:
        connection = connect(path)
    except sqlite3.DatabaseError as error:
        report.issues.append(f"not an SQLite database ({error})")
        report.fatal = True
        return report
    try:
        _fsck_connection(connection, path, report, repair)
    except sqlite3.DatabaseError as error:
        report.issues.append(f"sqlite error while checking ({error})")
        report.fatal = True
    finally:
        connection.close()
    return report


def _fsck_connection(connection: sqlite3.Connection, path: str,
                     report: FsckReport, repair: bool) -> None:
    # 1. Page-level integrity: unrepairable here — restore from a
    # backup or re-sweep; a partial salvage would be silent data loss.
    row = connection.execute("PRAGMA integrity_check").fetchone()
    if row is None or row[0] != "ok":
        report.issues.append(
            f"sqlite integrity_check failed: {row[0] if row else '?'}")
        report.fatal = True
        return
    # 2. Schema tag.
    tag = stored_schema(connection)
    if tag is None:
        report.issues.append("no meta.schema tag (not a repro store)")
        report.fatal = True
        return
    try:
        version = parse_version(tag, path)
    except ConfigurationError as error:
        report.issues.append(str(error))
        report.fatal = True
        return
    if version != VERSION:
        report.issues.append(
            f"schema is {tag}, this build handles {SCHEMA} — migrate by "
            f"opening the store with a matching build")
        report.fatal = True
        return
    # 3. Table presence.
    present = {name for (name,) in connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'")}
    missing = [table for table in TABLES if table not in present]
    if missing:
        report.issues.append(f"missing tables: {', '.join(missing)}")
        report.fatal = True
        return
    _check_fact_rows(connection, report, repair)
    _check_instance_rows(connection, report, repair)
    _check_overlap(connection, report, repair)
    _check_derived(connection, report, repair)
    if repair:
        connection.commit()


def _check_fact_rows(connection, report: FsckReport, repair: bool) -> None:
    for table, (key_column, json_column) in _FACT_TABLES.items():
        bad = [key for key, text in connection.execute(
                   f"SELECT {key_column}, {json_column} FROM {table}")
               if _json_ok(text) is None]
        if not bad:
            continue
        issue = f"{table}: {len(bad)} garbled JSON row(s)"
        report.issues.append(issue)
        if repair:
            connection.executemany(
                f"DELETE FROM {table} WHERE {key_column} = ?",
                [(key,) for key in bad])
            report.repaired.append(issue)
    bad_pairs = [(proxy, logic, kind) for proxy, logic, kind, text
                 in connection.execute(
                     "SELECT proxy_hash, logic_hash, kind, report_json "
                     "FROM collision_results")
                 if _json_ok(text) is None]
    if bad_pairs:
        issue = f"collision_results: {len(bad_pairs)} garbled JSON row(s)"
        report.issues.append(issue)
        if repair:
            connection.executemany(
                "DELETE FROM collision_results WHERE proxy_hash = ? AND "
                "logic_hash = ? AND kind = ?", bad_pairs)
            report.repaired.append(issue)


def _check_instance_rows(connection, report: FsckReport,
                         repair: bool) -> None:
    bad: list[str] = []
    inconsistent: list[str] = []
    for address, code_hash, is_proxy, text in connection.execute(
            "SELECT address, code_hash, is_proxy, analysis_json "
            "FROM analyses"):
        record = _json_ok(text)
        if record is None:
            bad.append(address)
        elif (record.get("address") != address
              or record.get("code_hash") != code_hash
              or bool(record.get("is_proxy")) != bool(is_proxy)):
            inconsistent.append(address)
    for kind, addresses in (("garbled", bad),
                            ("column/JSON mismatch", inconsistent)):
        if not addresses:
            continue
        issue = f"analyses: {len(addresses)} {kind} row(s)"
        report.issues.append(issue)
        if repair:
            connection.executemany(
                "DELETE FROM analyses WHERE address = ?",
                [(address,) for address in addresses])
            report.repaired.append(issue)
    bad_failures = [address for address, text in connection.execute(
                        "SELECT address, failure_json FROM failures")
                    if _json_ok(text) is None]
    if bad_failures:
        issue = f"failures: {len(bad_failures)} garbled JSON row(s)"
        report.issues.append(issue)
        if repair:
            connection.executemany(
                "DELETE FROM failures WHERE address = ?",
                [(address,) for address in bad_failures])
            report.repaired.append(issue)


def _check_overlap(connection, report: FsckReport, repair: bool) -> None:
    # The instance tables partition the address space: an address in two
    # of them is a torn merge.  Resolution order: analysis > failure >
    # skip (the richer fact wins; the loser is recomputable).
    overlaps = []
    for winner, loser in (("analyses", "failures"), ("analyses", "skips"),
                          ("failures", "skips")):
        rows = connection.execute(
            f"SELECT address FROM {loser} WHERE address IN "
            f"(SELECT address FROM {winner})").fetchall()
        if rows:
            overlaps.append((loser, winner, [row[0] for row in rows]))
    for loser, winner, addresses in overlaps:
        issue = (f"{len(addresses)} address(es) in both {winner} and "
                 f"{loser}")
        report.issues.append(issue)
        if repair:
            connection.executemany(
                f"DELETE FROM {loser} WHERE address = ?",
                [(address,) for address in addresses])
            report.repaired.append(issue)


def _check_derived(connection, report: FsckReport, repair: bool) -> None:
    orphans = 0
    for table, column in (("logic_links", "proxy"), ("collisions", "proxy")):
        orphans += connection.execute(
            f"SELECT COUNT(*) FROM {table} WHERE {column} NOT IN "
            f"(SELECT address FROM analyses)").fetchone()[0]
    if not orphans:
        return
    issue = f"derived tables: {orphans} orphan row(s)"
    report.issues.append(issue)
    if repair:
        _rebuild_derived(connection)
        report.repaired.append(issue)


def _rebuild_derived(connection) -> None:
    """Regenerate logic_links/collisions from the analyses JSON."""
    connection.execute("DELETE FROM logic_links")
    connection.execute("DELETE FROM collisions")
    for address, text in connection.execute(
            "SELECT address, analysis_json FROM analyses").fetchall():
        record = _json_ok(text)
        if record is None:
            continue
        history = record.get("logic_history") or {}
        connection.executemany(
            "INSERT OR REPLACE INTO logic_links VALUES (?, ?, ?)",
            [(address, position, logic) for position, logic
             in enumerate(history.get("addresses", []))])
        for row in record.get("function_collisions", []):
            connection.executemany(
                "INSERT INTO collisions VALUES (?, ?, 'function', ?, 0, 0)",
                [(address, row.get("logic"), selector)
                 for selector in row.get("selectors", [])])
        for row in record.get("storage_collisions", []):
            for entry in row.get("collisions", []):
                slot = entry.get("slot", {})
                detail = (f"SlotKey(kind={slot.get('kind')!r}, "
                          f"base={slot.get('base')})")
                connection.execute(
                    "INSERT INTO collisions VALUES (?, ?, 'storage', ?, ?, ?)",
                    (address, row.get("logic"), detail,
                     int(entry.get("sensitive", False)),
                     int(entry.get("verified", False))))


# ---------------------------------------------------------------- stats
def stats(path: str) -> dict[str, Any]:
    """Row counts, dedup leverage and file sizes of one store."""
    connection = connect(path)
    try:
        tag = stored_schema(connection)
        counts = {table: connection.execute(
                      f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                  for table in TABLES if table != "meta"}
        unique_hashes = connection.execute(
            "SELECT COUNT(DISTINCT code_hash) FROM analyses").fetchone()[0]
    finally:
        connection.close()
    instances = counts["analyses"]
    return {
        "path": path,
        "schema": tag,
        "tables": counts,
        "unique_code_hashes": unique_hashes,
        "dedup_leverage": (round(instances / unique_hashes, 3)
                           if unique_hashes else None),
        "file_bytes": os.path.getsize(path),
        "wal_bytes": (os.path.getsize(path + "-wal")
                      if os.path.exists(path + "-wal") else 0),
    }


def vacuum(path: str) -> dict[str, int]:
    """Checkpoint the WAL into the main file and compact it."""
    before = os.path.getsize(path) + (
        os.path.getsize(path + "-wal")
        if os.path.exists(path + "-wal") else 0)
    connection = connect(path)
    try:
        connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        connection.execute("VACUUM")
    finally:
        connection.close()
    after = os.path.getsize(path) + (
        os.path.getsize(path + "-wal")
        if os.path.exists(path + "-wal") else 0)
    return {"bytes_before": before, "bytes_after": after,
            "bytes_reclaimed": max(0, before - after)}


__all__ = ["FsckReport", "fsck", "stats", "vacuum"]
