"""The ``repro.store/1`` SQLite schema: versioning, DDL, migrations.

One durable database holds everything a sweep learns, split the way the
paper's own persistence splits it (Postgres tables keyed by
``bytecode_hash`` in the real Proxion):

* **hash-keyed facts** — properties of a *bytecode blob*, valid for every
  deployment of that blob: the proxy-check verdict
  (``proxy_verdicts``), the dispatcher selector set (``selector_sets``)
  and per-(proxy-code, logic-code) collision reports
  (``collision_results``).  These hydrate the §6.1 dedup caches and
  survive restarts, kill -9s and corpus growth.
* **instance-keyed facts** — properties of one *deployment*: the full
  per-address analysis (``analyses``, with its logic history and
  storage-dependent state), quarantined failures (``failures``) and §3.1
  dead-contract skips (``skips``).  These make re-sweeps incremental.
* **derived query tables** — ``logic_links`` and ``collisions``, the
  offline query surface (``AnalysisStore.proxies/logic_chain/...``),
  rebuilt from the instance rows they denormalize (and rebuildable by
  ``repro store fsck --repair``).

Durability discipline: connections run in WAL mode with a generous
``busy_timeout`` (concurrent shard writers block, they do not fail), and
every per-contract write commits in one transaction — a ``kill -9`` at
any instant loses at most the contract in flight, never the store.

The schema is versioned (:data:`SCHEMA`).  Opening a store written by a
*newer* layout — or by something that is not a repro store at all —
refuses loudly with :class:`~repro.errors.ConfigurationError`; an *older*
version is upgraded in place through :data:`MIGRATIONS` (explicit hooks,
one per version step, each running inside a transaction).
"""

from __future__ import annotations

import sqlite3
from typing import Callable

from repro.errors import ConfigurationError

#: Version tag of the store layout, as stored in the ``meta`` table.
SCHEMA = "repro.store/1"
SCHEMA_PREFIX = "repro.store/"
VERSION = 1

#: Explicit migration hooks: ``MIGRATIONS[n]`` upgrades a version-``n``
#: store to version ``n + 1`` (applied in sequence inside one
#: transaction each).  Empty while only version 1 exists — the registry
#: and its driver are in place so version 2 ships as a function here,
#: not as an ad-hoc script.
MIGRATIONS: dict[int, Callable[[sqlite3.Connection], None]] = {}

#: Every table of the current layout (fsck checks presence).
TABLES = (
    "meta",
    "proxy_verdicts",
    "selector_sets",
    "collision_results",
    "analyses",
    "failures",
    "skips",
    "logic_links",
    "collisions",
)

DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
-- hash-keyed facts (content-addressed by 0x-hex keccak256(bytecode))
CREATE TABLE IF NOT EXISTS proxy_verdicts (
    code_hash  TEXT PRIMARY KEY,
    check_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS selector_sets (
    code_hash      TEXT PRIMARY KEY,
    selectors_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS collision_results (
    proxy_hash  TEXT NOT NULL,
    logic_hash  TEXT NOT NULL,
    kind        TEXT NOT NULL,            -- 'function' | 'storage'
    report_json TEXT NOT NULL,
    PRIMARY KEY (proxy_hash, logic_hash, kind)
);
-- instance-keyed facts (addressed by 0x-hex deployment address)
CREATE TABLE IF NOT EXISTS analyses (
    address          TEXT PRIMARY KEY,
    code_hash        TEXT NOT NULL,
    is_proxy         INTEGER NOT NULL,
    standard         TEXT,
    logic_location   TEXT,
    logic_slot       TEXT,
    deploy_block     INTEGER,
    deploy_year      INTEGER,
    has_source       INTEGER NOT NULL,
    has_tx           INTEGER NOT NULL,
    emulation_failed INTEGER NOT NULL,
    analysis_json    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS failures (
    address      TEXT PRIMARY KEY,
    failure_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS skips (
    address TEXT PRIMARY KEY
);
-- derived query tables (denormalized from analyses; fsck can rebuild)
CREATE TABLE IF NOT EXISTS logic_links (
    proxy    TEXT NOT NULL,
    position INTEGER NOT NULL,
    logic    TEXT NOT NULL,
    PRIMARY KEY (proxy, position)
);
CREATE TABLE IF NOT EXISTS collisions (
    proxy     TEXT NOT NULL,
    logic     TEXT NOT NULL,
    kind      TEXT NOT NULL,              -- 'function' | 'storage'
    detail    TEXT NOT NULL,              -- selector hex / slot description
    sensitive INTEGER NOT NULL DEFAULT 0,
    verified  INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_analyses_proxy ON analyses(is_proxy);
CREATE INDEX IF NOT EXISTS idx_analyses_year ON analyses(deploy_year);
CREATE INDEX IF NOT EXISTS idx_collisions_kind ON collisions(kind);
"""


def connect(path: str, *, busy_timeout_ms: int = 30_000) -> sqlite3.Connection:
    """Open ``path`` with the store's durability pragmas.

    WAL journaling gives single-writer-many-reader concurrency (shard
    stores are merged by a parent that may still be reading the main
    store) and crash-safe commits; ``busy_timeout`` makes a concurrent
    writer *wait* instead of raising ``database is locked`` — the WAL
    discipline the concurrent-shard-writer test exercises.
    """
    # check_same_thread=False: the serve daemon commits miss-path writes
    # from HTTP request threads while the chain follower holds the same
    # connection — all writers serialize on one lock, and sweeps are
    # single-threaded, so cross-thread handoff of the handle is safe.
    connection = sqlite3.connect(path, timeout=busy_timeout_ms / 1000.0,
                                 check_same_thread=False)
    connection.execute(f"PRAGMA busy_timeout = {busy_timeout_ms}")
    # ":memory:" stores silently keep the default journal (WAL needs a
    # file); on-disk stores get WAL + NORMAL sync — fsync at checkpoint
    # boundaries, torn writes recovered from the log on next open.
    connection.execute("PRAGMA journal_mode = WAL")
    connection.execute("PRAGMA synchronous = NORMAL")
    return connection


def stored_schema(connection: sqlite3.Connection) -> str | None:
    """The schema tag recorded in ``meta``, or ``None`` for a fresh db."""
    has_meta = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' AND "
        "name = 'meta'").fetchone()
    if has_meta is None:
        return None
    row = connection.execute(
        "SELECT value FROM meta WHERE key = 'schema'").fetchone()
    return row[0] if row else None


def parse_version(tag: str, path: str) -> int:
    """The integer version of a ``repro.store/N`` tag, or refuse loudly."""
    if not tag.startswith(SCHEMA_PREFIX):
        raise ConfigurationError(
            f"store {path!r} has schema tag {tag!r}, which is not a "
            f"{SCHEMA_PREFIX}* store — refusing to touch it")
    try:
        return int(tag.removeprefix(SCHEMA_PREFIX))
    except ValueError:
        raise ConfigurationError(
            f"store {path!r} has a garbled schema tag {tag!r} — "
            f"refusing to touch it") from None


def ensure_schema(connection: sqlite3.Connection, path: str) -> None:
    """Create a fresh store, accept the current one, migrate, or refuse.

    * empty database → create the version-:data:`VERSION` layout;
    * current version → no-op;
    * older version → run each :data:`MIGRATIONS` step in order (missing
      step = loud refusal: an upgrade hook must exist, never guesswork);
    * newer version or non-store tag → :class:`ConfigurationError` — a
      store written by future code is refused loudly, not half-read.
    """
    tag = stored_schema(connection)
    if tag is None:
        tables = connection.execute(
            "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table'"
        ).fetchone()[0]
        if tables:
            raise ConfigurationError(
                f"store {path!r} is an SQLite database but not a repro "
                f"store (no meta.schema tag) — refusing to touch it")
        connection.executescript(DDL)
        connection.execute(
            "INSERT OR REPLACE INTO meta VALUES ('schema', ?)", (SCHEMA,))
        connection.commit()
        return
    version = parse_version(tag, path)
    if version == VERSION:
        return
    if version > VERSION:
        raise ConfigurationError(
            f"store {path!r} has schema {tag!r}, newer than this "
            f"build's {SCHEMA!r} — refusing to read it (upgrade the "
            f"tool, not the store)")
    while version < VERSION:
        migrate = MIGRATIONS.get(version)
        if migrate is None:
            raise ConfigurationError(
                f"store {path!r} has schema {SCHEMA_PREFIX}{version} and "
                f"no migration hook to {SCHEMA_PREFIX}{version + 1} is "
                f"registered — refusing to guess")
        migrate(connection)
        version += 1
        connection.execute(
            "INSERT OR REPLACE INTO meta VALUES ('schema', ?)",
            (f"{SCHEMA_PREFIX}{version}",))
        connection.commit()


__all__ = [
    "DDL",
    "MIGRATIONS",
    "SCHEMA",
    "SCHEMA_PREFIX",
    "TABLES",
    "VERSION",
    "connect",
    "ensure_schema",
    "parse_version",
    "stored_schema",
]
