"""Full-fidelity serialization of the hash-keyed dedup facts.

The store persists exactly what the §6.1 caches hold — *not* the lossy
report-level projection of :mod:`repro.landscape.serialize`.  A cached
:class:`~repro.core.proxy_detector.ProxyCheck` carries its emulation
error and probe calldata; a cached collision report carries prototypes,
source/bytecode modes and non-colliding pairs.  Dropping any of it would
make a hydrated cache behave differently from the in-memory cache it
replaces (e.g. a restored verdict re-probing, or a clean pair re-run),
so every field round-trips: for each fact kind,
``record_to_x(x_to_record(v)) == v``.

Records are JSON-compatible dicts with deterministic key order and
``0x``-hex bytes, serialized with compact separators by the store layer.
Selector *sets* are stored as sorted lists — bytes hashing is
per-process randomized, and a canonical order keeps the stored JSON
byte-stable across writers.
"""

from __future__ import annotations

from typing import Any

from repro.core.function_collision import (
    FunctionCollision,
    FunctionCollisionReport,
)
from repro.core.proxy_detector import LogicLocation, NotProxyReason, ProxyCheck
from repro.core.storage_collision import (
    RangeUse,
    StorageCollision,
    StorageCollisionReport,
)
from repro.core.symexec import SlotKey


def hex_of(data: bytes | None) -> str | None:
    return None if data is None else "0x" + data.hex()


def unhex(rendered: str | None) -> bytes | None:
    return None if rendered is None else bytes.fromhex(
        rendered.removeprefix("0x"))


# ------------------------------------------------------------ proxy checks
def check_to_record(check: ProxyCheck) -> dict[str, Any]:
    """A code-level proxy verdict, every field included."""
    return {
        "address": hex_of(check.address),
        "is_proxy": check.is_proxy,
        "reason": check.reason.value if check.reason is not None else None,
        "logic_address": hex_of(check.logic_address),
        "logic_location": check.logic_location.value,
        "logic_slot": (hex(check.logic_slot)
                       if check.logic_slot is not None else None),
        "emulation_error": check.emulation_error,
        "probe_calldata": hex_of(check.probe_calldata),
    }


def record_to_check(record: dict[str, Any]) -> ProxyCheck:
    reason = record.get("reason")
    slot = record.get("logic_slot")
    return ProxyCheck(
        address=unhex(record["address"]) or b"",
        is_proxy=record["is_proxy"],
        reason=NotProxyReason(reason) if reason is not None else None,
        logic_address=unhex(record.get("logic_address")),
        logic_location=LogicLocation(record["logic_location"]),
        logic_slot=int(slot, 16) if slot is not None else None,
        emulation_error=record.get("emulation_error"),
        probe_calldata=unhex(record.get("probe_calldata")) or b"",
    )


# ----------------------------------------------------------- selector sets
def selectors_to_record(selectors) -> list[str]:
    """A dispatcher selector set as a canonically ordered hex list."""
    return sorted("0x" + selector.hex() for selector in selectors)


def record_to_selectors(record: list[str]) -> tuple[bytes, ...]:
    return tuple(bytes.fromhex(item.removeprefix("0x")) for item in record)


# ------------------------------------------------------ function collisions
def function_report_to_record(report: FunctionCollisionReport,
                              ) -> dict[str, Any]:
    return {
        "proxy": hex_of(report.proxy),
        "logic": hex_of(report.logic),
        "proxy_mode": report.proxy_mode,
        "logic_mode": report.logic_mode,
        "collisions": [
            {
                "selector": hex_of(collision.selector),
                "proxy_prototype": collision.proxy_prototype,
                "logic_prototype": collision.logic_prototype,
            }
            for collision in report.collisions
        ],
    }


def record_to_function_report(record: dict[str, Any],
                              ) -> FunctionCollisionReport:
    return FunctionCollisionReport(
        proxy=unhex(record.get("proxy")),
        logic=unhex(record.get("logic")),
        collisions=[
            FunctionCollision(
                selector=unhex(entry["selector"]) or b"",
                proxy_prototype=entry.get("proxy_prototype"),
                logic_prototype=entry.get("logic_prototype"),
            )
            for entry in record.get("collisions", [])
        ],
        proxy_mode=record.get("proxy_mode", "bytecode"),
        logic_mode=record.get("logic_mode", "bytecode"),
    )


# ------------------------------------------------------- storage collisions
def _range_to_record(use: RangeUse) -> dict[str, Any]:
    return {
        "offset": use.offset,
        "size": use.size,
        "type_name": use.type_name,
        "origin": use.origin,
        "selector": hex_of(use.selector),
        "guarded": use.guarded,
    }


def _record_to_range(record: dict[str, Any]) -> RangeUse:
    return RangeUse(
        offset=record["offset"],
        size=record["size"],
        type_name=record.get("type_name"),
        origin=record.get("origin", "bytecode"),
        selector=unhex(record.get("selector")),
        guarded=record.get("guarded", False),
    )


def storage_report_to_record(report: StorageCollisionReport,
                             ) -> dict[str, Any]:
    return {
        "proxy": hex_of(report.proxy),
        "logic": hex_of(report.logic),
        "proxy_mode": report.proxy_mode,
        "logic_mode": report.logic_mode,
        "collisions": [
            {
                "slot": {"kind": collision.slot.kind,
                         "base": collision.slot.base},
                "proxy_use": _range_to_record(collision.proxy_use),
                "logic_use": _range_to_record(collision.logic_use),
                "kind": collision.kind,
                "sensitive": collision.sensitive,
                "exploitable": collision.exploitable,
                "verified": collision.verified,
                "exploit_selector": hex_of(collision.exploit_selector),
            }
            for collision in report.collisions
        ],
    }


def record_to_storage_report(record: dict[str, Any],
                             ) -> StorageCollisionReport:
    return StorageCollisionReport(
        proxy=unhex(record.get("proxy")),
        logic=unhex(record.get("logic")),
        collisions=[
            StorageCollision(
                slot=SlotKey(kind=entry["slot"]["kind"],
                             base=entry["slot"]["base"]),
                proxy_use=_record_to_range(entry["proxy_use"]),
                logic_use=_record_to_range(entry["logic_use"]),
                kind=entry["kind"],
                sensitive=entry.get("sensitive", False),
                exploitable=entry.get("exploitable", False),
                verified=entry.get("verified", False),
                exploit_selector=unhex(entry.get("exploit_selector")),
            )
            for entry in record.get("collisions", [])
        ],
        proxy_mode=record.get("proxy_mode", "bytecode"),
        logic_mode=record.get("logic_mode", "bytecode"),
    )


__all__ = [
    "check_to_record",
    "function_report_to_record",
    "hex_of",
    "record_to_check",
    "record_to_function_report",
    "record_to_selectors",
    "record_to_storage_report",
    "selectors_to_record",
    "storage_report_to_record",
    "unhex",
]
