"""``repro.store`` — the durable, content-addressed analysis store.

The paper's §6.1 dedup caches made durable: one crash-safe SQLite file
(schema ``repro.store/1``) splitting **hash-keyed facts** (proxy-check
verdicts, selector sets, per-pair collision reports — keyed by
``keccak256(bytecode)``) from **instance-keyed facts** (per-address
analyses, failures, skips), so verdicts are computed once per unique
blob and survive restarts, ``kill -9`` and corpus growth.  See
``docs/persistence.md`` for the schema, the incremental-sweep semantics
and the fsck runbook.
"""

from repro.store.binding import (
    FactSet,
    RestoredInstances,
    StoreBinding,
    attach_store,
    load_facts,
    open_store,
    open_worker_binding,
    quarantine_store,
    replayed_counter_baseline,
    restore_instances,
    shard_store_path,
)
from repro.store.maintenance import FsckReport, fsck, stats, vacuum
from repro.store.schema import MIGRATIONS, SCHEMA, VERSION
from repro.store.store import AnalysisStore

__all__ = [
    "AnalysisStore",
    "FactSet",
    "FsckReport",
    "MIGRATIONS",
    "RestoredInstances",
    "SCHEMA",
    "StoreBinding",
    "VERSION",
    "attach_store",
    "fsck",
    "load_facts",
    "open_store",
    "open_worker_binding",
    "quarantine_store",
    "replayed_counter_baseline",
    "restore_instances",
    "shard_store_path",
    "stats",
    "vacuum",
]
