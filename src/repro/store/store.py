""":class:`AnalysisStore` — the durable sweep database.

One SQLite file (schema ``repro.store/1``, see
:mod:`repro.store.schema`) holding hash-keyed facts, instance-keyed
facts and the derived query tables.  Writes follow a strict
per-contract transaction discipline: the pipeline's
:class:`~repro.store.binding.StoreBinding` stages fact and instance
writes, then commits exactly once per finished contract — so a
``kill -9`` at any instant rolls back to the last finished contract and
the store is always a *consistent prefix* of the sweep.

Besides the sweep-facing writes, the store carries an offline query
surface (``proxies``, ``logic_chain``, ``collisions``, censuses) over
the derived tables, and the single-row point reads
(``load_analysis_record`` and friends) behind the ``repro.api`` query
records served by ``repro explain --store`` and ``repro serve``.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Iterable

from repro.core.report import ContractAnalysis, ContractFailure, LandscapeReport
from repro.errors import ConfigurationError
from repro.landscape.serialize import (
    analysis_to_dict,
    dict_to_analysis,
    dict_to_failure,
    failure_to_dict,
)
from repro.store import facts as factser
from repro.store.schema import SCHEMA, connect, ensure_schema

_JSON = {"separators": (",", ":"), "sort_keys": True}


def _hex(data: bytes | None) -> str | None:
    return None if data is None else "0x" + data.hex()


class AnalysisStore:
    """Persist and query one corpus's analysis facts.

    ``":memory:"`` gives an ephemeral store (handy in tests).  The
    instance is also a context manager; ``close()`` commits first, so a
    clean exit never loses staged writes.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._connection = connect(path)
        try:
            ensure_schema(self._connection, path)
        except BaseException:
            self._connection.close()
            raise

    # ------------------------------------------------------------ lifecycle
    def commit(self) -> None:
        self._connection.commit()

    def close(self) -> None:
        try:
            self._connection.commit()
        finally:
            self._connection.close()

    def __enter__(self) -> "AnalysisStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ----------------------------------------------------- hash-keyed facts
    def save_check(self, code_hash: bytes, check) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO proxy_verdicts VALUES (?, ?)",
            (_hex(code_hash),
             json.dumps(factser.check_to_record(check), **_JSON)))

    def save_selectors(self, code_hash: bytes, selectors) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO selector_sets VALUES (?, ?)",
            (_hex(code_hash),
             json.dumps(factser.selectors_to_record(selectors), **_JSON)))

    def save_collision_report(self, pair: tuple[bytes, bytes], kind: str,
                              record: dict[str, Any]) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO collision_results VALUES (?, ?, ?, ?)",
            (_hex(pair[0]), _hex(pair[1]), kind,
             json.dumps(record, **_JSON)))

    def load_checks(self) -> dict[bytes, Any]:
        rows = self._connection.execute(
            "SELECT code_hash, check_json FROM proxy_verdicts").fetchall()
        return {factser.unhex(code_hash): factser.record_to_check(
                    json.loads(check_json))
                for code_hash, check_json in rows}

    def load_selector_sets(self) -> dict[bytes, tuple[bytes, ...]]:
        rows = self._connection.execute(
            "SELECT code_hash, selectors_json FROM selector_sets").fetchall()
        return {factser.unhex(code_hash): factser.record_to_selectors(
                    json.loads(selectors_json))
                for code_hash, selectors_json in rows}

    def load_collision_reports(self, kind: str,
                               ) -> dict[tuple[bytes, bytes], Any]:
        rebuild = (factser.record_to_function_report if kind == "function"
                   else factser.record_to_storage_report)
        rows = self._connection.execute(
            "SELECT proxy_hash, logic_hash, report_json FROM "
            "collision_results WHERE kind = ?", (kind,)).fetchall()
        return {(factser.unhex(proxy_hash), factser.unhex(logic_hash)):
                rebuild(json.loads(report_json))
                for proxy_hash, logic_hash, report_json in rows}

    def settled_code_hashes(self) -> set[bytes]:
        """Every codehash with a persisted proxy verdict."""
        rows = self._connection.execute(
            "SELECT code_hash FROM proxy_verdicts").fetchall()
        return {factser.unhex(code_hash) for (code_hash,) in rows}

    # ------------------------------------------------- instance-keyed facts
    def save_analysis(self, analysis: ContractAnalysis) -> None:
        """Stage one contract's full analysis (no commit).

        Writes the instance row, clears any stale failure/skip for the
        same address (the three instance tables are mutually exclusive)
        and rebuilds the derived ``logic_links``/``collisions`` rows.
        """
        check = analysis.check
        address_hex = _hex(analysis.address)
        record = analysis_to_dict(analysis)
        self._connection.execute(
            "INSERT OR REPLACE INTO analyses VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                address_hex,
                _hex(analysis.code_hash),
                int(analysis.is_proxy),
                analysis.standard.value if analysis.standard else None,
                check.logic_location.value if check else None,
                (hex(check.logic_slot)
                 if check and check.logic_slot is not None else None),
                analysis.deploy_block,
                analysis.deploy_year,
                int(analysis.has_source),
                int(analysis.has_transactions),
                int(analysis.emulation_failed),
                json.dumps(record, **_JSON),
            ))
        self._connection.execute(
            "DELETE FROM failures WHERE address = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM skips WHERE address = ?", (address_hex,))
        self._write_derived(address_hex, analysis)

    def _write_derived(self, address_hex: str,
                       analysis: ContractAnalysis) -> None:
        self._connection.execute(
            "DELETE FROM logic_links WHERE proxy = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM collisions WHERE proxy = ?", (address_hex,))
        if analysis.logic_history is not None:
            self._connection.executemany(
                "INSERT OR REPLACE INTO logic_links VALUES (?, ?, ?)",
                [(address_hex, position, _hex(logic))
                 for position, logic in enumerate(
                     analysis.logic_history.logic_addresses)])
        for report in analysis.function_reports:
            for collision in report.collisions:
                self._connection.execute(
                    "INSERT INTO collisions VALUES "
                    "(?, ?, 'function', ?, 0, 0)",
                    (address_hex, _hex(report.logic),
                     _hex(collision.selector)))
        for report in analysis.storage_reports:
            for collision in report.collisions:
                self._connection.execute(
                    "INSERT INTO collisions VALUES (?, ?, 'storage', ?, ?, ?)",
                    (address_hex, _hex(report.logic), str(collision.slot),
                     int(collision.sensitive), int(collision.verified)))

    def save_failure(self, failure: ContractFailure) -> None:
        address_hex = _hex(failure.address)
        self._connection.execute(
            "INSERT OR REPLACE INTO failures VALUES (?, ?)",
            (address_hex, json.dumps(failure_to_dict(failure), **_JSON)))
        self._connection.execute(
            "DELETE FROM analyses WHERE address = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM skips WHERE address = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM logic_links WHERE proxy = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM collisions WHERE proxy = ?", (address_hex,))

    def invalidate_instances(self, addresses: Iterable[bytes]) -> int:
        """Drop every instance-keyed fact for ``addresses`` (no commit).

        The reorg rollback path: a deployment orphaned by a chain
        reorganization no longer exists on the canonical branch, so its
        per-address rows (``analyses``/``failures``/``skips`` plus the
        derived ``logic_links``/``collisions``) must go.  Hash-keyed facts
        are deliberately untouched — a bytecode verdict is true on any
        branch.  Returns how many instance rows were removed.
        """
        removed = 0
        for address in addresses:
            address_hex = _hex(address)
            for table in ("analyses", "failures", "skips"):
                cursor = self._connection.execute(
                    f"DELETE FROM {table} WHERE address = ?", (address_hex,))
                removed += cursor.rowcount
            for table in ("logic_links", "collisions"):
                self._connection.execute(
                    f"DELETE FROM {table} WHERE proxy = ?", (address_hex,))
        return removed

    def save_skip(self, address: bytes) -> None:
        address_hex = _hex(address)
        self._connection.execute(
            "INSERT OR REPLACE INTO skips VALUES (?)", (address_hex,))
        self._connection.execute(
            "DELETE FROM analyses WHERE address = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM failures WHERE address = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM logic_links WHERE proxy = ?", (address_hex,))
        self._connection.execute(
            "DELETE FROM collisions WHERE proxy = ?", (address_hex,))

    # ------------------------------------------------------------ point reads
    # The `repro.api` query surface: one address, one row, no full scan.
    # WAL mode lets any number of reader connections run these while a
    # sweep's StoreBinding commits — the serve daemon's whole read path.
    def load_analysis_record(self, address: bytes) -> dict[str, Any] | None:
        row = self._connection.execute(
            "SELECT analysis_json FROM analyses WHERE address = ?",
            (_hex(address),)).fetchone()
        return json.loads(row[0]) if row else None

    def load_failure_record(self, address: bytes) -> dict[str, Any] | None:
        row = self._connection.execute(
            "SELECT failure_json FROM failures WHERE address = ?",
            (_hex(address),)).fetchone()
        return json.loads(row[0]) if row else None

    def has_skip(self, address: bytes) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM skips WHERE address = ?",
            (_hex(address),)).fetchone()
        return row is not None

    def load_analyses(self) -> dict[bytes, dict[str, Any]]:
        """Serialized analysis records by address (restore parses lazily)."""
        rows = self._connection.execute(
            "SELECT address, analysis_json FROM analyses").fetchall()
        return {factser.unhex(address): json.loads(analysis_json)
                for address, analysis_json in rows}

    def load_failures(self) -> dict[bytes, ContractFailure]:
        rows = self._connection.execute(
            "SELECT address, failure_json FROM failures").fetchall()
        return {factser.unhex(address): dict_to_failure(
                    json.loads(failure_json))
                for address, failure_json in rows}

    def load_skips(self) -> set[bytes]:
        rows = self._connection.execute(
            "SELECT address FROM skips").fetchall()
        return {factser.unhex(address) for (address,) in rows}

    # ------------------------------------------------------------- bulk API
    def save_report(self, report: LandscapeReport) -> None:
        """Persist a finished sweep in one transaction (post-hoc dump)."""
        for analysis in report.analyses.values():
            self.save_analysis(analysis)
        for failure in report.failures.values():
            self.save_failure(failure)
        self._connection.commit()

    def merge_from(self, shard_path: str) -> None:
        """Fold one shard store into this one (the checkpoint idiom).

        The parent of a parallel sweep merges each worker's
        ``PATH.shardNN`` store after the workers exit — single writer per
        file during the sweep, one ATTACH-copy transaction per shard
        afterwards.  Facts are idempotent (content-addressed, so REPLACE
        is a no-op on equal rows); instance rows displace any stale row
        of another kind for the same address.
        """
        connection = self._connection
        connection.commit()          # ATTACH refuses inside a transaction
        connection.execute("ATTACH DATABASE ? AS shard", (shard_path,))
        try:
            tag = connection.execute(
                "SELECT value FROM shard.meta WHERE key = 'schema'"
            ).fetchone()
            if tag is None or tag[0] != SCHEMA:
                raise ConfigurationError(
                    f"shard store {shard_path!r} has schema "
                    f"{tag[0] if tag else None!r}, expected {SCHEMA!r} — "
                    f"refusing to merge")
            connection.execute("BEGIN")
            for table in ("proxy_verdicts", "selector_sets",
                          "collision_results"):
                connection.execute(
                    f"INSERT OR REPLACE INTO {table} "
                    f"SELECT * FROM shard.{table}")
            for target in ("analyses", "failures", "skips"):
                for source in ("analyses", "failures", "skips"):
                    if source == target:
                        continue
                    connection.execute(
                        f"DELETE FROM {target} WHERE address IN "
                        f"(SELECT address FROM shard.{source})")
                connection.execute(
                    f"INSERT OR REPLACE INTO {target} "
                    f"SELECT * FROM shard.{target}")
            for table in ("logic_links", "collisions"):
                connection.execute(
                    f"DELETE FROM {table} WHERE proxy IN "
                    f"(SELECT address FROM shard.analyses)")
            connection.execute(
                "INSERT OR REPLACE INTO logic_links "
                "SELECT * FROM shard.logic_links")
            connection.execute(
                "INSERT INTO collisions SELECT * FROM shard.collisions")
            connection.execute("COMMIT")
        except BaseException:
            try:
                connection.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        finally:
            connection.execute("DETACH DATABASE shard")

    # ------------------------------------------------- offline query surface
    def contract_count(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM analyses").fetchone()
        return row[0]

    def proxies(self, standard: str | None = None,
                year: int | None = None,
                hidden_only: bool = False) -> list[tuple]:
        query = ("SELECT address, code_hash, has_source, has_tx, "
                 "deploy_year, is_proxy, standard FROM analyses "
                 "WHERE is_proxy = 1")
        parameters: list = []
        if standard is not None:
            query += " AND standard = ?"
            parameters.append(standard)
        if year is not None:
            query += " AND deploy_year = ?"
            parameters.append(year)
        if hidden_only:
            query += " AND has_source = 0 AND has_tx = 0"
        return self._connection.execute(query, parameters).fetchall()

    def logic_chain(self, proxy_address: str) -> list[str]:
        rows = self._connection.execute(
            "SELECT logic FROM logic_links WHERE proxy = ? "
            "ORDER BY position", (proxy_address,)).fetchall()
        return [row[0] for row in rows]

    def collisions(self, kind: str | None = None,
                   verified_only: bool = False) -> list[tuple[str, str, str]]:
        query = "SELECT proxy, logic, detail FROM collisions WHERE 1=1"
        parameters: list = []
        if kind is not None:
            query += " AND kind = ?"
            parameters.append(kind)
        if verified_only:
            query += " AND verified = 1"
        return self._connection.execute(query, parameters).fetchall()

    def standards_census(self) -> dict[str, int]:
        rows = self._connection.execute(
            "SELECT standard, COUNT(*) FROM analyses "
            "WHERE is_proxy = 1 GROUP BY standard").fetchall()
        return {standard: count for standard, count in rows}

    def yearly_counts(self) -> dict[int, int]:
        rows = self._connection.execute(
            "SELECT deploy_year, COUNT(*) FROM analyses "
            "WHERE deploy_year IS NOT NULL GROUP BY deploy_year").fetchall()
        return {year: count for year, count in rows}

    # ------------------------------------------------------------ utilities
    def restored_analyses(self, addresses: Iterable[bytes] | None = None,
                          ) -> list[ContractAnalysis]:
        """Rebuilt analyses, in ``addresses`` order when given."""
        records = self.load_analyses()
        if addresses is None:
            return [dict_to_analysis(record) for record in records.values()]
        return [dict_to_analysis(records[address]) for address in addresses
                if address in records]


__all__ = ["AnalysisStore"]
