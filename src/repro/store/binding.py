"""Wiring between :class:`~repro.store.store.AnalysisStore` and the pipeline.

:class:`StoreBinding` is what a :class:`~repro.core.pipeline.Proxion`
actually holds: the three §6.1 dedup caches (plus the selector-set
cache) as *write-through dicts* hydrated from the store, and the
per-contract record hooks that commit one transaction per finished
contract.  The pipeline keeps using plain ``dict`` operations — the
binding makes them durable.

Failure philosophy (the robustness headline):

* a store that cannot be *opened* is quarantined (renamed to
  ``PATH.quarantined``) and replaced, or — when even that fails — the
  sweep runs with plain in-memory caches.  An operator-paid sweep is
  never aborted over its cache layer;
* a store write that fails mid-sweep :meth:`~StoreBinding.disable`\\ s
  the binding — one warning, a ``store.write_errors`` tick, and the
  dicts keep working purely in memory;
* schema mismatches are the one *loud* failure
  (:class:`~repro.errors.ConfigurationError`): silently ignoring a
  future layout risks corrupting it.

Incremental restore and the counter-replay baseline live here too:
:func:`restore_instances` re-surveys a grown corpus by fetching each
address's code and validating it against the stored codehash (only
byte-identical deployments are trusted), and
:func:`replayed_counter_baseline` reconstructs the dedup counters a
from-scratch sweep would have accrued over the restored prefix — by
replaying cache behavior over the restored analyses, *not* by trusting
any stored counter, so a ``kill -9`` can never leave the baseline stale.
"""

from __future__ import annotations

import os
import sqlite3
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.report import ContractAnalysis, ContractFailure
from repro.errors import ConfigurationError
from repro.landscape.serialize import dict_to_analysis
from repro.store import facts as factser
from repro.store.store import AnalysisStore
from repro.utils.keccak import keccak256


def _default_warn(message: str) -> None:
    print(message, file=sys.stderr)


def shard_store_path(path: str, shard: int) -> str:
    """The per-shard store of a parallel sweep (the checkpoint idiom).

    Workers of a sharded sweep never share a writable database: shard
    ``N`` writes ``PATH.shardNN`` exclusively, and the parent folds the
    shard stores into ``PATH`` after the workers exit
    (:meth:`AnalysisStore.merge_from`).
    """
    return f"{path}.shard{shard:02d}"


# ----------------------------------------------------------------- fact sets
@dataclass(slots=True)
class FactSet:
    """The hash-keyed cache contents, as plain dicts."""

    checks: dict[bytes, Any] = field(default_factory=dict)
    selectors: dict[bytes, tuple[bytes, ...]] = field(default_factory=dict)
    function_reports: dict[tuple[bytes, bytes], Any] = field(
        default_factory=dict)
    storage_reports: dict[tuple[bytes, bytes], Any] = field(
        default_factory=dict)

    def absorb(self, other: "FactSet") -> None:
        """Overlay ``other``'s facts (other wins on shared keys)."""
        self.checks.update(other.checks)
        self.selectors.update(other.selectors)
        self.function_reports.update(other.function_reports)
        self.storage_reports.update(other.storage_reports)


def load_facts(store: AnalysisStore) -> FactSet:
    """Hydrate every hash-keyed fact of a store."""
    return FactSet(
        checks=store.load_checks(),
        selectors={code_hash: selectors for code_hash, selectors
                   in store.load_selector_sets().items()},
        function_reports=store.load_collision_reports("function"),
        storage_reports=store.load_collision_reports("storage"),
    )


class _WriteThrough(dict):
    """A dict whose inserts also persist through a (guarded) writer."""

    __slots__ = ("_write",)

    def __init__(self, initial: dict, write: Callable[[Any, Any], None],
                 ) -> None:
        super().__init__(initial)
        self._write = write

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._write(key, value)


# ------------------------------------------------------------------ binding
class StoreBinding:
    """One pipeline's live connection to an :class:`AnalysisStore`."""

    def __init__(self, store: AnalysisStore, *,
                 incremental: bool = False,
                 facts: FactSet | None = None,
                 warn: Callable[[str], None] | None = None) -> None:
        self.store = store
        self.path = store.path
        #: When set, ``analyze_all`` restores instance facts from the
        #: store and sweeps only the delta.
        self.incremental = incremental
        self.disabled = False
        self._warn = warn if warn is not None else _default_warn
        self._write_errors = None  # bound by :meth:`bind_metrics`
        self._reorg_invalidations = None
        facts = facts if facts is not None else load_facts(store)
        self.check_cache: dict = _WriteThrough(
            facts.checks,
            lambda key, value: self._guard(store.save_check, key, value))
        self.selector_cache: dict = _WriteThrough(
            facts.selectors,
            lambda key, value: self._guard(store.save_selectors, key, value))
        self.function_cache: dict = _WriteThrough(
            facts.function_reports,
            lambda key, value: self._guard(self._save_function, key, value))
        self.storage_cache: dict = _WriteThrough(
            facts.storage_reports,
            lambda key, value: self._guard(self._save_storage, key, value))

    # ------------------------------------------------------------- plumbing
    def bind_metrics(self, registry) -> None:
        self._write_errors = registry.counter("store.write_errors")
        self._reorg_invalidations = registry.counter(
            "store.reorg_invalidations")

    def disable(self, reason: str) -> None:
        """Degrade to in-memory caches; warn once, never abort the sweep."""
        if self.disabled:
            return
        self.disabled = True
        if self._write_errors is not None:
            self._write_errors.inc()
        self._warn(f"store: {reason} — continuing with in-memory caches "
                   f"only (run `repro store fsck {self.path}` afterwards)")

    def _guard(self, write: Callable, *args) -> None:
        if self.disabled:
            return
        try:
            write(*args)
        except ConfigurationError:
            raise
        except Exception as error:
            self.disable(f"write to {self.path!r} failed ({error})")

    def _save_function(self, pair: tuple[bytes, bytes], report) -> None:
        self.store.save_collision_report(
            pair, "function", factser.function_report_to_record(report))

    def _save_storage(self, pair: tuple[bytes, bytes], report) -> None:
        self.store.save_collision_report(
            pair, "storage", factser.storage_report_to_record(report))

    # ------------------------------------------------- per-contract commits
    def record_analysis(self, analysis: ContractAnalysis) -> None:
        """Persist one finished contract — facts staged since the last
        commit ride in the same transaction, so a ``kill -9`` leaves the
        store at an exact contract boundary."""
        self._guard(self._commit_analysis, analysis)

    def _commit_analysis(self, analysis: ContractAnalysis) -> None:
        self.store.save_analysis(analysis)
        self.store.commit()

    def record_failure(self, failure: ContractFailure) -> None:
        self._guard(self._commit_failure, failure)

    def _commit_failure(self, failure: ContractFailure) -> None:
        self.store.save_failure(failure)
        self.store.commit()

    def record_skip(self, address: bytes) -> None:
        self._guard(self._commit_skip, address)

    def _commit_skip(self, address: bytes) -> None:
        self.store.save_skip(address)
        self.store.commit()

    def invalidate_instances(self, addresses: Sequence[bytes]) -> int:
        """Roll back instance facts for reorg-orphaned deployments.

        Same guarded, one-transaction discipline as the record hooks;
        hash-keyed caches stay warm (a bytecode verdict holds on any
        branch).  Returns the number of rows removed (0 when the binding
        is disabled or the write fails).
        """
        if self.disabled or not addresses:
            return 0
        removed = 0
        try:
            removed = self.store.invalidate_instances(addresses)
            self.store.commit()
        except ConfigurationError:
            raise
        except Exception as error:
            self.disable(f"write to {self.path!r} failed ({error})")
            return 0
        if self._reorg_invalidations is not None and removed:
            self._reorg_invalidations.inc(removed)
        return removed

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        try:
            self.store.close()
        except Exception as error:
            if not self.disabled:
                self._warn(f"store: closing {self.path!r} failed ({error})")

    def __enter__(self) -> "StoreBinding":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ------------------------------------------------------- opening & fallback
def quarantine_store(path: str) -> str:
    """Move an unreadable store (and WAL sidecars) out of the way."""
    target = path + ".quarantined"
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = f"{path}.quarantined.{suffix}"
    os.replace(path, target)
    for ext in ("-wal", "-shm"):
        if os.path.exists(path + ext):
            os.replace(path + ext, target + ext)
    return target


def open_store(path: str,
               warn: Callable[[str], None] = _default_warn,
               ) -> AnalysisStore | None:
    """Open (or create) a store; quarantine corruption; never raise I/O.

    Returns ``None`` when no durable store can be had — the caller runs
    with in-memory caches.  :class:`ConfigurationError` (schema
    mismatch, foreign database) still propagates: those are refused
    loudly, not silently replaced.
    """
    try:
        return AnalysisStore(path)
    except ConfigurationError:
        raise
    except sqlite3.DatabaseError as error:
        try:
            quarantined = quarantine_store(path)
        except OSError as move_error:
            warn(f"store: {path!r} is unreadable ({error}) and could not "
                 f"be quarantined ({move_error}) — running with in-memory "
                 f"caches only")
            return None
        warn(f"store: {path!r} is unreadable ({error}); quarantined to "
             f"{quarantined!r} and starting fresh")
        try:
            return AnalysisStore(path)
        except Exception as create_error:
            warn(f"store: cannot recreate {path!r} ({create_error}) — "
                 f"running with in-memory caches only")
            return None
    except OSError as error:
        warn(f"store: cannot open {path!r} ({error}) — running with "
             f"in-memory caches only")
        return None


def attach_store(path: str, *, incremental: bool = False,
                 warn: Callable[[str], None] = _default_warn,
                 ) -> StoreBinding | None:
    """Open ``path`` and hydrate a pipeline binding, degrading gracefully."""
    store = open_store(path, warn=warn)
    if store is None:
        return None
    try:
        facts = load_facts(store)
    except ConfigurationError:
        raise
    except Exception as error:
        try:
            store.close()
        except Exception:
            pass
        try:
            quarantined = quarantine_store(path)
        except OSError:
            warn(f"store: {path!r} has unreadable fact rows ({error}) — "
                 f"running with in-memory caches only (try `repro store "
                 f"fsck {path} --repair`)")
            return None
        warn(f"store: {path!r} has unreadable fact rows ({error}); "
             f"quarantined to {quarantined!r} and starting fresh")
        try:
            store = AnalysisStore(path)
        except Exception:
            return None
        facts = FactSet()
    return StoreBinding(store, incremental=incremental, facts=facts,
                        warn=warn)


def open_worker_binding(store_spec: tuple[str, bool] | None,
                        shard_index: int,
                        warn: Callable[[str], None] = _default_warn,
                        ) -> StoreBinding | None:
    """One shard worker's binding: warm facts in, shard store out.

    The worker *reads* hash-keyed facts from the main store (when the
    sweep is incremental — WAL lets it share the file with the parent's
    reader) but *writes* exclusively to its own
    :func:`shard_store_path` database, upholding the
    single-writer-per-shard discipline; the parent merges afterwards.
    Instance restore stays in the parent (it partitions the pending
    addresses), so worker bindings are never ``incremental``.
    """
    if store_spec is None:
        return None
    path, incremental = store_spec
    shard_path = shard_store_path(path, shard_index)
    store = open_store(shard_path, warn=warn)
    if store is None:
        return None
    try:
        facts = load_facts(store)  # a respawned worker re-reads its own
    except Exception as error:
        warn(f"store: shard store {shard_path!r} is unreadable ({error}) "
             f"— shard {shard_index} runs with in-memory caches only")
        try:
            store.close()
        except Exception:
            pass
        return None
    if incremental:
        try:
            with AnalysisStore(path) as main:
                warm = load_facts(main)
            warm.absorb(facts)   # the shard's own (newer) facts win
            facts = warm
        except ConfigurationError:
            raise
        except Exception as error:
            warn(f"store: cannot hydrate warm facts from {path!r} "
                 f"({error}) — shard {shard_index} sweeps cold")
    return StoreBinding(store, incremental=False, facts=facts, warn=warn)


# ------------------------------------------------------- incremental restore
@dataclass(slots=True)
class RestoredInstances:
    """What an incremental sweep recovered from the store."""

    analyses: list[ContractAnalysis] = field(default_factory=list)
    failures: list[ContractFailure] = field(default_factory=list)
    skips: set[bytes] = field(default_factory=set)
    completed: set[bytes] = field(default_factory=set)
    #: Stored instances whose on-chain code no longer matches the stored
    #: codehash (redeploys, resurrections) — re-analyzed, not trusted.
    invalidated: int = 0


def restore_instances(store: AnalysisStore,
                      addresses: Sequence[bytes],
                      code_of: Callable[[bytes], bytes],
                      already: frozenset[bytes] | set[bytes] = frozenset(),
                      ) -> RestoredInstances:
    """Re-survey a corpus against the store, trusting only verified rows.

    For every address (in sweep order) the *current* code is fetched and
    its keccak256 compared to the stored instance's codehash — a stored
    analysis is restored only for a byte-identical deployment, a stored
    skip only for a still-code-less address.  Anything else is left to
    the live sweep, so corpus mutation degrades to re-analysis, never to
    stale results.  ``already`` (e.g. checkpoint-restored addresses)
    are skipped outright.
    """
    records = store.load_analyses()
    failures = store.load_failures()
    skips = store.load_skips()
    restored = RestoredInstances()
    for address in addresses:
        if address in already:
            continue
        record = records.get(address)
        if record is not None:
            code = code_of(address)
            stored_hash = record.get("code_hash")
            if code and "0x" + keccak256(code).hex() == stored_hash:
                restored.analyses.append(dict_to_analysis(record))
                restored.completed.add(address)
            else:
                restored.invalidated += 1
            continue
        failure = failures.get(address)
        if failure is not None:
            # Failures restore unconditionally, mirroring checkpoint
            # resume: a quarantined contract stays quarantined until the
            # operator re-sweeps without --incremental.
            restored.failures.append(failure)
            restored.completed.add(address)
            continue
        if address in skips:
            if not code_of(address):
                restored.skips.add(address)
                restored.completed.add(address)
            else:
                restored.invalidated += 1
    return restored


#: The per-sweep counter fields reconstructed by the replay baseline.
_BASE_FIELDS = (
    "proxy_check_cache_hits", "proxy_check_cache_misses",
    "function_cache_hits", "function_cache_misses",
    "storage_cache_hits", "storage_cache_misses",
    "collision_cache_hits",
)


def replayed_counter_baseline(analyses: Iterable[ContractAnalysis],
                              code_of: Callable[[bytes], bytes],
                              options) -> dict[str, int]:
    """The dedup counters a cold sweep would accrue over ``analyses``.

    Replays the cache hit/miss behavior of
    :meth:`~repro.core.pipeline.Proxion.analyze_all` over the restored
    analyses *in sweep order*, starting from empty caches: first sight
    of a codehash is a miss, every repeat a hit; ditto per
    (proxy-code, logic-code) pair for the collision caches.  Added to
    the delta sweep's own counters this reconstructs exactly the
    from-scratch totals — **without persisting counters**, which a
    ``kill -9`` could leave stale.  (Restored *failures* contribute
    nothing: their partial cache traffic is unknowable, and they only
    exist on chaos paths where ``summary.dedup`` divergence is already
    the documented exception.)
    """
    base = dict.fromkeys(_BASE_FIELDS, 0)
    seen_hashes: set[bytes] = set()
    seen_pairs: set[tuple[bytes, bytes]] = set()
    pair_hits = pair_misses = 0
    for analysis in analyses:
        if not options.dedup_by_code_hash:
            base["proxy_check_cache_misses"] += 1
        elif analysis.code_hash in seen_hashes:
            base["proxy_check_cache_hits"] += 1
        else:
            seen_hashes.add(analysis.code_hash)
            base["proxy_check_cache_misses"] += 1
        if analysis.logic_history is None:
            continue
        for logic_address in analysis.logic_history.logic_addresses:
            logic_code = code_of(logic_address)
            if not logic_code:
                continue
            pair = (analysis.code_hash, keccak256(logic_code))
            if pair in seen_pairs:
                pair_hits += 1
            else:
                seen_pairs.add(pair)
                pair_misses += 1
    if options.detect_function_collisions:
        base["function_cache_hits"] = pair_hits
        base["function_cache_misses"] = pair_misses
    if options.detect_storage_collisions:
        base["storage_cache_hits"] = pair_hits
        base["storage_cache_misses"] = pair_misses
    base["collision_cache_hits"] = (base["function_cache_hits"]
                                    + base["storage_cache_hits"])
    return base


__all__ = [
    "FactSet",
    "RestoredInstances",
    "StoreBinding",
    "attach_store",
    "load_facts",
    "open_store",
    "open_worker_binding",
    "quarantine_store",
    "replayed_counter_baseline",
    "restore_instances",
    "shard_store_path",
]
