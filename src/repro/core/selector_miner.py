"""Function-selector collision mining (the §2.3 attacker experiment).

The paper observes that crafting a function whose 4-byte selector collides
with a target function is "remarkably easy": the authors found a name
hashing to ``free_ether_withdrawal()``'s ``0xdf4a3106`` after ~600 million
attempts in 1.5 hours on a laptop.  This module implements that attack
primitive honestly:

* :func:`mine_selector` searches candidate prototypes
  (``{prefix}{counter}()``) for one whose selector matches the target on
  its first ``prefix_bits`` bits.  Full 32-bit collisions take 2³¹ expected
  attempts — run it with a smaller ``prefix_bits`` for demos/tests and use
  :func:`estimate_full_collision_attempts` to extrapolate, exactly as the
  paper reports its wall-clock figure.
* :func:`mining_rate` measures local attempts/second.

This is an analysis/education utility for understanding how cheap the
attack is; ProxioN's detectors are the defense.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail
from repro.obs.registry import default_registry
from repro.obs.spans import SpanTracer
from repro.utils.abi import function_selector

# All mining timings flow through one tracer on the shared obs clock, so
# ``span.seconds{name="selector_mining"|"mining_rate"}`` histograms in the
# process-wide registry see every run (pass your own tracer to redirect).
_tracer = SpanTracer(registry=default_registry())


@dataclass(frozen=True, slots=True)
class MiningResult:
    """Outcome of a selector-collision search."""

    prototype: str | None      # the colliding prototype, or None if not found
    attempts: int
    seconds: float
    target: bytes
    matched_bits: int

    @property
    def found(self) -> bool:
        return self.prototype is not None

    @property
    def attempts_per_second(self) -> float:
        return self.attempts / self.seconds if self.seconds else 0.0


def _matches(selector: bytes, target: bytes, bits: int) -> bool:
    if bits >= 32:
        return selector == target
    full_bytes, tail_bits = divmod(bits, 8)
    if selector[:full_bytes] != target[:full_bytes]:
        return False
    if tail_bits == 0:
        return True
    mask = (0xFF << (8 - tail_bits)) & 0xFF
    return (selector[full_bytes] & mask) == (target[full_bytes] & mask)


def mine_selector(target: bytes, prefix_bits: int = 32,
                  max_attempts: int = 10_000_000,
                  name_prefix: str = "impl_",
                  tracer: SpanTracer | None = None,
                  trail: EvidenceTrail = NULL_TRAIL) -> MiningResult:
    """Search for a prototype colliding with ``target`` on ``prefix_bits``.

    Expected attempts: 2**prefix_bits / 2 on average.  With the pure-Python
    Keccak this runs ~10⁴ attempts/second, so keep ``prefix_bits ≤ 20`` in
    interactive use and extrapolate for the full 32 bits.  ``trail``
    records the attempt budget spent and the mined prototype, so an
    attack selector cited elsewhere can show where it came from.
    """
    if len(target) != 4:
        raise ConfigurationError("target selector must be 4 bytes")
    if not 1 <= prefix_bits <= 32:
        raise ConfigurationError("prefix_bits must be in 1..32")

    tracer = tracer or _tracer
    with tracer.span("selector_mining", target="0x" + target.hex(),
                     prefix_bits=prefix_bits) as span:
        found: str | None = None
        attempts = max_attempts
        for attempt in range(max_attempts):
            prototype = f"{name_prefix}{attempt:x}()"
            if _matches(function_selector(prototype), target, prefix_bits):
                found = prototype
                attempts = attempt + 1
                break
        span.set(attempts=attempts, found=found is not None)
        if found is not None:
            trail.note(provenance.MINING_RESULT, name=found,
                       selector="0x" + target.hex(), attempts=attempts,
                       prefix_bits=prefix_bits)
        else:
            trail.note(provenance.MINING_ATTEMPT, name=name_prefix + "*",
                       attempts=attempts, prefix_bits=prefix_bits)
    return MiningResult(
        prototype=found,
        attempts=attempts,
        seconds=span.duration,
        target=target,
        matched_bits=prefix_bits,
    )


def mining_rate(sample_attempts: int = 3000,
                tracer: SpanTracer | None = None) -> float:
    """Local selector-hashing throughput in attempts/second."""
    tracer = tracer or _tracer
    with tracer.span("mining_rate", attempts=sample_attempts) as span:
        for attempt in range(sample_attempts):
            function_selector(f"rate_probe_{attempt}()")
    elapsed = span.duration
    return sample_attempts / elapsed if elapsed else 0.0


def estimate_full_collision_attempts() -> int:
    """Expected attempts for a full 4-byte collision (2³¹ on average)."""
    return 1 << 31


def estimate_full_collision_hours(rate: float | None = None) -> float:
    """Extrapolated wall-clock hours for a full collision at ``rate``.

    The paper: ~600M attempts in 1.5h on a commodity laptop (a compiled
    hasher at ~10⁵–10⁶ H/s); the pure-Python sponge here is slower, and the
    estimate reflects *this* machine honestly.
    """
    rate = rate or mining_rate()
    return estimate_full_collision_attempts() / rate / 3600
