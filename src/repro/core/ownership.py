"""Upgradeability ownership analysis (the Salehi et al. study, §9.1).

Two questions about each identified proxy:

* **Who can upgrade it?**  The admin/owner address is read from the
  standard slots (EIP-1967 admin slot, or the conventional owner at slot 0
  for non-standard proxies) and classified as an EOA, a contract (e.g. a
  multisig or governor), or absent.
* **Is it a transparent proxy?**  OpenZeppelin's collision mitigation
  (§3.1): the admin never reaches the fallback delegation.  Detected
  behaviourally — re-run the §4.2 probe with the admin as sender; a proxy
  that forwards for strangers but refuses the admin is transparent, which
  means its function collisions are not triggerable by the admin and its
  user-facing selectors always delegate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.chain.node import ArchiveNode
from repro.core.calldata import craft_probe_calldata
from repro.core.proxy_detector import LogicLocation, ProxyCheck
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState
from repro.errors import ConfigurationError
from repro.evm.tracer import CallTracer
from repro.lang.storage_layout import EIP1967_ADMIN_SLOT
from repro.utils.hexutil import ADDRESS_MASK, word_to_address


class OwnerKind(enum.Enum):
    """Who holds the upgrade authority."""

    EOA = "eoa"                  # an externally owned account
    CONTRACT = "contract"        # a contract (multisig, timelock, governor)
    NONE = "none"                # no recognizable owner slot / zero address


@dataclass(frozen=True, slots=True)
class OwnershipReport:
    """Upgrade-authority facts for one proxy."""

    proxy: bytes
    owner: bytes | None
    owner_kind: OwnerKind
    owner_slot: int | None
    is_transparent: bool

    @property
    def upgradeable(self) -> bool:
        return self.owner_kind is not OwnerKind.NONE


class OwnershipAnalyzer:
    """Reads admin slots and probes transparent-proxy behaviour."""

    def __init__(self, node: ArchiveNode,
                 block: BlockContext | None = None) -> None:
        self._node = node
        self._state = node.chain.state
        self._block = block or node.chain.block_context()

    def analyze(self, check: ProxyCheck) -> OwnershipReport:
        if not check.is_proxy:
            raise ConfigurationError("ownership analysis requires a positive check")
        owner, slot = self._find_owner(check)
        transparent = (owner is not None
                       and self._refuses_admin_fallback(check, owner))
        return OwnershipReport(
            proxy=check.address,
            owner=owner,
            owner_kind=self._classify(owner),
            owner_slot=slot,
            is_transparent=transparent,
        )

    # ------------------------------------------------------------- internals
    def _find_owner(self, check: ProxyCheck) -> tuple[bytes | None, int | None]:
        if check.logic_location is LogicLocation.HARDCODED:
            # Minimal proxies are immutable: nobody can upgrade them.
            return None, None
        for slot in (EIP1967_ADMIN_SLOT, 0):
            word = self._node.get_storage_at(check.address, slot)
            address = word_to_address(word & ADDRESS_MASK)
            if any(address) and address != check.logic_address:
                return address, slot
        return None, None

    def _classify(self, owner: bytes | None) -> OwnerKind:
        if owner is None or not any(owner):
            return OwnerKind.NONE
        if self._state.get_code(owner):
            return OwnerKind.CONTRACT
        return OwnerKind.EOA

    def _refuses_admin_fallback(self, check: ProxyCheck,
                                admin: bytes) -> bool:
        """Probe the fallback as the admin: transparent proxies refuse."""
        code = self._state.get_code(check.address)
        probe = craft_probe_calldata(code)
        tracer = CallTracer()
        evm = EVM(
            OverlayState(self._state),
            block=self._block,
            tx=TransactionContext(origin=admin),
            config=ExecutionConfig(instruction_budget=500_000),
            tracer=tracer,
        )
        evm.execute(Message(sender=admin, to=check.address, data=probe,
                            gas=5_000_000))
        forwarded = any(
            event.kind == "DELEGATECALL" and event.input_data == probe
            for event in tracer.calls)
        return not forwarded
