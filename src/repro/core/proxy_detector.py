"""Two-step proxy detection (§4.1–§4.2): disassembly prefilter + emulation.

Step 1 discards bytecode with no ``DELEGATECALL`` at an instruction
boundary.  Step 2 executes the contract in an emulated EVM with crafted
calldata whose selector avoids every PUSH4 operand, guaranteeing the
fallback path runs.  The contract is a proxy iff a DELEGATECALL is observed
forwarding the *received calldata unmodified* to another contract — the
criterion that excludes library calls (§2.2) and plain-CALL forwarders.

The emulation never touches real chain state: it runs on an
:class:`~repro.evm.state.OverlayState` over the archive view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.calldata import craft_probe_calldata
from repro.core.signature_extractor import address_hardcoded_in
from repro.evm.disassembler import contains_delegatecall
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState, StateBackend
from repro.evm.tracer import CallTracer, CombinedTracer, StorageTracer, Tracer
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail
from repro.utils.hexutil import address_to_word

# §4.2: created contracts are parked at a fixed sentinel address during
# emulation; collision probability with a real account is negligible.
EMULATION_CREATE_ADDRESS = bytes.fromhex("0c0ffee00000000000000000000000000c0ffee0")

# A plausible externally-owned probe sender (never the zero address, which
# some contracts special-case).
PROBE_SENDER = bytes.fromhex("00000000000000000000000000000000000f00d5")


class LogicLocation(enum.Enum):
    """Where the proxy keeps the logic contract's address."""

    HARDCODED = "hardcoded"    # embedded in the bytecode (EIP-1167 style)
    STORAGE = "storage"        # read from a storage slot
    UNKNOWN = "unknown"


class NotProxyReason(enum.Enum):
    """Why a contract was rejected (or None when it is a proxy)."""

    NO_CODE = "no-code"
    NO_DELEGATECALL = "no-delegatecall"            # failed the §4.1 prefilter
    NO_FORWARD = "no-forward"                      # ran fine, never forwarded
    EMULATION_ERROR = "emulation-error"            # §6.2's ~1.2% failure class


@dataclass(slots=True)
class ProxyCheck:
    """Outcome of one proxy detection."""

    address: bytes
    is_proxy: bool
    reason: NotProxyReason | None = None
    logic_address: bytes | None = None
    logic_location: LogicLocation = LogicLocation.UNKNOWN
    logic_slot: int | None = None
    emulation_error: str | None = None
    probe_calldata: bytes = b""


class ProxyDetector:
    """Runs the two-step check against any read-only state view."""

    def __init__(self, state: StateBackend,
                 block: BlockContext | None = None,
                 instruction_budget: int = 500_000,
                 profiler: Tracer | None = None) -> None:
        self._state = state
        self._block = block or BlockContext(number=1, timestamp=1_600_000_000)
        self._config = ExecutionConfig(
            instruction_budget=instruction_budget,
            fixed_create_address=EMULATION_CREATE_ADDRESS,
        )
        # Optional extra tracer (e.g. obs.ProfilingTracer) that rides along
        # every emulation for opcode/gas/depth accounting.
        self._profiler = profiler

    def check(self, address: bytes,
              extra_probes: tuple[bytes, ...] = (),
              trail: EvidenceTrail = NULL_TRAIL) -> ProxyCheck:
        """Full two-step proxy check of one contract.

        ``extra_probes`` implements the §8.2 diamond extension: additional
        calldata blobs (e.g. selectors mined from past transactions) tried
        when the random-selector probe does not reach a delegatecall —
        diamonds only delegate for *registered* selectors.

        ``trail`` (default no-op) records the causal evidence behind the
        verdict: the §4.1 prefilter outcome, every probe emulated, the
        forwarding DELEGATECALL, and the §4.3 pattern classification.
        """
        code = self._state.get_code(address)
        if not code:
            trail.note(provenance.PROXY_PREFILTER, outcome="no-code")
            return ProxyCheck(address, False, NotProxyReason.NO_CODE)

        # Step 1 (§4.1): cheap disassembly prefilter.
        if not contains_delegatecall(code):
            trail.note(provenance.PROXY_PREFILTER, delegatecall=False)
            return ProxyCheck(address, False, NotProxyReason.NO_DELEGATECALL)
        trail.note(provenance.PROXY_PREFILTER, delegatecall=True)

        result = self._emulate(address, code, craft_probe_calldata(code),
                               trail=trail)
        if result.is_proxy:
            return result
        for probe in extra_probes:
            retry = self._emulate(address, code, probe, trail=trail,
                                  probe_source="mined")
            if retry.is_proxy:
                return retry
        return result

    def _emulate(self, address: bytes, code: bytes, probe: bytes,
                 trail: EvidenceTrail = NULL_TRAIL,
                 probe_source: str = "crafted") -> ProxyCheck:
        """Step 2 (§4.2): emulate one probe and classify the outcome."""
        call_tracer = CallTracer()
        storage_tracer = StorageTracer()
        tracers: list[Tracer] = [call_tracer, storage_tracer]
        if self._profiler is not None:
            tracers.append(self._profiler)
        overlay = OverlayState(self._state)
        evm = EVM(
            overlay,
            block=self._block,
            tx=TransactionContext(origin=PROBE_SENDER),
            config=self._config,
            tracer=CombinedTracer(tracers=tracers),
        )
        with trail.begin(provenance.PROXY_PROBE,
                         calldata="0x" + probe[:4].hex(),
                         source=probe_source):
            result = evm.execute(Message(
                sender=PROBE_SENDER, to=address, data=probe, gas=10_000_000))

            forwarding_event = self._find_forwarding_delegatecall(
                call_tracer, address, probe)
            if forwarding_event is None:
                # No qualifying forward: distinguish clean negatives from
                # emulation failures (reverts are *clean*: the contract chose
                # to reject the probe, e.g. a diamond with no matching facet).
                if result.success or result.error == "revert":
                    trail.note(provenance.PROXY_NO_FORWARD,
                               outcome=("success" if result.success
                                        else "revert"))
                    return ProxyCheck(address, False, NotProxyReason.NO_FORWARD,
                                      probe_calldata=probe)
                trail.note(provenance.PROXY_NO_FORWARD,
                           outcome="emulation-error", error=result.error)
                return ProxyCheck(address, False,
                                  NotProxyReason.EMULATION_ERROR,
                                  emulation_error=result.error,
                                  probe_calldata=probe)

            logic_address = forwarding_event.target
            trail.note(provenance.PROXY_FORWARD,
                       target="0x" + logic_address.hex(),
                       pc=forwarding_event.pc)
            location, slot = self._locate_logic_address(
                code, address, logic_address, storage_tracer,
                forwarding_event.pc, trail=trail)
        return ProxyCheck(
            address=address,
            is_proxy=True,
            logic_address=logic_address,
            logic_location=location,
            logic_slot=slot,
            probe_calldata=probe,
        )

    @staticmethod
    def _find_forwarding_delegatecall(call_tracer: CallTracer, address: bytes,
                                      probe: bytes):
        """The first DELEGATECALL by ``address`` forwarding the probe."""
        for event in call_tracer.calls:
            if (event.kind == "DELEGATECALL"
                    and event.caller_storage_address == address
                    and event.input_data == probe):
                return event
        return None

    @staticmethod
    def _locate_logic_address(code: bytes, address: bytes, logic: bytes,
                              storage_tracer: StorageTracer, call_pc: int,
                              trail: EvidenceTrail = NULL_TRAIL,
                              ) -> tuple[LogicLocation, int | None]:
        """Classify where the logic address came from (§4.3).

        A storage slot whose loaded value equals the delegatecall target
        identifies the implementation slot; otherwise a 20-byte bytecode
        match marks the minimal (hard-coded) pattern.
        """
        logic_word = address_to_word(logic)
        for event in storage_tracer.events:
            if (event.kind == "SLOAD"
                    and event.storage_address == address):
                matched = event.value & ((1 << 160) - 1) == logic_word
                trail.note(provenance.PROXY_SLOAD, slot=hex(event.slot),
                           value=hex(event.value), matched=matched)
                if matched:
                    trail.note(provenance.PROXY_PATTERN, location="storage",
                               slot=hex(event.slot))
                    return LogicLocation.STORAGE, event.slot
        if address_hardcoded_in(code, logic):
            trail.note(provenance.PROXY_PATTERN, location="hardcoded")
            return LogicLocation.HARDCODED, None
        trail.note(provenance.PROXY_PATTERN, location="unknown")
        return LogicLocation.UNKNOWN, None
