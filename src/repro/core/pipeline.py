"""The ProxioN batch pipeline: analyze every contract on a chain.

Orchestrates the full §4–§5 flow per contract — two-step proxy detection,
logic-history recovery, standard classification, function and storage
collision checks against every historical logic contract — with the two
scaling optimizations the paper leans on:

* **proxy-check dedup by bytecode hash** (§5.1/§6.1): identical bytecode
  yields an identical code-level verdict (is-proxy, logic location, slot),
  so only one emulation runs per unique blob; per-instance state (the
  current implementation address) is then recovered with a single
  ``getStorageAt``;
* **collision-report dedup by (proxy-code, logic-code) hash pair**: the
  48-days-instead-of-years optimization of §6.1.

The §8.2 *diamond extension* is available behind ``detect_diamonds=True``:
selectors mined from an address's past transactions are replayed as extra
probes, catching EIP-2535 proxies the random probe misses.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace

from repro.chain.api import NodeRPC
from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.logic_finder import LogicFinder
from repro.core.proxy_detector import (
    LogicLocation,
    NotProxyReason,
    ProxyCheck,
    ProxyDetector,
)
from repro.core.report import ContractAnalysis, ContractFailure, LandscapeReport
from repro.core.standards import classify_standard
from repro.core.storage_collision import StorageCollisionDetector
from repro.errors import ConfigurationError, classify_cause
from repro.evm.environment import BlockContext
from repro.obs.events import (
    CHECKPOINT_RESUME,
    NULL_RECORDER,
    PIPELINE_END,
    PIPELINE_QUARANTINE,
    PIPELINE_START,
)
from repro.obs import provenance
from repro.obs.evmprof import ProfilingTracer
from repro.obs.provenance import NULL_TRAIL, AuditDir, EvidenceTrail
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NULL_TRACER, RingBufferSink, SpanTracer
from repro.utils.hexutil import ADDRESS_MASK, word_to_address
from repro.utils.keccak import keccak256

#: The three §6.1 dedup caches, as they appear in ``dedup.*`` metrics.
DEDUP_CACHES = ("proxy_check", "function_collision", "storage_collision")


@dataclass(slots=True)
class ProxionOptions:
    """Pipeline feature switches."""

    detect_function_collisions: bool = True
    detect_storage_collisions: bool = True
    verify_storage_exploits: bool = True
    detect_diamonds: bool = False          # the §8.2 future-work extension
    max_diamond_probes: int = 16
    dedup_by_code_hash: bool = True
    profile_evm: bool = False              # opt-in opcode/gas/depth profiling
    # Graceful degradation: per-contract failures are quarantined into
    # ``LandscapeReport.failures`` and the sweep continues.  ``fail_fast``
    # restores the legacy abort-on-first-error behavior (useful in tests
    # that must not mask bugs).
    fail_fast: bool = False


class Proxion:
    """The complete analyzer, bound to any :class:`~repro.chain.api.NodeRPC`.

    Construct with :meth:`from_node` (an existing node, possibly wrapped
    in resilience/chaos layers) or :meth:`from_chain` (a bare simulated
    chain); the constructor itself takes the node positionally and
    everything else keyword-only.  The pre-redesign positional form was
    removed after its one deprecation release — passing more than the
    node positionally raises :class:`TypeError`.

    Observability: the instance shares the node's
    :class:`~repro.obs.registry.MetricsRegistry` by default (pass
    ``metrics=NULL_REGISTRY`` to disable collection, or any registry to
    aggregate several analyzers).  Per-stage spans land in
    ``self.spans`` (a ring buffer) and feed ``span.seconds{name=...}``
    histograms in the registry.
    """

    def __init__(self, node: NodeRPC, *legacy,
                 registry: SourceRegistry | None = None,
                 dataset: ContractDataset | None = None,
                 options: ProxionOptions | None = None,
                 chain_state=None,
                 block: BlockContext | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: SpanTracer | None = None,
                 evm_profiler: ProfilingTracer | None = None,
                 events=None,
                 audit: AuditDir | str | None = None,
                 store=None) -> None:
        if legacy:
            raise TypeError(
                f"Proxion() takes only the node positionally "
                f"({len(legacy) + 1} positional arguments given); pass "
                f"registry=/dataset=/options=/... by keyword, or use "
                f"Proxion.from_node()/Proxion.from_chain()")
        self.node = node
        self.registry = registry if registry is not None else SourceRegistry()
        self.dataset = dataset
        self.options = options or ProxionOptions()
        self.metrics = metrics if metrics is not None else node.metrics
        # Flight-recorder hook (repro.obs.events): counters say how much,
        # events narrate what happened; both default to no-ops.
        self.events = events if events is not None else NULL_RECORDER
        # Verdict provenance (repro.obs.provenance): when an audit
        # directory is bound, every analysis runs with an EvidenceTrail
        # and persists its causal evidence tree as a per-contract file.
        self.audit = AuditDir(audit) if isinstance(audit, str) else audit
        self.spans = RingBufferSink()
        if tracer is not None:
            self.tracer = tracer
        elif self.metrics.enabled:
            self.tracer = SpanTracer(registry=self.metrics,
                                     sinks=(self.spans,))
        else:
            self.tracer = NULL_TRACER
        # The emulator runs directly against the node's world state; an
        # explicit state object lets tests inject alternatives.
        self._state = chain_state if chain_state is not None else node.chain.state
        self._block = block or node.chain.block_context()
        # An injected profiler (e.g. obs.FlameProfiler for `bench --flame`)
        # implies profiling regardless of the option flag.
        if evm_profiler is not None:
            self.evm_profiler: ProfilingTracer | None = evm_profiler
        else:
            self.evm_profiler = (ProfilingTracer()
                                 if self.options.profile_evm else None)
        self.detector = ProxyDetector(self._state, self._block,
                                      profiler=self.evm_profiler)
        self.logic_finder = LogicFinder(node)
        # Durable analysis store (repro.store): when a StoreBinding is
        # attached, the §6.1 dedup caches below are its write-through
        # dicts — hydrated from the store, persisting every insert — and
        # ``analyze_all`` commits one transaction per finished contract.
        # Without one, the caches are plain per-process dicts, exactly as
        # before.
        self.store = store
        selector_cache = None
        if store is not None:
            store.bind_metrics(self.metrics)
            self._check_cache: dict[bytes, ProxyCheck] = store.check_cache
            self._function_cache: dict[tuple[bytes, bytes], object] = (
                store.function_cache)
            self._storage_cache: dict[tuple[bytes, bytes], object] = (
                store.storage_cache)
            selector_cache = store.selector_cache
        else:
            # Dedup caches (§6.1), each with an explicit hit/miss pair.
            self._check_cache = {}
            self._function_cache = {}
            self._storage_cache = {}
        self.function_detector = FunctionCollisionDetector(
            self.registry, selector_cache=selector_cache)
        self.storage_detector = StorageCollisionDetector(
            self.registry, self._state, self._block)
        self._dedup_hits = {cache: self.metrics.counter("dedup.hits",
                                                        cache=cache)
                            for cache in DEDUP_CACHES}
        self._dedup_misses = {cache: self.metrics.counter("dedup.misses",
                                                          cache=cache)
                              for cache in DEDUP_CACHES}
        self._recovery_calls = self.metrics.counter(
            "logic_recovery.getstorageat_calls")
        self._storage_proxies = self.metrics.counter(
            "logic_recovery.storage_proxies")

    # ------------------------------------------------------------- builders
    @classmethod
    def from_node(cls, node: NodeRPC, **kwargs) -> "Proxion":
        """Build an analyzer on an existing node (wrapped or bare).

        The preferred constructor: accepts exactly the keyword parameters
        of ``__init__`` (``registry=``, ``dataset=``, ``options=``, ...)
        and works with any :class:`~repro.chain.api.NodeRPC` conformer —
        including resilience/chaos stacks around an archive node.
        """
        return cls(node, **kwargs)

    @classmethod
    def from_chain(cls, chain: Blockchain, *,
                   metrics: MetricsRegistry | None = None,
                   call_instruction_budget: int | None = None,
                   **kwargs) -> "Proxion":
        """Build an analyzer (and its archive node) on a bare chain.

        ``metrics`` and ``call_instruction_budget`` configure the node
        being created; everything else is forwarded to ``__init__``.
        """
        from repro.chain.node import ArchiveNode

        node = ArchiveNode(chain, metrics=metrics,
                           call_instruction_budget=call_instruction_budget)
        return cls(node, **kwargs)

    # -------------------------------------------------------------- analysis
    def check_proxy(self, address: bytes,
                    trail: EvidenceTrail = NULL_TRAIL) -> ProxyCheck:
        """Proxy-check one address, reusing verdicts for identical bytecode."""
        with self.tracer.span("proxy_check") as span:
            code = self.node.get_code(address)
            if not code:
                return self.detector.check(address, trail=trail)
            code_hash = keccak256(code)

            if (self.options.dedup_by_code_hash
                    and code_hash in self._check_cache):
                self._dedup_hits["proxy_check"].inc()
                span.set(cache="hit")
                cached = self._check_cache[code_hash]
                if trail.enabled:
                    # The cached verdict carries its own pattern evidence;
                    # cite the transfer so a dedup-hit proxy still explains
                    # where its classification came from.
                    trail.note(provenance.DEDUP_HIT, cache="proxy_check",
                               code_hash="0x" + code_hash.hex(),
                               verdict_from="0x" + cached.address.hex(),
                               is_proxy=cached.is_proxy,
                               location=cached.logic_location.value,
                               slot=(hex(cached.logic_slot)
                                     if cached.logic_slot is not None
                                     else None))
                return self._instantiate_cached_check(cached, address,
                                                      trail=trail)
            self._dedup_misses["proxy_check"].inc()

            extra_probes: tuple[bytes, ...] = ()
            if self.options.detect_diamonds:
                extra_probes = self._mine_transaction_probes(address)
            check = self.detector.check(address, extra_probes=extra_probes,
                                        trail=trail)
            if self.options.dedup_by_code_hash:
                self._check_cache[code_hash] = check
            span.set(cache="miss", is_proxy=check.is_proxy)
            self._record_check_outcome(check)
            return check

    def _record_check_outcome(self, check: ProxyCheck) -> None:
        """§8.1's emulation-failure accounting, by root cause."""
        if check.reason is not NotProxyReason.EMULATION_ERROR:
            return
        error = check.emulation_error or "unknown"
        cause = error.split(":", 1)[0].strip() or "unknown"
        self.metrics.counter("proxy_check.emulation_failures",
                             cause=cause).inc()

    def _instantiate_cached_check(self, cached: ProxyCheck, address: bytes,
                                  trail: EvidenceTrail = NULL_TRAIL,
                                  ) -> ProxyCheck:
        """Re-point a code-level verdict at another deployment.

        The code-determined parts (is-proxy, location, slot) transfer as-is;
        the *current* logic address of a storage proxy is re-read from this
        instance's own slot (one RPC instead of a full emulation).
        """
        if cached.address == address:
            return cached
        check = replace(cached, address=address)
        if (cached.is_proxy
                and cached.logic_location is LogicLocation.STORAGE
                and cached.logic_slot is not None):
            word = self.node.get_storage_at(address, cached.logic_slot)
            logic = word_to_address(word & ADDRESS_MASK)
            trail.note(provenance.PROXY_INSTANCE_READ,
                       slot=hex(cached.logic_slot),
                       logic="0x" + logic.hex())
            check = replace(check, logic_address=logic)
        return check

    def _mine_transaction_probes(self, address: bytes) -> tuple[bytes, ...]:
        """§8.2: selectors from past transactions, replayed as probes.

        Two sources, mirroring the paper's proposal of "extracting all
        registered functions from past transactions":

        * the selectors of the transactions themselves, and
        * selector-shaped *argument words* — a diamondCut/registerFacet call
          carries the selectors being registered in its calldata, and those
          are exactly the ones that route through the fallback.
        """
        candidates: list[bytes] = []
        seen: set[bytes] = set()

        def add(selector: bytes) -> None:
            if selector not in seen and selector != b"\x00\x00\x00\x00":
                seen.add(selector)
                candidates.append(selector)

        for receipt in self.node.transactions_of(address):
            data = receipt.transaction.data
            if receipt.transaction.to != address or len(data) < 4:
                continue
            add(data[:4])
            arguments = data[4:]
            for start in range(0, len(arguments) - 31, 32):
                word = int.from_bytes(arguments[start:start + 32], "big")
                if 0 < word < (1 << 32):
                    add(word.to_bytes(4, "big"))
            if len(candidates) >= self.options.max_diamond_probes:
                break
        return tuple(selector + b"\x00" * 64
                     for selector in candidates[:self.options.max_diamond_probes])

    def analyze_contract(self, address: bytes,
                         trail: EvidenceTrail | None = None,
                         ) -> ContractAnalysis:
        """Full single-contract analysis (§4 + §5).

        ``trail`` overrides the evidence recorder: ``repro explain``
        passes a fresh :class:`EvidenceTrail` to instrument one analysis
        on demand.  By default a trail is created only when the pipeline
        is bound to an audit directory; otherwise :data:`NULL_TRAIL`
        keeps the hot path free of recording cost.
        """
        if trail is None:
            trail = (EvidenceTrail(address) if self.audit is not None
                     else NULL_TRAIL)
        analysis = self._analyze_contract(address, trail)
        if trail.enabled:
            analysis.evidence_digest = trail.digest()
            if self.audit is not None:
                self.audit.write(trail)
        return analysis

    def _witness(self, trail: EvidenceTrail):
        """RPC read attribution for the logic-recovery stage, when the
        node supports it (chaos/resilience wrappers delegate down to the
        archive node; foreign NodeRPC conformers may not implement it)."""
        if trail.enabled and hasattr(self.node, "witness_reads"):
            return self.node.witness_reads(trail)
        return nullcontext()

    def _analyze_contract(self, address: bytes,
                          trail: EvidenceTrail) -> ContractAnalysis:
        code = self.node.get_code(address)
        analysis = ContractAnalysis(
            address=address,
            code_hash=keccak256(code),
            has_source=self.registry.resolve(address, code) is not None,
            has_transactions=self.node.has_transactions(address),
        )
        if self.dataset is not None and address in self.dataset:
            record = self.dataset.get(address)
            analysis.deploy_block = record.deploy_block
            analysis.deploy_year = self.node.year_of(record.deploy_block)

        with trail.begin(provenance.SECTION_PROXY):
            check = self.check_proxy(address, trail=trail)
        analysis.check = check
        if not check.is_proxy:
            return analysis

        analysis.standard = classify_standard(check)
        with self.tracer.span("logic_history") as span, \
                trail.begin(provenance.SECTION_LOGIC,
                            standard=analysis.standard.value):
            with self._witness(trail):
                analysis.logic_history = self.logic_finder.find(check,
                                                                trail=trail)
            span.set(upgrades=analysis.logic_history.upgrade_count,
                     api_calls=analysis.logic_history.api_calls_used)
        if analysis.logic_history.slot is not None:
            # The §6.1 "getStorageAt calls per proxy" numerator/denominator.
            self._storage_proxies.inc()
            self._recovery_calls.inc(analysis.logic_history.api_calls_used)
        with trail.begin(provenance.SECTION_COLLISIONS):
            self._check_collisions(analysis, code, trail=trail)
        return analysis

    def _check_collisions(self, analysis: ContractAnalysis,
                          proxy_code: bytes,
                          trail: EvidenceTrail = NULL_TRAIL) -> None:
        assert analysis.logic_history is not None
        proxy_hash = analysis.code_hash
        for logic_address in analysis.logic_history.logic_addresses:
            logic_code = self.node.get_code(logic_address)
            if not logic_code:
                continue
            logic_hash = keccak256(logic_code)
            pair = (proxy_hash, logic_hash)

            with trail.begin(provenance.PAIR,
                             logic="0x" + logic_address.hex()):
                if self.options.detect_function_collisions:
                    if pair in self._function_cache:
                        self._dedup_hits["function_collision"].inc()
                        report = self._function_cache[pair]
                        if trail.enabled:
                            self._cite_cached_function(report, trail)
                    else:
                        self._dedup_misses["function_collision"].inc()
                        with self.tracer.span("function_collision"):
                            report = self.function_detector.detect(
                                proxy_code, logic_code,
                                analysis.address, logic_address, trail=trail)
                        self._function_cache[pair] = report
                    analysis.function_reports.append(report)  # type: ignore[arg-type]

                if self.options.detect_storage_collisions:
                    if pair in self._storage_cache:
                        self._dedup_hits["storage_collision"].inc()
                        report = self._storage_cache[pair]
                        if trail.enabled:
                            self._cite_cached_storage(report, trail)
                    else:
                        self._dedup_misses["storage_collision"].inc()
                        with self.tracer.span("storage_collision"):
                            report = self.storage_detector.detect(
                                proxy_code, logic_code,
                                analysis.address, logic_address,
                                verify_exploits=self.options.verify_storage_exploits,
                                trail=trail)
                        self._storage_cache[pair] = report
                    analysis.storage_reports.append(report)  # type: ignore[arg-type]

    @staticmethod
    def _cite_cached_function(report, trail: EvidenceTrail) -> None:
        """A dedup-hit pair still cites its colliding selectors."""
        trail.note(provenance.DEDUP_HIT, cache="function_collision")
        for collision in report.collisions:
            trail.note(provenance.FUNCTION_COLLISION,
                       selector="0x" + collision.selector.hex(),
                       proxy_prototype=collision.proxy_prototype,
                       logic_prototype=collision.logic_prototype)

    @staticmethod
    def _cite_cached_storage(report, trail: EvidenceTrail) -> None:
        """A dedup-hit pair still cites its slot/range evidence."""
        trail.note(provenance.DEDUP_HIT, cache="storage_collision")
        for collision in report.collisions:
            trail.note(provenance.STORAGE_COLLISION,
                       slot=hex(collision.slot.base),
                       proxy_range=[collision.proxy_use.offset,
                                    collision.proxy_use.end],
                       logic_range=[collision.logic_use.offset,
                                    collision.logic_use.end],
                       kind=collision.kind,
                       sensitive=collision.sensitive,
                       exploitable=collision.exploitable,
                       verified=collision.verified)

    # ------------------------------------------------------------ full sweep
    def _quarantine(self, report: LandscapeReport, address: bytes,
                    stage: str, error: Exception, checkpoint) -> None:
        """Record one failed contract and keep the sweep alive."""
        failure = ContractFailure(address=address,
                                  cause=classify_cause(error),
                                  error=str(error), stage=stage)
        report.add_failure(failure)
        self.metrics.counter("pipeline.quarantined",
                             cause=failure.cause).inc()
        self.events.emit(PIPELINE_QUARANTINE, address="0x" + address.hex(),
                         stage=stage, cause=failure.cause, error=str(error))
        if checkpoint is not None:
            checkpoint.record_failure(failure)
        if self.store is not None:
            self.store.record_failure(failure)

    def analyze_all(self, addresses: list[bytes] | None = None,
                    checkpoint=None) -> LandscapeReport:
        """Analyze every (alive) contract, like the paper's §7 sweep.

        The sweep degrades gracefully: a contract whose analysis raises is
        *quarantined* as a :class:`ContractFailure` (cause-classified, in
        ``report.failures`` and the ``pipeline.quarantined{cause=...}``
        counter) and the sweep moves on — unless
        ``options.fail_fast`` is set, which re-raises immediately.
        :class:`~repro.errors.ConfigurationError` always propagates: caller
        bugs must not be silently quarantined.

        ``checkpoint`` is a :class:`~repro.landscape.checkpoint.SweepCheckpoint`
        (or anything with its surface): completed addresses are skipped and
        their restored analyses/failures pre-seed the report, and every
        newly finished address is appended, so a killed sweep resumes from
        the last completed contract.
        """
        if addresses is None:
            if self.dataset is None:
                raise ConfigurationError(
                    "no dataset bound and no addresses given")
            addresses = self.dataset.addresses()
        report = LandscapeReport()
        done: frozenset[bytes] = frozenset()
        if checkpoint is not None:
            for analysis in checkpoint.restored_analyses():
                report.add(analysis)
            for failure in checkpoint.restored_failures():
                report.add_failure(failure)
            done = frozenset(checkpoint.completed)
            # ``completed`` includes §3.1 skips (dead contracts recorded so
            # a resume does not re-probe is_alive); count those separately
            # so resumed_contracts means restored analyses + failures.
            skips = len(getattr(checkpoint, "skipped", ()))
            self.metrics.counter("pipeline.resumed_contracts").inc(
                len(done) - skips)
            self.metrics.counter("pipeline.resumed_skips").inc(skips)
            recovered = getattr(checkpoint, "recovered_truncations", 0)
            if recovered:
                # Crash-truncated tail lines dropped by the checkpoint
                # loader; their contracts are re-analyzed below.
                self.metrics.counter(
                    "checkpoint.recovered_truncations").inc(recovered)
            if done or recovered:
                self.events.emit(CHECKPOINT_RESUME,
                                 restored=len(done) - skips, skips=skips,
                                 recovered_truncations=recovered)
        store_restored = None
        if self.store is not None and self.store.incremental:
            # Incremental re-sweep (repro.store): re-survey the corpus by
            # fetching each address's code and restoring every instance
            # the store has already settled — the live loop below then
            # analyzes only the delta.  Code is read metrics-free off the
            # state (like sharding): the restore is bookkeeping, not RPC
            # traffic, and must not be perturbed by chaos wrappers.
            from repro.store.binding import restore_instances
            try:
                store_restored = restore_instances(
                    self.store.store, addresses, self._state.get_code,
                    already=done)
            except ConfigurationError:
                raise
            except Exception as error:
                self.store.disable(f"restore from {self.store.path!r} "
                                   f"failed ({error})")
                store_restored = None
            if store_restored is not None:
                for analysis in store_restored.analyses:
                    report.add(analysis)
                for failure in store_restored.failures:
                    report.add_failure(failure)
                done = frozenset(done | store_restored.completed)
                self.metrics.counter("pipeline.store_restored_contracts").inc(
                    len(store_restored.analyses)
                    + len(store_restored.failures))
                self.metrics.counter("pipeline.store_restored_skips").inc(
                    len(store_restored.skips))
                if store_restored.invalidated:
                    self.metrics.counter("store.invalidated_instances").inc(
                        store_restored.invalidated)
        hits_before = {c: counter.value
                       for c, counter in self._dedup_hits.items()}
        misses_before = {c: counter.value
                         for c, counter in self._dedup_misses.items()}
        self.events.emit(PIPELINE_START, contracts=len(addresses),
                         resumed=len(done))
        with self.tracer.span("sweep", contracts=len(addresses)):
            for address in addresses:
                if address in done:
                    continue
                try:
                    alive = self.node.is_alive(address)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except ConfigurationError:
                    raise
                except Exception as error:
                    if self.options.fail_fast:
                        raise
                    self._quarantine(report, address, "liveness", error,
                                     checkpoint)
                    continue
                if not alive:
                    # §3.1: destroyed contracts are excluded.
                    if checkpoint is not None:
                        checkpoint.record_skip(address)
                    if self.store is not None:
                        self.store.record_skip(address)
                    continue
                try:
                    analysis = self.analyze_contract(address)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except ConfigurationError:
                    raise
                except Exception as error:
                    if self.options.fail_fast:
                        raise
                    self._quarantine(report, address, "analysis", error,
                                     checkpoint)
                    continue
                report.add(analysis)
                if checkpoint is not None:
                    checkpoint.record_analysis(analysis)
                if self.store is not None:
                    # One transaction per contract: staged fact writes
                    # commit together with the instance row, so kill -9
                    # rolls back to the previous contract boundary.
                    self.store.record_analysis(analysis)
        if self.evm_profiler is not None:
            self.evm_profiler.flush_to(self.metrics)

        def delta(before: dict, counters: dict, cache: str) -> int:
            return int(counters[cache].value - before[cache])

        report.proxy_check_cache_hits = delta(
            hits_before, self._dedup_hits, "proxy_check")
        report.proxy_check_cache_misses = delta(
            misses_before, self._dedup_misses, "proxy_check")
        report.function_cache_hits = delta(
            hits_before, self._dedup_hits, "function_collision")
        report.function_cache_misses = delta(
            misses_before, self._dedup_misses, "function_collision")
        report.storage_cache_hits = delta(
            hits_before, self._dedup_hits, "storage_collision")
        report.storage_cache_misses = delta(
            misses_before, self._dedup_misses, "storage_collision")
        report.collision_cache_hits = (report.function_cache_hits
                                       + report.storage_cache_hits)
        if store_restored is not None and store_restored.completed:
            report = self._fold_restored(report, addresses, store_restored)
        self.events.emit(PIPELINE_END, analyses=len(report.analyses),
                         failures=len(report.failures))
        return report

    def _fold_restored(self, report: LandscapeReport,
                       addresses: list[bytes], restored) -> LandscapeReport:
        """Make an incremental sweep byte-identical to a cold one.

        Two adjustments: re-emit contracts in sweep order (restored rows
        were pre-seeded before the delta, which interleaves wrongly when
        an invalidated mid-corpus address was re-analyzed), and add the
        replayed counter baseline — the dedup hits/misses a from-scratch
        sweep would have accrued over the restored prefix (see
        :func:`repro.store.binding.replayed_counter_baseline`).
        """
        from repro.landscape.merge import _COUNTER_FIELDS
        from repro.store.binding import replayed_counter_baseline

        ordered = LandscapeReport()
        for address in addresses:
            if address in report.analyses:
                ordered.add(report.analyses[address])
            elif address in report.failures:
                ordered.add_failure(report.failures[address])
        for name in _COUNTER_FIELDS:
            setattr(ordered, name, getattr(report, name))
        baseline = replayed_counter_baseline(
            restored.analyses, self._state.get_code, self.options)
        for name, value in baseline.items():
            setattr(ordered, name, getattr(ordered, name) + value)
        return ordered
