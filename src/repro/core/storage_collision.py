"""Storage-collision detection and exploit verification (§5.2).

Following CRUSH's pipeline, per contract we build a *storage profile* —
which byte ranges of which slots are read/written, with what inferred type
widths, and which slots gate access control:

* **source mode** — from the verified source's declared layout (Solidity
  packing rules applied to the declarations);
* **bytecode mode** — from symbolic execution of the runtime
  (:mod:`repro.core.symexec`), optionally augmented with the *live storage
  state* of the deployed proxy: a slot that already holds a value but is
  never written by the runtime code is a constructor-initialized, read-only
  slot — exactly CRUSH's class of sensitive slots.

A collision is a slot whose proxy-side and logic-side occupants disagree —
overlapping byte ranges of different widths/offsets, or identical ranges
with conflicting declared types.  Matching ranges with matching types are
*compatible* (this, not name equality, is what avoids USCHunt's
padding-variable false positives in Table 2).

A collision is *exploitable* when the proxy-side slot is sensitive (access
control) and the logic exposes an unguarded function that writes the
overlapping range.  Exploitability is then **verified** by synthesizing the
attacking transaction and executing it on an overlay of the real chain
state, checking that the sensitive bytes actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.explorer import ContractSource, SourceRegistry
from repro.core.symexec import (
    CONCRETE,
    SlotKey,
    SymbolicExecutor,
    SymbolicSummary,
)
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState, StateBackend
from repro.evm.tracer import StorageTracer
from repro.lang.storage_layout import compute_layout
from repro.lang.types import MappingType, parse_type
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail

_SENSITIVE_NAME_HINTS = ("owner", "admin", "governor", "guardian", "operator")

ATTACKER = bytes.fromhex("a77ac3e7000000000000000000000000a77ac3e7")


@dataclass(frozen=True, slots=True)
class RangeUse:
    """One occupant of a slot: a byte range with optional type and context."""

    offset: int
    size: int
    type_name: str | None = None
    origin: str = "bytecode"          # "layout" | "read" | "write" | "state"
    selector: bytes | None = None     # function performing the access
    guarded: bool = False

    @property
    def end(self) -> int:
        return self.offset + self.size

    def overlaps(self, other: "RangeUse") -> bool:
        return self.offset < other.end and other.offset < self.end

    def same_range(self, other: "RangeUse") -> bool:
        return self.offset == other.offset and self.size == other.size


@dataclass(slots=True)
class StorageProfile:
    """Slot usage summary of one contract."""

    address: bytes | None
    mode: str                                    # "source" | "bytecode"
    usages: dict[SlotKey, list[RangeUse]] = field(default_factory=dict)
    sensitive_slots: set[SlotKey] = field(default_factory=set)

    def add(self, slot: SlotKey, use: RangeUse) -> None:
        uses = self.usages.setdefault(slot, [])
        if use not in uses:
            uses.append(use)

    def slots(self) -> set[SlotKey]:
        return set(self.usages)

    def writes_to(self, slot: SlotKey) -> list[RangeUse]:
        return [use for use in self.usages.get(slot, [])
                if use.origin == "write"]


@dataclass(frozen=True, slots=True)
class StorageCollision:
    """One detected storage collision between a proxy/logic pair."""

    slot: SlotKey
    proxy_use: RangeUse
    logic_use: RangeUse
    kind: str                 # "layout-mismatch" | "type-mismatch"
    sensitive: bool = False
    exploitable: bool = False
    verified: bool = False
    exploit_selector: bytes | None = None


@dataclass(slots=True)
class StorageCollisionReport:
    """All storage collisions of one proxy/logic pair."""

    proxy: bytes | None
    logic: bytes | None
    collisions: list[StorageCollision] = field(default_factory=list)
    proxy_mode: str = "bytecode"
    logic_mode: str = "bytecode"

    @property
    def has_collision(self) -> bool:
        return bool(self.collisions)

    @property
    def has_verified_exploit(self) -> bool:
        return any(collision.verified for collision in self.collisions)


def profile_from_source(source: ContractSource,
                        address: bytes | None = None) -> StorageProfile:
    """Layout-based profile from verified source declarations."""
    profile = StorageProfile(address=address, mode="source")
    declarations = [(v.name, v.type_name) for v in source.storage_variables
                    if not v.is_constant]
    layout = compute_layout(declarations)
    for assignment in layout:
        parsed = parse_type(assignment.type_name)
        slot = (SlotKey.mapping(assignment.slot)
                if isinstance(parsed, MappingType)
                else SlotKey.concrete(assignment.slot))
        value_type = (parsed.value_type.name if isinstance(parsed, MappingType)
                      else assignment.type_name)
        size = (parsed.value_type.size if isinstance(parsed, MappingType)
                else assignment.size)
        profile.add(slot, RangeUse(
            offset=0 if isinstance(parsed, MappingType) else assignment.offset,
            size=size,
            type_name=value_type,
            origin="layout",
        ))
        if any(hint in assignment.name.lower() for hint in _SENSITIVE_NAME_HINTS):
            profile.sensitive_slots.add(slot)
    return profile


def profile_from_bytecode(code: bytes, address: bytes | None = None,
                          summary: SymbolicSummary | None = None,
                          state: StateBackend | None = None,
                          max_state_probe_slots: int = 8) -> StorageProfile:
    """Symbolic-execution profile, optionally augmented with live storage."""
    profile = StorageProfile(address=address, mode="bytecode")
    if summary is None:
        summary = SymbolicExecutor().summarize(code)
    written_slots: set[SlotKey] = set()
    for access in summary.semantic_accesses():
        if access.slot.kind == "symbolic":
            continue
        profile.add(access.slot, RangeUse(
            offset=access.offset,
            size=access.size,
            origin=access.kind,
            selector=access.selector,
            guarded=access.guarded,
        ))
        if access.kind == "write":
            written_slots.add(access.slot)
        if access.compared_to_caller:
            profile.sensitive_slots.add(access.slot)

    if state is not None and address is not None:
        # CRUSH's read-only sensitive slots: populated at deployment, never
        # written by the runtime code.  Width is estimated from the stored
        # value (an address reads as a 20-byte occupant).
        for slot_number in range(max_state_probe_slots):
            value = state.get_storage(address, slot_number)
            if not value:
                continue
            slot = SlotKey.concrete(slot_number)
            occupied_size = max(1, (value.bit_length() + 7) // 8)
            # Values are width-estimated from their top byte, which loses
            # leading zero bytes; snap near-address and near-word widths to
            # the canonical type sizes to reduce spurious mismatches.
            if 17 <= occupied_size <= 20:
                occupied_size = 20
            elif occupied_size > 20:
                occupied_size = 32
            profile.add(slot, RangeUse(
                offset=0, size=occupied_size, origin="state"))
            if slot not in written_slots:
                profile.sensitive_slots.add(slot)
    return profile


class StorageCollisionDetector:
    """Pairwise profile comparison + exploit synthesis and verification."""

    def __init__(self, registry: SourceRegistry | None = None,
                 state: StateBackend | None = None,
                 block: BlockContext | None = None) -> None:
        # ``registry or ...`` would discard an *empty* registry (it defines
        # __len__), silently detaching the detector from later verifications.
        self._registry = registry if registry is not None else SourceRegistry()
        self._state = state
        self._block = block or BlockContext(number=1, timestamp=1_600_000_000)

    # ------------------------------------------------------------- profiles
    def profile(self, code: bytes, address: bytes | None = None,
                probe_state: bool = False) -> StorageProfile:
        """Bytecode profile, refined with the declared layout when source
        is available.

        The CRUSH engine is bytecode-based even for verified contracts
        (§5.2); source adds declared types and name-based sensitivity on
        top of the symbolically recovered accesses.
        """
        profile = profile_from_bytecode(
            code, address,
            state=self._state if probe_state else None,
        )
        source = self._registry.resolve(address, code)
        if source is not None:
            layout_profile = profile_from_source(source, address)
            for slot, uses in layout_profile.usages.items():
                for use in uses:
                    profile.add(slot, use)
            profile.sensitive_slots |= layout_profile.sensitive_slots
            profile.mode = "source"
        return profile

    # ------------------------------------------------------------- detection
    def detect(self, proxy_code: bytes, logic_code: bytes,
               proxy_address: bytes | None = None,
               logic_address: bytes | None = None,
               verify_exploits: bool = True,
               trail: EvidenceTrail = NULL_TRAIL) -> StorageCollisionReport:
        """Full §5.2 pipeline for one proxy/logic pair.

        ``trail`` records both sides' profile provenance, every slot/range
        clash with its classification, and the outcome of each exploit
        verification run.
        """
        proxy_profile = self.profile(proxy_code, proxy_address, probe_state=True)
        logic_profile = self.profile(logic_code, logic_address)
        trail.note(provenance.STORAGE_PROFILE, side="proxy",
                   mode=proxy_profile.mode, slots=len(proxy_profile.usages))
        trail.note(provenance.STORAGE_PROFILE, side="logic",
                   mode=logic_profile.mode, slots=len(logic_profile.usages))
        collisions = self.compare_profiles(proxy_profile, logic_profile)

        if verify_exploits and self._state is not None and proxy_address:
            collisions = [
                self._verify(collision, proxy_address, trail=trail)
                if collision.exploitable else collision
                for collision in collisions
            ]
        for collision in collisions:
            trail.note(
                provenance.STORAGE_COLLISION,
                slot=hex(collision.slot.base),
                proxy_range=[collision.proxy_use.offset,
                             collision.proxy_use.end],
                logic_range=[collision.logic_use.offset,
                             collision.logic_use.end],
                kind=collision.kind,
                sensitive=collision.sensitive,
                exploitable=collision.exploitable,
                verified=collision.verified,
            )
        return StorageCollisionReport(
            proxy=proxy_address,
            logic=logic_address,
            collisions=collisions,
            proxy_mode=proxy_profile.mode,
            logic_mode=logic_profile.mode,
        )

    def compare_profiles(self, proxy: StorageProfile,
                         logic: StorageProfile) -> list[StorageCollision]:
        """Pairwise slot comparison of two profiles."""
        collisions: list[StorageCollision] = []
        seen: set[tuple] = set()
        for slot in sorted(proxy.slots() & logic.slots(),
                           key=lambda key: (key.kind, key.base)):
            if slot.kind != CONCRETE:
                # Mapping elements share a slot family only when the marker
                # slot matches, and then key-hashing keeps them disjoint.
                continue
            sensitive = slot in proxy.sensitive_slots
            for proxy_use in proxy.usages[slot]:
                for logic_use in logic.usages[slot]:
                    collision = self._classify(slot, proxy_use, logic_use,
                                               sensitive, logic)
                    if collision is None:
                        continue
                    key = (slot, proxy_use.offset, proxy_use.size,
                           logic_use.offset, logic_use.size, collision.kind)
                    if key in seen:
                        continue
                    seen.add(key)
                    collisions.append(collision)
        return collisions

    def _classify(self, slot: SlotKey, proxy_use: RangeUse,
                  logic_use: RangeUse, sensitive: bool,
                  logic: StorageProfile) -> StorageCollision | None:
        if not proxy_use.overlaps(logic_use):
            return None
        if proxy_use.same_range(logic_use):
            if (proxy_use.type_name and logic_use.type_name
                    and proxy_use.type_name != logic_use.type_name):
                kind = "type-mismatch"
            else:
                # Same bytes, same (or unknown) interpretation: compatible.
                # Differently *named* variables with identical ranges are
                # storage padding, not collisions (the USCHunt FP class).
                return None
        else:
            kind = "layout-mismatch"

        exploit_selector = self._find_unguarded_write(slot, proxy_use, logic)
        exploitable = sensitive and exploit_selector is not None
        return StorageCollision(
            slot=slot,
            proxy_use=proxy_use,
            logic_use=logic_use,
            kind=kind,
            sensitive=sensitive,
            exploitable=exploitable,
            exploit_selector=exploit_selector,
        )

    @staticmethod
    def _find_unguarded_write(slot: SlotKey, proxy_use: RangeUse,
                              logic: StorageProfile) -> bytes | None:
        """A logic-side function any caller can use to clobber the range."""
        for write in logic.writes_to(slot):
            if write.guarded or write.selector is None:
                continue
            if write.overlaps(proxy_use):
                return write.selector
        # Source mode carries no per-function writes; fall back to bytecode
        # summaries when the caller supplied them via usages origins.
        return None

    # ---------------------------------------------------------- verification
    def _verify(self, collision: StorageCollision, proxy_address: bytes,
                trail: EvidenceTrail = NULL_TRAIL) -> StorageCollision:
        """Execute the synthesized exploit transaction on an overlay.

        The attack calls the colliding logic function *through the proxy*;
        the exploit is verified when the sensitive byte range of the slot
        observably changes (CRUSH's write-one-type/read-another check).
        """
        assert self._state is not None and collision.exploit_selector is not None
        overlay = OverlayState(self._state)
        tracer = StorageTracer()
        evm = EVM(
            overlay,
            block=self._block,
            tx=TransactionContext(origin=ATTACKER),
            config=ExecutionConfig(instruction_budget=500_000),
            tracer=tracer,
        )
        calldata = collision.exploit_selector + b"\x00" * 96
        before = self._state.get_storage(proxy_address, collision.slot.base)
        result = evm.execute(Message(
            sender=ATTACKER, to=proxy_address, data=calldata, gas=5_000_000))
        after = overlay.get_storage(proxy_address, collision.slot.base)

        mask = ((1 << (collision.proxy_use.size * 8)) - 1) << (
            collision.proxy_use.offset * 8)
        changed = result.success and (before & mask) != (after & mask)
        trail.note(provenance.STORAGE_VERIFY,
                   selector="0x" + collision.exploit_selector.hex(),
                   slot=hex(collision.slot.base), changed=changed)
        return StorageCollision(
            slot=collision.slot,
            proxy_use=collision.proxy_use,
            logic_use=collision.logic_use,
            kind=collision.kind,
            sensitive=collision.sensitive,
            exploitable=collision.exploitable,
            verified=changed,
            exploit_selector=collision.exploit_selector,
        )
