"""Continuous deployment monitoring — ProxioN as a protective service.

The paper analyzes a chain snapshot; the natural production deployment is a
*monitor* that analyzes every new contract as it lands and raises alerts
before users interact with it (the honeypot in Listing 1 is only dangerous
until someone flags it).  :class:`DeploymentMonitor` keeps a cursor over
the chain, discovers contracts deployed since the last poll (external and
factory-internal creations alike), runs the full per-contract analysis, and
emits typed alerts:

* ``hidden-proxy`` — a proxy with no source and no transactions appeared;
* ``function-collision`` / ``honeypot`` — colliding selectors, the latter
  when the behavioural probe sees value routed away from the caller;
* ``storage-collision`` / ``verified-exploit`` — layout conflicts, the
  latter with a synthesized exploit that actually fires;
* ``reorg`` — the branch under the monitor's cursor changed: verdicts for
  orphaned deployments were rolled back and the winning branch re-scanned.

The monitor's cursor is not a bare block number but a *block-hash ancestry
ring*: each poll first verifies that the most recently scanned blocks still
hash the same on the chain.  A mismatch means a reorganization happened
between polls — the monitor walks back to the deepest common ancestor,
invalidates instance-keyed store facts for deployments that only existed on
the orphaned branch (hash-keyed facts survive: code is code on any branch),
and re-scans the winning branch in the same poll.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.core.honeypot import HoneypotClassifier
from repro.core.pipeline import Proxion
from repro.core.report import ContractAnalysis
from repro.obs.events import CHAIN_REORG

# How many recently scanned (block number, hash) pairs the monitor retains
# for divergence detection.  Deeper than the chain's own undo capacity, so
# any reorg the chain can express is one the monitor can locate an ancestor
# for.
ANCESTRY_CAPACITY = 128


@dataclass(frozen=True, slots=True)
class Alert:
    """One monitor finding."""

    kind: str              # hidden-proxy | function-collision | honeypot |
    #                        storage-collision | verified-exploit | reorg
    address: bytes
    block_number: int
    detail: str

    def __str__(self) -> str:
        return (f"[block {self.block_number}] {self.kind}: "
                f"0x{self.address.hex()} — {self.detail}")


@dataclass(slots=True)
class MonitorStats:
    """Counters across the monitor's lifetime."""

    contracts_seen: int = 0
    proxies_seen: int = 0
    blocks_scanned: int = 0
    polls: int = 0
    reorgs: int = 0
    alerts: list[Alert] = field(default_factory=list)


class DeploymentMonitor:
    """Analyzes new deployments as blocks arrive.

    Alert and scan counters also land in the pipeline's metrics registry
    (``monitor.blocks_scanned``, ``monitor.alerts{kind=...}``,
    ``monitor.poll_lag``) so a scraped monitor is observable without
    reaching into :attr:`stats`.
    """

    def __init__(self, proxion: Proxion,
                 classify_honeypots: bool = True) -> None:
        self._proxion = proxion
        self._classify_honeypots = classify_honeypots
        self._cursor = 0          # last processed block
        # Index into ``chain.blocks`` of the first unscanned entry; blocks
        # are append-only between reorgs, so poll cost stays proportional to
        # *new* blocks instead of re-walking the whole chain every poll.
        self._block_index = 0
        # Address -> block number it was discovered in.  The block number is
        # what lets a reorg invalidate exactly the deployments that only
        # existed past the common ancestor.
        self._seen: dict[bytes, int] = {}
        # Ring of (block number, block hash) for recently scanned records.
        self._ancestry: list[tuple[int, bytes]] = []
        self.stats = MonitorStats()
        self._metrics = proxion.metrics
        self._events = proxion.events
        self._blocks_scanned = self._metrics.counter("monitor.blocks_scanned")
        self._poll_lag = self._metrics.gauge("monitor.poll_lag")
        self._reorgs = self._metrics.counter("monitor.reorgs")

    # ----------------------------------------------------------------- poll
    def catch_up(self) -> int:
        """Skip history: start following from the current chain head.

        The serve daemon attaches a monitor to a chain whose past is
        already settled in the durable store — re-analyzing every
        historical block at startup would duplicate that work (and
        clobber the store's instance rows with identical writes).  Moves
        the cursor to the head and returns how many blocks were skipped.

        Safe at any cursor position: already at the tip it is a no-op
        returning 0, and after an external rollback shrank the chain below
        the cursor it re-anchors at the new (lower) tip instead of leaving
        a dangling cursor.
        """
        chain = self._proxion.node.chain
        skipped = max(0, len(chain.blocks) - self._block_index)
        self._block_index = len(chain.blocks)
        self._cursor = chain.latest_block_number
        # Re-anchor the ancestry ring on the branch we just skipped to, so
        # the first poll can tell a subsequent reorg from plain new blocks.
        self._ancestry = [(block.number, block.hash)
                          for block in chain.blocks[-ANCESTRY_CAPACITY:]]
        return skipped

    def poll(self) -> list[Alert]:
        """Process blocks since the last poll; return the new alerts."""
        chain = self._proxion.node.chain
        new_alerts: list[Alert] = []
        # Divergence check first: if the branch under the cursor changed,
        # roll back to the common ancestor before scanning forward.
        new_alerts.extend(self._check_reorg(chain))
        latest = chain.latest_block_number
        # How far behind the chain head this poll starts — the freshness
        # guarantee a protective monitor is judged on.
        self._poll_lag.set(max(0, latest - self._cursor))
        self._block_index = min(self._block_index, len(chain.blocks))
        # Blocks are append-only between reorgs and block numbers strictly
        # increase, so everything before _block_index (numbers <= cursor)
        # is done.
        for block in chain.blocks[self._block_index:]:
            if block.number <= self._cursor:
                continue
            self.stats.blocks_scanned += 1
            self._blocks_scanned.inc()
            for receipt in block.receipts:
                for address in self._deployments_of(receipt):
                    if address in self._seen:
                        continue
                    self._seen[address] = block.number
                    new_alerts.extend(
                        self._analyze(address, block.number))
            self._ancestry.append((block.number, block.hash))
        del self._ancestry[:-ANCESTRY_CAPACITY]
        self._block_index = len(chain.blocks)
        self._cursor = latest
        self.stats.polls += 1
        self.stats.alerts.extend(new_alerts)
        for alert in new_alerts:
            self._metrics.counter("monitor.alerts", kind=alert.kind).inc()
        return new_alerts

    # ---------------------------------------------------------------- reorgs
    def _check_reorg(self, chain) -> list[Alert]:
        """Detect branch divergence; roll facts back to the common ancestor."""
        if not self._ancestry:
            return []
        tip_number, tip_hash = self._ancestry[-1]
        if chain.block_hash(tip_number) == tip_hash:
            return []             # our view of the tip is still canonical
        # Walk the ring backwards to the deepest record that still matches.
        ancestor, keep = 0, 0
        for index in range(len(self._ancestry) - 1, -1, -1):
            number, block_hash = self._ancestry[index]
            if chain.block_hash(number) == block_hash:
                ancestor, keep = number, index + 1
                break
        depth = self._cursor - ancestor
        orphaned = [address for address, number in self._seen.items()
                    if number > ancestor]
        for address in orphaned:
            del self._seen[address]
        invalidated = 0
        store = self._proxion.store
        if store is not None and orphaned:
            invalidated = store.invalidate_instances(orphaned)
        del self._ancestry[keep:]
        self._cursor = ancestor
        self._block_index = bisect.bisect_right(
            chain.blocks, ancestor, key=lambda block: block.number)
        self.stats.reorgs += 1
        self._reorgs.inc()
        self._events.emit(CHAIN_REORG, depth=depth, ancestor=ancestor,
                          orphaned=len(orphaned), invalidated=invalidated)
        detail = (f"depth {depth}: rolled back to block {ancestor}, "
                  f"{len(orphaned)} orphaned deployment(s), "
                  f"{invalidated} store fact(s) invalidated")
        return [Alert("reorg", b"", ancestor, detail)]

    @staticmethod
    def _deployments_of(receipt) -> list[bytes]:
        deployed = []
        if receipt.created_address is not None:
            deployed.append(receipt.created_address)
        deployed.extend(event.new_address
                        for event in receipt.internal_creates)
        return deployed

    # -------------------------------------------------------------- analysis
    def _analyze(self, address: bytes, block_number: int) -> list[Alert]:
        self.stats.contracts_seen += 1
        analysis = self._proxion.analyze_contract(address)
        if self._proxion.store is not None:
            # Write-through: a followed chain keeps the durable store hot,
            # so point queries answer new deployments from the store.
            self._proxion.store.record_analysis(analysis)
        if not analysis.is_proxy:
            return []
        self.stats.proxies_seen += 1
        alerts: list[Alert] = []
        if analysis.is_hidden:
            alerts.append(Alert(
                "hidden-proxy", address, block_number,
                f"standard={analysis.standard.value}, "
                f"logic=0x{(analysis.check.logic_address or b'').hex()}"))
        alerts.extend(self._collision_alerts(analysis, block_number))
        return alerts

    def _collision_alerts(self, analysis: ContractAnalysis,
                          block_number: int) -> list[Alert]:
        alerts: list[Alert] = []
        for report in analysis.function_reports:
            if not report.has_collision:
                continue
            selectors = ",".join("0x" + c.selector.hex()
                                 for c in report.collisions)
            kind = "function-collision"
            detail = f"selectors {selectors}"
            if self._classify_honeypots:
                classifier = HoneypotClassifier(
                    self._proxion.node.chain.state,
                    self._proxion.node.chain.block_context())
                verdicts = classifier.classify(analysis.address, report)
                trapped = [v for v in verdicts if v.is_honeypot_shaped]
                if trapped:
                    kind = "honeypot"
                    detail = (f"selector 0x{trapped[0].selector.hex()} "
                              f"routes {trapped[0].victim_loss} wei away "
                              f"from the caller")
            alerts.append(Alert(kind, analysis.address, block_number, detail))
        for report in analysis.storage_reports:
            if not report.has_collision:
                continue
            if report.has_verified_exploit:
                verified = [c for c in report.collisions if c.verified][0]
                alerts.append(Alert(
                    "verified-exploit", analysis.address, block_number,
                    f"{verified.slot} clobbered via selector "
                    f"0x{verified.exploit_selector.hex()}"))
            else:
                alerts.append(Alert(
                    "storage-collision", analysis.address, block_number,
                    f"{len(report.collisions)} conflicting slot range(s)"))
        return alerts
