"""Proxy design-standard classification (Table 4).

Standards are distinguished by where the logic contract's address lives:

* **EIP-1167** (minimal): hard-coded in the bytecode, no storage slot;
* **EIP-1822** (UUPS): the slot ``keccak256("PROXIABLE")``;
* **EIP-1967**: the slot ``keccak256("eip1967.proxy.implementation") - 1``;
* **OTHER**: any other storage slot (non-standard proxies, 9.83% on
  mainnet per the paper).
"""

from __future__ import annotations

import enum

from repro.core.proxy_detector import LogicLocation, ProxyCheck
from repro.errors import ConfigurationError
from repro.lang.storage_layout import (
    EIP1822_PROXIABLE_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
)


class ProxyStandard(enum.Enum):
    """The design standards the paper's Table 4 partitions proxies into."""

    EIP1167 = "EIP-1167"
    EIP1822 = "EIP-1822"
    EIP1967 = "EIP-1967"
    OTHER = "Others"


def classify_standard(check: ProxyCheck) -> ProxyStandard:
    """Assign a positive proxy check to its design standard."""
    if not check.is_proxy:
        raise ConfigurationError("cannot classify a non-proxy")
    if check.logic_location is LogicLocation.HARDCODED:
        return ProxyStandard.EIP1167
    if check.logic_slot == EIP1822_PROXIABLE_SLOT:
        return ProxyStandard.EIP1822
    if check.logic_slot == EIP1967_IMPLEMENTATION_SLOT:
        return ProxyStandard.EIP1967
    return ProxyStandard.OTHER
