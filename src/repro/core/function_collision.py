"""Function-collision detection (§5.1).

A function collision exists when the proxy and the logic contract both
expose a function with the same 4-byte selector: the proxy's dispatcher
swallows the call, so the logic's function is unreachable — and possibly
maliciously shadowed (the Listing-1 honeypot).

Selector sets are obtained per contract from the best available source:

* **source mode** — the verified source's prototypes, hashed (what
  Slither/USCHunt do);
* **bytecode mode** — the dispatcher-pattern extraction of
  :func:`~repro.core.signature_extractor.dispatcher_selectors`, the paper's
  novel capability (no prior tool detected function collisions from
  bytecode alone, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.explorer import SourceRegistry
from repro.core.signature_extractor import dispatcher_selectors
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail
from repro.utils.abi import function_selector
from repro.utils.keccak import keccak256


@dataclass(frozen=True, slots=True)
class FunctionCollision:
    """One colliding selector, with prototypes when source names them."""

    selector: bytes
    proxy_prototype: str | None = None
    logic_prototype: str | None = None


@dataclass(slots=True)
class FunctionCollisionReport:
    """All function collisions of one proxy/logic pair."""

    proxy: bytes | None
    logic: bytes | None
    collisions: list[FunctionCollision] = field(default_factory=list)
    proxy_mode: str = "bytecode"   # "source" | "bytecode"
    logic_mode: str = "bytecode"

    @property
    def has_collision(self) -> bool:
        return bool(self.collisions)


def _selector_map_from_source(prototypes: tuple[str, ...]) -> dict[bytes, str]:
    return {function_selector(prototype): prototype for prototype in prototypes}


class FunctionCollisionDetector:
    """Cross-checks proxy and logic selector sets."""

    def __init__(self, registry: SourceRegistry | None = None, *,
                 selector_cache: dict[bytes, tuple[bytes, ...]] | None = None,
                 ) -> None:
        # ``registry or ...`` would discard an *empty* registry (it defines
        # __len__), silently detaching the detector from later verifications.
        self._registry = registry if registry is not None else SourceRegistry()
        # Codehash-keyed cache of mined dispatcher selector sets — a
        # repro.store binding passes its write-through dict here, making
        # the paper's bytecode extraction a durable hash-keyed fact.
        # Only the bytecode mode caches: source mode is address-dependent.
        self._selector_cache = selector_cache

    def selector_map(self, code: bytes,
                     address: bytes | None = None) -> tuple[dict[bytes, str | None], str]:
        """Selector → prototype-or-None for one contract, plus the mode."""
        source = self._registry.resolve(address, code) if address or code else None
        if source is not None:
            named = _selector_map_from_source(source.function_prototypes)
            return dict(named), "source"
        if self._selector_cache is not None:
            code_hash = keccak256(code)
            selectors = self._selector_cache.get(code_hash)
            if selectors is None:
                # Canonical (sorted) order: the stored fact must be
                # byte-stable across writers despite randomized bytes
                # hashing; collision output is sorted downstream anyway.
                selectors = tuple(sorted(dispatcher_selectors(code)))
                self._selector_cache[code_hash] = selectors
            return {selector: None for selector in selectors}, "bytecode"
        return {selector: None for selector in dispatcher_selectors(code)}, "bytecode"

    def detect(self, proxy_code: bytes, logic_code: bytes,
               proxy_address: bytes | None = None,
               logic_address: bytes | None = None,
               trail: EvidenceTrail = NULL_TRAIL) -> FunctionCollisionReport:
        """Pairwise selector cross-check of a proxy/logic pair.

        ``trail`` records each side's selector provenance (verified-source
        prototypes vs the bytecode dispatcher pattern) and every colliding
        selector with its prototypes when source names them.
        """
        proxy_map, proxy_mode = self.selector_map(proxy_code, proxy_address)
        logic_map, logic_mode = self.selector_map(logic_code, logic_address)
        trail.note(provenance.FUNCTION_SELECTORS, side="proxy",
                   mode=proxy_mode, count=len(proxy_map))
        trail.note(provenance.FUNCTION_SELECTORS, side="logic",
                   mode=logic_mode, count=len(logic_map))

        collisions = [
            FunctionCollision(
                selector=selector,
                proxy_prototype=proxy_map[selector],
                logic_prototype=logic_map[selector],
            )
            for selector in sorted(proxy_map.keys() & logic_map.keys())
        ]
        for collision in collisions:
            trail.note(provenance.FUNCTION_COLLISION,
                       selector="0x" + collision.selector.hex(),
                       proxy_prototype=collision.proxy_prototype,
                       logic_prototype=collision.logic_prototype)
        return FunctionCollisionReport(
            proxy=proxy_address,
            logic=logic_address,
            collisions=collisions,
            proxy_mode=proxy_mode,
            logic_mode=logic_mode,
        )
