"""Quantifying §8.1's open question: how far is emulation from reality?

The paper acknowledges that "EVM emulation may inevitably yield results
that differ from actual contract execution, although the extent of these
discrepancies is not known."  In the simulated world we *can* measure it:
every historical transaction's true outcome is recorded in its receipt, and
the same calldata can be re-run under ProxioN's §4.2 emulation conditions —
latest-block environment values, overlay state, zero value.

:class:`EmulationFidelityAuditor` replays histories and scores agreement on
three axes: success/failure verdict, output bytes, and the set of
delegatecall targets observed.  Divergences are expected and informative:
contracts that branch on ``NUMBER``/``TIMESTAMP`` (executed now vs then) or
read since-changed storage genuinely behave differently under emulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.blockchain import Receipt
from repro.chain.node import ArchiveNode
from repro.evm.environment import ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState
from repro.evm.tracer import CallTracer


@dataclass(frozen=True, slots=True)
class ReplayComparison:
    """One historical transaction vs its emulated replay."""

    to: bytes
    original_success: bool
    replay_success: bool
    output_matches: bool
    delegate_targets_match: bool

    @property
    def verdict_matches(self) -> bool:
        return self.original_success == self.replay_success

    @property
    def fully_faithful(self) -> bool:
        return (self.verdict_matches and self.output_matches
                and self.delegate_targets_match)


@dataclass(slots=True)
class FidelityReport:
    """Aggregate agreement statistics."""

    comparisons: list[ReplayComparison] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.comparisons)

    @property
    def verdict_agreement(self) -> float:
        if not self.comparisons:
            return 1.0
        return sum(c.verdict_matches for c in self.comparisons) / self.total

    @property
    def full_fidelity(self) -> float:
        if not self.comparisons:
            return 1.0
        return sum(c.fully_faithful for c in self.comparisons) / self.total

    @property
    def delegate_agreement(self) -> float:
        if not self.comparisons:
            return 1.0
        return (sum(c.delegate_targets_match for c in self.comparisons)
                / self.total)


class EmulationFidelityAuditor:
    """Replays recorded transactions under §4.2 emulation conditions."""

    def __init__(self, node: ArchiveNode,
                 use_historical_state: bool = False) -> None:
        self._node = node
        self._use_historical_state = use_historical_state

    def replay(self, receipt: Receipt) -> ReplayComparison | None:
        """Re-run one historical transaction; ``None`` for deployments."""
        transaction = receipt.transaction
        if transaction.to is None:
            return None
        chain = self._node.chain
        if self._use_historical_state:
            base = chain.state.view_at(receipt.block_number - 1)
        else:
            base = chain.state  # the §4.2 condition: current state
        overlay = OverlayState(base)
        tracer = CallTracer()
        evm = EVM(
            overlay,
            block=chain.block_context(),   # §4.2: latest-block environment
            tx=TransactionContext(origin=transaction.sender),
            config=ExecutionConfig(instruction_budget=500_000),
            tracer=tracer,
        )
        if transaction.value:
            overlay.set_balance(
                transaction.sender,
                overlay.get_balance(transaction.sender) + transaction.value)
        result = evm.execute(Message(
            sender=transaction.sender,
            to=transaction.to,
            value=transaction.value,
            data=transaction.data,
            gas=transaction.gas,
        ))
        original_targets = {event.target for event in receipt.internal_calls
                            if event.kind == "DELEGATECALL"}
        replay_targets = {event.target for event in tracer.calls
                          if event.kind == "DELEGATECALL"}
        return ReplayComparison(
            to=transaction.to,
            original_success=receipt.success,
            replay_success=result.success,
            output_matches=(result.output == receipt.output),
            delegate_targets_match=(original_targets == replay_targets),
        )

    def audit(self, addresses: list[bytes],
              max_transactions: int = 500) -> FidelityReport:
        """Replay every recorded transaction touching ``addresses``."""
        report = FidelityReport()
        seen = 0
        for address in addresses:
            for receipt in self._node.transactions_of(address):
                if receipt.transaction.to != address:
                    continue
                comparison = self.replay(receipt)
                if comparison is None:
                    continue
                report.comparisons.append(comparison)
                seen += 1
                if seen >= max_transactions:
                    return report
        return report
