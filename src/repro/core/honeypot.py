"""Honeypot risk classification for function collisions (§2.3).

A function collision is *honeypot-shaped* when calling the colliding
selector through the proxy routes value **away from the caller** — the
Listing-1 trap: the logic contract advertises a payout, the proxy's
shadowing function pockets the caller's deposit instead.

Classification is behavioural, in the spirit of the rest of ProxioN: the
colliding selector is executed through the proxy on a state overlay with a
test deposit attached, and the balance flows are observed.  Nothing is
published to a real chain; the overlay is discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.function_collision import FunctionCollisionReport
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState, StateBackend

PROBE_VICTIM = bytes.fromhex("00000000000000000000000000000000000c1a00")
PROBE_DEPOSIT = 10 ** 18  # 1 test ether


@dataclass(frozen=True, slots=True)
class HoneypotVerdict:
    """Behavioural classification of one colliding selector."""

    selector: bytes
    call_succeeded: bool
    victim_loss: int             # wei the caller lost beyond gas (>0 = trap)
    beneficiary: bytes | None    # where the funds went, when identifiable

    @property
    def is_honeypot_shaped(self) -> bool:
        return self.call_succeeded and self.victim_loss > 0


class HoneypotClassifier:
    """Executes colliding selectors through the proxy and watches the money."""

    def __init__(self, state: StateBackend,
                 block: BlockContext | None = None) -> None:
        self._state = state
        self._block = block or BlockContext(number=1,
                                            timestamp=1_600_000_000)

    def classify(self, proxy: bytes,
                 report: FunctionCollisionReport) -> list[HoneypotVerdict]:
        """One verdict per colliding selector of the pair."""
        return [self._probe(proxy, collision.selector)
                for collision in report.collisions]

    def _probe(self, proxy: bytes, selector: bytes) -> HoneypotVerdict:
        overlay = OverlayState(self._state)
        overlay.set_balance(PROBE_VICTIM, 10 * PROBE_DEPOSIT)
        balances_before = self._snapshot_balances(overlay, proxy)

        evm = EVM(
            overlay,
            block=self._block,
            tx=TransactionContext(origin=PROBE_VICTIM),
            config=ExecutionConfig(instruction_budget=500_000),
        )
        result = evm.execute(Message(
            sender=PROBE_VICTIM, to=proxy, data=selector + b"\x00" * 64,
            value=PROBE_DEPOSIT, gas=5_000_000))

        victim_after = overlay.get_balance(PROBE_VICTIM)
        victim_loss = balances_before[PROBE_VICTIM] - victim_after
        if not result.success:
            return HoneypotVerdict(selector, False, 0, None)

        beneficiary = None
        if victim_loss > 0:
            # Whoever gained what the victim lost (excluding the proxy
            # itself merely holding the deposit).
            for address in self._candidate_beneficiaries(overlay, proxy):
                gained = (overlay.get_balance(address)
                          - balances_before.get(address, 0))
                if address != proxy and gained >= victim_loss:
                    beneficiary = address
                    break
            if beneficiary is None and (
                    overlay.get_balance(proxy)
                    - balances_before.get(proxy, 0)) >= victim_loss:
                # The proxy kept it: a deposit, not necessarily a trap.
                return HoneypotVerdict(selector, True, 0, proxy)
        return HoneypotVerdict(selector, True, victim_loss, beneficiary)

    def _candidate_beneficiaries(self, overlay: OverlayState,
                                 proxy: bytes) -> list[bytes]:
        """Addresses stored in the proxy's first few slots (owner et al.)."""
        candidates = []
        for slot in range(4):
            word = overlay.get_storage(proxy, slot)
            address = (word & ((1 << 160) - 1)).to_bytes(20, "big")
            if any(address):
                candidates.append(address)
        return candidates

    @staticmethod
    def _snapshot_balances(overlay: OverlayState,
                           proxy: bytes) -> dict[bytes, int]:
        balances = {PROBE_VICTIM: overlay.get_balance(PROBE_VICTIM),
                    proxy: overlay.get_balance(proxy)}
        for slot in range(4):
            word = overlay.get_storage(proxy, slot)
            address = (word & ((1 << 160) - 1)).to_bytes(20, "big")
            if any(address):
                balances[address] = overlay.get_balance(address)
        return balances
