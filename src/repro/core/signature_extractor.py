"""Function-signature extraction from bytecode (§5.1).

Two different over-/under-approximations are needed, and the distinction is
load-bearing for the paper's accuracy claims:

* :func:`candidate_selectors` — *every* 4-byte word following a PUSH4.  An
  over-approximation (PUSH4 immediates can be arbitrary data) that is only
  safe to use negatively: the crafted emulation calldata must avoid all of
  them so the fallback is guaranteed to run (§4.2).
* :func:`dispatcher_selectors` — only PUSH4 operands that sit inside a
  dispatcher comparison (``DUP1 PUSH4 sig EQ <dest> JUMPI`` or the
  Vyper-style ``PUSH4 sig EQ``/``SUB``-chain shapes).  This is the precise
  set used for *function collision* detection, the capability no prior
  bytecode tool had (Table 1).
"""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.evm.disassembler import Disassembly, disassemble


def candidate_selectors(code: bytes | Disassembly) -> set[bytes]:
    """All 4-byte PUSH4 operands: the avoid-set for crafted calldata."""
    disassembly = code if isinstance(code, Disassembly) else disassemble(code)
    return set(disassembly.push4_operands())


def dispatcher_selectors(code: bytes | Disassembly) -> set[bytes]:
    """Selectors that are actually compared-and-jumped on by a dispatcher.

    Implements the paper's pattern search: a PUSH4 whose value feeds an
    ``EQ`` (or ``SUB``+``ISZERO``) that guards a ``JUMPI`` is a function
    selector; any other PUSH4 operand is treated as data.  A small window
    of stack-neutral opcodes (DUPs, SWAPs, PUSH2 jump targets) is allowed
    between the pattern elements to cover compiler variations.
    """
    disassembly = code if isinstance(code, Disassembly) else disassemble(code)
    instructions = disassembly.instructions
    selectors: set[bytes] = set()

    for index, instruction in enumerate(instructions):
        if instruction.opcode.immediate_size != 4 or len(instruction.operand) != 4:
            continue
        # Scan a short forward window for the comparison + conditional jump.
        saw_comparison = False
        for lookahead in instructions[index + 1:index + 6]:
            value = lookahead.opcode.value
            if value in (op.EQ, op.SUB, op.XOR):
                saw_comparison = True
            elif value == op.JUMPI and saw_comparison:
                selectors.add(instruction.operand)
                break
            elif value == op.JUMP or lookahead.opcode.is_terminator:
                break
            elif not (lookahead.opcode.is_dup or lookahead.opcode.is_swap
                      or lookahead.opcode.is_push or value == op.ISZERO):
                break
    return selectors


def extract_push20_addresses(code: bytes | Disassembly) -> set[bytes]:
    """All 20-byte PUSH20 operands — candidate hard-coded addresses."""
    disassembly = code if isinstance(code, Disassembly) else disassemble(code)
    return {
        instruction.operand
        for instruction in disassembly.instructions
        if instruction.opcode.immediate_size == 20 and len(instruction.operand) == 20
    }


def address_hardcoded_in(code: bytes, address: bytes) -> bool:
    """Is ``address`` embedded in the bytecode (minimal-proxy style, §4.3)?

    A raw substring check suffices: EIP-1167 embeds the address behind a
    PUSH20, and any 20-byte match is overwhelmingly unlikely to be
    coincidental.
    """
    return address in code
