"""Recovering every logic contract a proxy ever delegated to (§4.3).

For hard-coded (EIP-1167) proxies the single logic address is embedded in
the bytecode.  For storage-slot proxies the history of the implementation
slot must be recovered from the archive node.  Querying every block is
infeasible (15M+ blocks on mainnet); the paper's Algorithm 1 binary-searches
the slot's value between the genesis and latest blocks under the assumption
that logic addresses are never reused — reducing the cost to ~26
``getStorageAt`` calls per proxy (§6.1).

Two variants are provided:

* :func:`algorithm1_values` — the paper's Algorithm 1, returning the *set*
  of values (blind to A→B→A reuse, a documented failure mode exercised by
  the ablation bench);
* :func:`slot_change_points` — an exact variant that pins down every block
  at which the value changed, used for the upgrade census (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.node import ArchiveNode
from repro.core.proxy_detector import LogicLocation, ProxyCheck
from repro.errors import ConfigurationError
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail
from repro.utils.hexutil import ADDRESS_MASK, word_to_address
from repro.utils.keccak import keccak256


def algorithm1_values(node: ArchiveNode, proxy: bytes, slot: int,
                      lower: int | None = None,
                      upper: int | None = None,
                      trail: EvidenceTrail = NULL_TRAIL) -> set[int]:
    """Paper Algorithm 1: all values ever stored in ``slot`` of ``proxy``.

    Recursive binary partition: equal endpoint values ⇒ assume the slot
    never changed inside the range (the no-reuse assumption); otherwise
    split and recurse.  Endpoint reads are memoized so shared boundaries
    between sibling ranges cost one RPC, matching the efficiency the paper
    reports.  ``trail`` records each slot read and narrowing decision.
    """
    lower = node.genesis_block_number if lower is None else lower
    upper = node.latest_block_number if upper is None else upper
    cache: dict[int, int] = {}

    def read(height: int) -> int:
        if height not in cache:
            cache[height] = node.get_storage_at(proxy, slot, height)
            trail.note(provenance.SEARCH_READ, block=height,
                       value=hex(cache[height]))
        return cache[height]

    def partition(low: int, high: int) -> set[int]:
        value_low = read(low)
        value_high = read(high)
        if value_low == value_high:
            trail.note(provenance.SEARCH_STEP, low=low, high=high,
                       decision="uniform")
            return {value_low}
        mid = (low + high) // 2
        trail.note(provenance.SEARCH_STEP, low=low, high=high,
                   decision="split", mid=mid)
        return partition(low, mid) | partition(mid + 1, high)

    return partition(lower, upper)


def slot_change_points(node: ArchiveNode, proxy: bytes, slot: int,
                       lower: int | None = None,
                       upper: int | None = None,
                       trail: EvidenceTrail = NULL_TRAIL,
                       ) -> list[tuple[int, int]]:
    """Exact change history: ``[(block, new_value), ...]`` in block order.

    Same divide-and-conquer skeleton as Algorithm 1, but ranges are split
    until each change is isolated at a single block boundary, so A→B→A
    reuse cannot hide.  ``trail`` records each slot read and narrowing
    decision, so the recovered history can be audited step by step.
    """
    lower = node.genesis_block_number if lower is None else lower
    upper = node.latest_block_number if upper is None else upper
    cache: dict[int, int] = {}

    def read(height: int) -> int:
        if height not in cache:
            cache[height] = node.get_storage_at(proxy, slot, height)
            trail.note(provenance.SEARCH_READ, block=height,
                       value=hex(cache[height]))
        return cache[height]

    changes: list[tuple[int, int]] = []

    def partition(low: int, high: int) -> None:
        if read(low) == read(high):
            trail.note(provenance.SEARCH_STEP, low=low, high=high,
                       decision="uniform")
            return
        if high == low + 1:
            trail.note(provenance.SEARCH_STEP, low=low, high=high,
                       decision="change-at", block=high,
                       value=hex(read(high)))
            changes.append((high, read(high)))
            return
        mid = (low + high) // 2
        trail.note(provenance.SEARCH_STEP, low=low, high=high,
                   decision="split", mid=mid)
        partition(low, mid)
        partition(mid, high)

    initial = read(lower)
    if initial:
        changes.append((lower, initial))
    partition(lower, upper)
    changes.sort(key=lambda change: change[0])
    return changes


#: keccak256("Upgraded(address)") — the EIP-1967 upgrade event topic.
UPGRADED_EVENT_TOPIC = int.from_bytes(keccak256(b"Upgraded(address)"), "big")


def history_from_events(node: ArchiveNode,
                        proxy: bytes) -> list[tuple[int, bytes]]:
    """Event-log alternative to Algorithm 1: ``(block, new_logic)`` pairs.

    EIP-1967-conformant proxies emit ``Upgraded(address)`` on every
    implementation change, so one ``eth_getLogs`` query recovers the whole
    history — *when the proxy emits*.  Non-standard proxies (the 9.83%
    "Others", every minimal clone, and any contract that upgrades without
    the event) are invisible to this method, which is why ProxioN uses the
    storage-based Algorithm 1 as its primary mechanism; see the
    binary-search ablation bench for the comparison.
    """
    changes: list[tuple[int, bytes]] = []
    for block_number, event in node.get_logs(address=proxy,
                                             topic=UPGRADED_EVENT_TOPIC):
        if len(event.data) >= 32:
            word = int.from_bytes(event.data[:32], "big")
            changes.append(
                (block_number, word_to_address(word & ADDRESS_MASK)))
    return changes


@dataclass(slots=True)
class LogicHistory:
    """Everything recovered about a proxy's logic contracts."""

    proxy: bytes
    slot: int | None
    logic_addresses: list[bytes] = field(default_factory=list)  # chronological
    change_points: list[tuple[int, int]] = field(default_factory=list)
    api_calls_used: int = 0

    @property
    def upgrade_count(self) -> int:
        """Number of times the implementation was *changed* after first set."""
        return max(0, len(self.change_points) - 1)

    @property
    def current_logic(self) -> bytes | None:
        return self.logic_addresses[-1] if self.logic_addresses else None


class LogicFinder:
    """Resolves the full logic history for an identified proxy."""

    def __init__(self, node: ArchiveNode) -> None:
        self._node = node

    def find(self, check: ProxyCheck,
             trail: EvidenceTrail = NULL_TRAIL) -> LogicHistory:
        """Recover all logic contracts for a positive :class:`ProxyCheck`."""
        if not check.is_proxy:
            raise ConfigurationError("logic recovery requires a positive proxy check")

        if check.logic_location is not LogicLocation.STORAGE or check.logic_slot is None:
            # Minimal pattern (§4.3): one hard-coded logic address forever.
            addresses = [check.logic_address] if check.logic_address else []
            trail.note(provenance.LOGIC_SOURCE, method="hardcoded")
            trail.note(provenance.LOGIC_HISTORY, addresses=len(addresses),
                       changes=0, api_calls=0)
            return LogicHistory(proxy=check.address, slot=None,
                                logic_addresses=addresses)

        trail.note(provenance.LOGIC_SOURCE, method="storage-slot",
                   slot=hex(check.logic_slot))
        before = self._node.api_calls.get("eth_getStorageAt")
        changes = slot_change_points(self._node, check.address,
                                     check.logic_slot, trail=trail)
        used = self._node.api_calls.get("eth_getStorageAt") - before

        addresses: list[bytes] = []
        for _, value in changes:
            address = word_to_address(value & ADDRESS_MASK)
            if any(address == existing for existing in addresses):
                continue
            if value:
                addresses.append(address)
        trail.note(provenance.LOGIC_HISTORY, addresses=len(addresses),
                   changes=len(changes), api_calls=used)
        return LogicHistory(
            proxy=check.address,
            slot=check.logic_slot,
            logic_addresses=addresses,
            change_points=changes,
            api_calls_used=used,
        )
