"""Crafted-calldata generation for the EVM emulation step (§4.2).

The proxy check must drive execution into the *fallback* function, which
requires a 4-byte selector different from every function the contract might
define.  Since bytecode does not say which PUSH4 operands are real
selectors, ProxioN avoids **all** of them — the safe over-approximation.

Selector choice is deterministic (seeded by the contract's code) so that
repeated analyses of the same contract are reproducible.
"""

from __future__ import annotations

from repro.core.signature_extractor import candidate_selectors
from repro.evm.disassembler import Disassembly
from repro.utils.keccak import keccak256

PROBE_CALLDATA_ARG_WORDS = 2


def craft_probe_selector(code: bytes | Disassembly,
                         avoid: set[bytes] | None = None) -> bytes:
    """Pick a 4-byte selector avoiding every PUSH4 operand in ``code``.

    Derives candidates from the code hash and walks a deterministic
    sequence until one misses the avoid-set; with at most a few thousand
    PUSH4 operands in 24 KiB of code, the loop terminates almost
    immediately (the avoid-set covers < 0.0002% of the 2**32 space).
    """
    if avoid is None:
        raw = code.code if isinstance(code, Disassembly) else code
        avoid = candidate_selectors(code)
        seed = raw
    else:
        seed = code.code if isinstance(code, Disassembly) else code
    digest = keccak256(b"proxion-probe:" + seed)
    counter = 0
    while True:
        candidate = keccak256(digest + counter.to_bytes(8, "big"))[:4]
        if candidate not in avoid:
            return candidate
        counter += 1


def craft_probe_calldata(code: bytes | Disassembly,
                         avoid: set[bytes] | None = None) -> bytes:
    """Full probe calldata: safe selector + a couple of argument words.

    The argument padding keeps contracts that blindly ``CALLDATALOAD``
    argument positions from reading past the data, reducing spurious
    emulation failures.
    """
    selector = craft_probe_selector(code, avoid)
    return selector + b"\x00" * (32 * PROBE_CALLDATA_ARG_WORDS)
