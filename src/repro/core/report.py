"""Result records for single contracts and whole-landscape sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.function_collision import FunctionCollisionReport
from repro.core.logic_finder import LogicHistory
from repro.core.proxy_detector import NotProxyReason, ProxyCheck
from repro.core.standards import ProxyStandard
from repro.core.storage_collision import StorageCollisionReport


@dataclass(slots=True)
class ContractAnalysis:
    """Everything ProxioN learned about one contract."""

    address: bytes
    code_hash: bytes
    has_source: bool = False
    has_transactions: bool = False
    deploy_block: int | None = None
    deploy_year: int | None = None
    check: ProxyCheck | None = None
    standard: ProxyStandard | None = None
    logic_history: LogicHistory | None = None
    function_reports: list[FunctionCollisionReport] = field(default_factory=list)
    storage_reports: list[StorageCollisionReport] = field(default_factory=list)
    # Compact provenance summary (repro.evidence/1 digest) attached by an
    # audited sweep; None on the default path.  The full causal tree lives
    # in the audit directory's per-contract evidence file.
    evidence_digest: dict | None = None

    @property
    def is_proxy(self) -> bool:
        return bool(self.check and self.check.is_proxy)

    @property
    def is_hidden(self) -> bool:
        """No source *and* no past transactions — the paper's novel class."""
        return not self.has_source and not self.has_transactions

    @property
    def has_function_collision(self) -> bool:
        return any(report.has_collision for report in self.function_reports)

    @property
    def has_storage_collision(self) -> bool:
        return any(report.has_collision for report in self.storage_reports)

    @property
    def has_verified_storage_exploit(self) -> bool:
        return any(report.has_verified_exploit for report in self.storage_reports)

    @property
    def emulation_failed(self) -> bool:
        return bool(self.check
                    and self.check.reason is NotProxyReason.EMULATION_ERROR)


@dataclass(frozen=True, slots=True)
class ContractFailure:
    """One quarantined per-contract failure of a degraded sweep.

    When a contract's analysis dies (RPC deadline, open circuit, runaway
    emulation, ...) the pipeline records the cause here and keeps sweeping
    instead of aborting — the paper's ~10⁹-RPC regime cannot afford to lose
    a run to one bad contract.  ``cause`` is the stable label from
    :func:`repro.errors.classify_cause`; ``stage`` names the pipeline step
    that failed (``liveness`` or ``analysis`` — or ``worker`` when the
    sweep supervisor quarantined a poison contract that kept killing its
    worker process).
    """

    address: bytes
    cause: str
    error: str
    stage: str = "analysis"


@dataclass(slots=True)
class LandscapeReport:
    """Aggregate of a full analysis sweep (§7)."""

    analyses: dict[bytes, ContractAnalysis] = field(default_factory=dict)
    failures: dict[bytes, ContractFailure] = field(default_factory=dict)
    # §6.1 dedup effectiveness, one explicit hit/miss pair per cache
    # (mirrors the ``dedup.hits``/``dedup.misses`` registry counters).
    proxy_check_cache_hits: int = 0
    proxy_check_cache_misses: int = 0
    function_cache_hits: int = 0
    function_cache_misses: int = 0
    storage_cache_hits: int = 0
    storage_cache_misses: int = 0
    collision_cache_hits: int = 0      # legacy: function + storage hits

    def add(self, analysis: ContractAnalysis) -> None:
        self.analyses[analysis.address] = analysis
        self.failures.pop(analysis.address, None)

    def add_failure(self, failure: ContractFailure) -> None:
        self.failures[failure.address] = failure

    def quarantined(self) -> list[ContractFailure]:
        return list(self.failures.values())

    def quarantine_census(self) -> dict[str, int]:
        """Quarantined contracts per cause label."""
        census: dict[str, int] = {}
        for failure in self.failures.values():
            census[failure.cause] = census.get(failure.cause, 0) + 1
        return census

    @property
    def attempted(self) -> int:
        """Contracts the sweep touched: analyzed plus quarantined."""
        return len(self.analyses) + len(self.failures)

    @staticmethod
    def _hit_rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def dedup_hit_rates(self) -> dict[str, float]:
        """Hit rate per dedup cache, as fractions in [0, 1]."""
        return {
            "proxy_check": self._hit_rate(self.proxy_check_cache_hits,
                                          self.proxy_check_cache_misses),
            "function_collision": self._hit_rate(self.function_cache_hits,
                                                 self.function_cache_misses),
            "storage_collision": self._hit_rate(self.storage_cache_hits,
                                                self.storage_cache_misses),
        }

    # ------------------------------------------------------------- counters
    def __len__(self) -> int:
        return len(self.analyses)

    def proxies(self) -> list[ContractAnalysis]:
        return [a for a in self.analyses.values() if a.is_proxy]

    def hidden_proxies(self) -> list[ContractAnalysis]:
        return [a for a in self.proxies() if a.is_hidden]

    def function_collision_pairs(self) -> int:
        return sum(
            sum(1 for report in a.function_reports if report.has_collision)
            for a in self.analyses.values()
        )

    def storage_collision_pairs(self) -> int:
        return sum(
            sum(1 for report in a.storage_reports if report.has_collision)
            for a in self.analyses.values()
        )

    def emulation_failure_rate(self) -> float:
        total = len(self.analyses)
        if not total:
            return 0.0
        failures = sum(1 for a in self.analyses.values() if a.emulation_failed)
        return failures / total

    def standards_census(self) -> dict[ProxyStandard, int]:
        census: dict[ProxyStandard, int] = {}
        for analysis in self.proxies():
            if analysis.standard is not None:
                census[analysis.standard] = census.get(analysis.standard, 0) + 1
        return census
