"""Bounded symbolic execution of runtime bytecode (the CRUSH engine, §5.2).

The storage-collision detector needs, for each contract, the set of storage
accesses with

* the **slot** being touched (a constant, or ``keccak256(key ++ base)`` for
  mappings — the *program slice* that computes the slot is interpreted
  symbolically),
* the **byte range** inside the slot (recovered from the shift/mask
  read-modify-write idiom the compiler emits for packed variables — this is
  how variable *sizes*, and hence types, are deduced from bytecode),
* which **function** (dispatcher selector) performs the access, and
* whether the access sits behind a **caller guard** (``msg.sender == slot``
  comparison), CRUSH's signal for sensitive, access-controlled slots.

The executor forks on symbolic branches with path/step budgets; compiled
dispatcher code is loop-free, so modest budgets give full coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.evm import opcodes as op
from repro.evm.disassembler import Disassembly, disassemble
from repro.utils.hexutil import WORD_MASK

# ------------------------------------------------------------- slot keys
CONCRETE = "concrete"
MAPPING = "mapping"
SYMBOLIC = "symbolic"


@dataclass(frozen=True, slots=True)
class SlotKey:
    """Identifies a storage slot family."""

    kind: str              # CONCRETE | MAPPING | SYMBOLIC
    base: int = 0          # slot number (concrete) or mapping marker slot

    @classmethod
    def concrete(cls, slot: int) -> "SlotKey":
        return cls(CONCRETE, slot)

    @classmethod
    def mapping(cls, marker_slot: int) -> "SlotKey":
        return cls(MAPPING, marker_slot)

    @classmethod
    def symbolic(cls) -> "SlotKey":
        return cls(SYMBOLIC)

    def __str__(self) -> str:
        if self.kind == CONCRETE:
            return f"slot[{self.base}]"
        if self.kind == MAPPING:
            return f"mapping@{self.base}"
        return "slot[?]"


# ---------------------------------------------------------- symbolic values
@dataclass(frozen=True, slots=True)
class Value:
    """A (possibly symbolic) 256-bit value.

    ``concrete`` is the integer when known.  ``origin`` tags interesting
    provenance ("caller", "selector", "sload", "hash", ...).  SLOAD-derived
    values carry their access record index so shift/mask refinements can be
    attributed back to the originating read.
    """

    concrete: int | None = None
    origin: str = "unknown"
    access_index: int = -1      # index into the trace's access list
    shift: int = 0              # accumulated right-shift (sload-derived)
    slot: SlotKey | None = None  # for hash values used as slots
    selector_value: int = -1    # for selector==const comparison booleans
    mask: int | None = None     # raw AND mask applied to an sload value

    @property
    def is_concrete(self) -> bool:
        return self.concrete is not None


def _const(value: int) -> Value:
    return Value(concrete=value & WORD_MASK, origin="const")


_ZERO = _const(0)
_UNKNOWN = Value()


def _contiguous_mask_range(mask: int) -> tuple[int, int] | None:
    """Decompose a contiguous bit mask into (byte_offset, byte_size)."""
    if mask <= 0:
        return None
    low_zeros = (mask & -mask).bit_length() - 1
    shifted = mask >> low_zeros
    if shifted & (shifted + 1):
        return None  # not contiguous
    if low_zeros % 8:
        return None
    width = shifted.bit_length()
    if width % 8:
        return None
    return low_zeros // 8, width // 8


# ------------------------------------------------------------ access record
@dataclass(slots=True)
class StorageAccess:
    """One SLOAD/SSTORE discovered by symbolic execution."""

    kind: str                  # "read" | "write"
    slot: SlotKey
    offset: int = 0            # byte offset within the slot
    size: int = 32             # byte width accessed
    selector: bytes | None = None   # dispatcher branch (None = fallback path)
    guarded: bool = False      # behind a msg.sender == <slot> comparison
    compared_to_caller: bool = False  # the loaded value itself guards access
    pc: int = 0
    # Read-modify-write bookkeeping: a read that only preserves the bytes
    # around a packed write records the byte range being cleared and is
    # excluded from semantic profiles.
    rmw_helper: bool = False
    cleared_offset: int | None = None
    cleared_size: int | None = None

    @property
    def byte_range(self) -> tuple[int, int]:
        return self.offset, self.offset + self.size

    def overlaps(self, other: "StorageAccess") -> bool:
        if self.slot != other.slot:
            return False
        return (self.offset < other.offset + other.size
                and other.offset < self.offset + self.size)


@dataclass(slots=True)
class _PathState:
    pc: int
    stack: list[Value]
    memory: dict[int, Value]
    selector: bytes | None
    guarded: bool
    steps: int


@dataclass(slots=True)
class SymbolicSummary:
    """All storage accesses reachable in a contract's runtime code."""

    accesses: list[StorageAccess] = field(default_factory=list)
    paths_explored: int = 0
    paths_truncated: int = 0

    def reads(self) -> list[StorageAccess]:
        return [a for a in self.accesses if a.kind == "read"]

    def semantic_accesses(self) -> list[StorageAccess]:
        """Accesses minus RMW preserve-reads (mechanical, not type-bearing)."""
        return [a for a in self.accesses if not a.rmw_helper]

    def writes(self) -> list[StorageAccess]:
        return [a for a in self.accesses if a.kind == "write"]

    def slots(self) -> set[SlotKey]:
        return {a.slot for a in self.accesses}

    def sensitive_slots(self) -> set[SlotKey]:
        """Slots whose value is compared against msg.sender (access control)."""
        return {a.slot for a in self.accesses if a.compared_to_caller}

    def accesses_for_slot(self, slot: SlotKey) -> list[StorageAccess]:
        return [a for a in self.accesses if a.slot == slot]


class SymbolicExecutor:
    """Explores a contract's runtime code and summarizes storage behaviour."""

    def __init__(self, max_paths: int = 256, max_steps_per_path: int = 6000) -> None:
        self._max_paths = max_paths
        self._max_steps = max_steps_per_path

    def summarize(self, code: bytes | Disassembly) -> SymbolicSummary:
        disassembly = code if isinstance(code, Disassembly) else disassemble(code)
        raw = disassembly.code
        jumpdests = disassembly.jumpdests
        instructions = {inst.offset: inst for inst in disassembly.instructions}

        summary = SymbolicSummary()
        worklist: list[_PathState] = [
            _PathState(pc=0, stack=[], memory={}, selector=None,
                       guarded=False, steps=0)
        ]
        while worklist and summary.paths_explored < self._max_paths:
            state = worklist.pop()
            summary.paths_explored += 1
            self._run_path(state, raw, instructions, jumpdests, summary, worklist)
        if worklist:
            summary.paths_truncated += len(worklist)
        return summary

    # ------------------------------------------------------------ execution
    def _run_path(self, state: _PathState, code: bytes, instructions: dict,
                  jumpdests: frozenset[int], summary: SymbolicSummary,
                  worklist: list[_PathState]) -> None:
        stack = state.stack

        def pop() -> Value:
            return stack.pop() if stack else _UNKNOWN

        def popn(count: int) -> list[Value]:
            return [pop() for _ in range(count)]

        def push(value: Value) -> None:
            if len(stack) < 1024:
                stack.append(value)

        while state.pc < len(code) and state.steps < self._max_steps:
            state.steps += 1
            instruction = instructions.get(state.pc)
            if instruction is None:
                return  # fell into a data region
            opcode = instruction.opcode
            value = opcode.value
            next_pc = instruction.next_offset

            if opcode.is_push:
                pushed = _const(instruction.operand_int)
                if value == op.PUSH0:
                    pushed = _ZERO
                push(pushed)
            elif opcode.is_dup:
                depth = value - 0x7F
                if len(stack) < depth:
                    return
                push(stack[-depth])
            elif opcode.is_swap:
                depth = value - 0x8F
                if len(stack) < depth + 1:
                    return
                stack[-1], stack[-depth - 1] = stack[-depth - 1], stack[-1]
            elif value == op.JUMP:
                target = pop()
                if not target.is_concrete or target.concrete not in jumpdests:
                    return
                state.pc = target.concrete
                continue
            elif value == op.JUMPI:
                target, condition = pop(), pop()
                if not target.is_concrete or target.concrete not in jumpdests:
                    if condition.is_concrete and not condition.concrete:
                        state.pc = next_pc
                        continue
                    return
                if condition.is_concrete:
                    state.pc = target.concrete if condition.concrete else next_pc
                    continue
                # Symbolic branch: fork.  Selector comparisons bind the
                # taken branch to that function; caller-guard comparisons
                # mark the authorized (taken) branch as guarded.
                taken = _PathState(
                    pc=target.concrete,
                    stack=list(stack),
                    memory=dict(state.memory),
                    selector=state.selector,
                    guarded=state.guarded,
                    steps=state.steps,
                )
                if condition.origin == "selector_eq":
                    taken.selector = condition.selector_value.to_bytes(4, "big")
                if condition.origin == "caller_eq_slot":
                    taken.guarded = True
                worklist.append(taken)
                state.pc = next_pc
                continue
            elif value in (op.STOP, op.RETURN, op.REVERT, op.SELFDESTRUCT,
                           op.INVALID):
                return
            elif value == op.SLOAD:
                slot_value = pop()
                slot_key = self._slot_key(slot_value)
                access = StorageAccess(
                    kind="read", slot=slot_key, selector=state.selector,
                    guarded=state.guarded, pc=state.pc)
                summary.accesses.append(access)
                push(Value(origin="sload",
                           access_index=len(summary.accesses) - 1))
            elif value == op.SSTORE:
                slot_value, stored = pop(), pop()
                slot_key = self._slot_key(slot_value)
                offset, size = self._infer_write_range(stored, slot_key, summary)
                summary.accesses.append(StorageAccess(
                    kind="write", slot=slot_key, offset=offset, size=size,
                    selector=state.selector, guarded=state.guarded,
                    pc=state.pc))
            else:
                self._step_data(value, instruction, state, pop, popn, push,
                                summary)
            state.pc = next_pc

    # ------------------------------------------------------- data operations
    def _step_data(self, value: int, instruction, state: _PathState,
                   pop, popn, push, summary: SymbolicSummary) -> None:
        if value == op.CALLDATALOAD:
            offset = pop()
            if offset.is_concrete and offset.concrete == 0:
                push(Value(origin="calldata0"))
            else:
                push(_UNKNOWN)
        elif value == op.SHR:
            shift, operand = pop(), pop()
            push(self._shift_right(shift, operand, summary))
        elif value == op.AND:
            a, b = pop(), pop()
            push(self._bitwise_and(a, b, summary))
        elif value == op.EQ:
            a, b = pop(), pop()
            push(self._compare_eq(a, b, summary))
        elif value == op.ISZERO:
            operand = pop()
            if operand.is_concrete:
                push(_const(int(operand.concrete == 0)))
            elif operand.origin == "selector_xor":
                # The Vyper-style dispatcher: ISZERO(selector XOR sig).
                push(Value(origin="selector_eq",
                           selector_value=operand.selector_value))
            elif operand.origin in ("selector_eq", "caller_eq_slot"):
                # Propagate the comparison through negation (require(!..)).
                push(operand)
            else:
                push(_UNKNOWN)
        elif value == op.CALLER:
            push(Value(origin="caller"))
        elif value == op.MSTORE:
            offset, word = pop(), pop()
            if offset.is_concrete:
                state.memory[offset.concrete] = word
        elif value == op.MLOAD:
            offset = pop()
            if offset.is_concrete and offset.concrete in state.memory:
                push(state.memory[offset.concrete])
            else:
                push(_UNKNOWN)
        elif value == op.KECCAK256:
            offset, size = pop(), pop()
            push(self._keccak_value(offset, size, state))
        elif value == op.XOR:
            a, b = pop(), pop()
            selector, const = (a, b) if a.origin == "selector" else (b, a)
            if selector.origin == "selector" and const.is_concrete:
                push(Value(origin="selector_xor",
                           selector_value=const.concrete))
            elif a.is_concrete and b.is_concrete:
                push(_const(a.concrete ^ b.concrete))
            else:
                push(_UNKNOWN)
        elif value == op.OR:
            a, b = pop(), pop()
            self._mark_rmw(a, summary)
            self._mark_rmw(b, summary)
            if a.is_concrete and b.is_concrete:
                push(_const(a.concrete | b.concrete))
            else:
                push(_UNKNOWN)
        elif value in (op.CALL, op.CALLCODE):
            popn(7)
            push(_UNKNOWN)
        elif value in (op.DELEGATECALL, op.STATICCALL):
            popn(6)
            push(_UNKNOWN)
        elif value == op.CREATE:
            popn(3)
            push(_UNKNOWN)
        elif value == op.CREATE2:
            popn(4)
            push(_UNKNOWN)
        else:
            opcode = op.OPCODES[value]
            inputs = [pop() for _ in range(opcode.stack_inputs)]
            for _ in range(opcode.stack_outputs):
                push(self._fold_arith(value, inputs))

    # ----------------------------------------------------------- refinements
    @staticmethod
    def _slot_key(slot_value: Value) -> SlotKey:
        if slot_value.is_concrete:
            return SlotKey.concrete(slot_value.concrete)
        if slot_value.origin == "hash" and slot_value.slot is not None:
            return slot_value.slot
        return SlotKey.symbolic()

    @staticmethod
    def _shift_right(shift: Value, operand: Value,
                     summary: SymbolicSummary) -> Value:
        if shift.is_concrete and operand.is_concrete:
            result = operand.concrete >> shift.concrete if shift.concrete < 256 else 0
            return _const(result)
        if shift.is_concrete and operand.origin == "calldata0" and shift.concrete == 0xE0:
            return Value(origin="selector")
        if shift.is_concrete and operand.origin == "sload":
            # Track the packed-variable extraction shift on the read record.
            if 0 <= operand.access_index < len(summary.accesses):
                return replace(operand, shift=operand.shift + shift.concrete)
        return _UNKNOWN

    @staticmethod
    def _bitwise_and(a: Value, b: Value, summary: SymbolicSummary) -> Value:
        if a.is_concrete and b.is_concrete:
            return _const(a.concrete & b.concrete)
        sload, mask = (a, b) if a.origin == "sload" else (b, a)
        if sload.origin == "sload" and mask.is_concrete:
            if not 0 <= sload.access_index < len(summary.accesses):
                return sload
            access = summary.accesses[sload.access_index]
            decomposed = _contiguous_mask_range(mask.concrete)
            if decomposed is not None:
                # Provisionally a plain packed read.  If this value later
                # feeds an OR (the RMW combine), _mark_rmw reinterprets the
                # mask as a clear mask instead — both readings are
                # contiguous when the variable touches a slot edge, and
                # only the dataflow disambiguates them.
                access.offset = sload.shift // 8 + decomposed[0]
                access.size = decomposed[1]
            else:
                cleared = _contiguous_mask_range(mask.concrete ^ WORD_MASK)
                if cleared is not None:
                    access.rmw_helper = True
                    access.cleared_offset, access.cleared_size = cleared
            return replace(sload, mask=mask.concrete)
        return _UNKNOWN

    @staticmethod
    def _mark_rmw(operand: Value, summary: SymbolicSummary) -> None:
        """An sload value feeding an OR is the preserve side of an RMW
        combine: reinterpret its AND mask as a *clear* mask."""
        if (operand.origin != "sload" or operand.mask is None
                or not 0 <= operand.access_index < len(summary.accesses)):
            return
        cleared = _contiguous_mask_range(operand.mask ^ WORD_MASK)
        if cleared is None:
            return
        access = summary.accesses[operand.access_index]
        access.rmw_helper = True
        access.cleared_offset, access.cleared_size = cleared
        access.offset, access.size = 0, 32  # undo the provisional read range

    @staticmethod
    def _compare_eq(a: Value, b: Value, summary: SymbolicSummary) -> Value:
        if a.is_concrete and b.is_concrete:
            return _const(int(a.concrete == b.concrete))
        selector, const = (a, b) if a.origin == "selector" else (b, a)
        if selector.origin == "selector" and const.is_concrete:
            return Value(origin="selector_eq", selector_value=const.concrete)
        caller, loaded = (a, b) if a.origin == "caller" else (b, a)
        if caller.origin == "caller" and loaded.origin == "sload":
            if 0 <= loaded.access_index < len(summary.accesses):
                summary.accesses[loaded.access_index].compared_to_caller = True
            return Value(origin="caller_eq_slot")
        return _UNKNOWN

    @staticmethod
    def _keccak_value(offset: Value, size: Value, state: _PathState) -> Value:
        """Recognize the Solidity mapping idiom keccak(mem[0:64])."""
        if (offset.is_concrete and size.is_concrete and size.concrete == 64):
            marker = state.memory.get(offset.concrete + 32)
            if marker is not None and marker.is_concrete:
                return Value(origin="hash",
                             slot=SlotKey.mapping(marker.concrete))
        return Value(origin="hash", slot=SlotKey.symbolic())

    @staticmethod
    def _fold_arith(opcode_value: int, inputs: list[Value]) -> Value:
        """Constant-fold the plain arithmetic/comparison opcodes."""
        if not inputs or not all(item.is_concrete for item in inputs):
            return _UNKNOWN
        values = [item.concrete for item in inputs]
        try:
            if opcode_value == op.ADD:
                return _const(values[0] + values[1])
            if opcode_value == op.SUB:
                return _const(values[0] - values[1])
            if opcode_value == op.MUL:
                return _const(values[0] * values[1])
            if opcode_value == op.DIV:
                return _const(values[0] // values[1] if values[1] else 0)
            if opcode_value == op.OR:
                return _const(values[0] | values[1])
            if opcode_value == op.XOR:
                return _const(values[0] ^ values[1])
            if opcode_value == op.NOT:
                return _const(values[0] ^ WORD_MASK)
            if opcode_value == op.LT:
                return _const(int(values[0] < values[1]))
            if opcode_value == op.GT:
                return _const(int(values[0] > values[1]))
            if opcode_value == op.SHL:
                return _const(values[1] << values[0] if values[0] < 256 else 0)
        except (IndexError, OverflowError):
            return _UNKNOWN
        return _UNKNOWN

    def _infer_write_range(self, stored: Value, slot_key: SlotKey,
                           summary: SymbolicSummary) -> tuple[int, int]:
        """Infer the byte range of an SSTORE from the RMW idiom.

        A packed write stores ``(old & clear_mask) | (new << shift)``; the
        preceding read of the same slot with a recorded clear mask tells us
        which bytes the compiler preserved.  The most recent read of the
        same slot whose mask decomposition *failed* (clear masks are
        non-contiguous complements) is matched by slot identity instead:
        we look for the latest read of this slot and use the complement of
        its preserved range when available.
        """
        del stored  # range inference keys off the paired read, below
        for access in reversed(summary.accesses):
            if access.kind != "read" or access.slot != slot_key:
                continue
            if access.rmw_helper and access.cleared_offset is not None:
                return access.cleared_offset, access.cleared_size or 32
            break
        return 0, 32
