"""ProxioN core: proxy detection, logic recovery, collision analysis."""

from repro.core.calldata import craft_probe_calldata, craft_probe_selector
from repro.core.function_collision import (
    FunctionCollision,
    FunctionCollisionDetector,
    FunctionCollisionReport,
)
from repro.core.logic_finder import (
    LogicFinder,
    LogicHistory,
    algorithm1_values,
    slot_change_points,
)
from repro.core.emulation_fidelity import (
    EmulationFidelityAuditor,
    FidelityReport,
    ReplayComparison,
)
from repro.core.honeypot import HoneypotClassifier, HoneypotVerdict
from repro.core.monitor import Alert, DeploymentMonitor, MonitorStats
from repro.core.ownership import OwnerKind, OwnershipAnalyzer, OwnershipReport
from repro.core.pipeline import Proxion, ProxionOptions
from repro.core.selector_miner import (
    MiningResult,
    estimate_full_collision_attempts,
    mine_selector,
    mining_rate,
)
from repro.core.proxy_detector import (
    LogicLocation,
    NotProxyReason,
    ProxyCheck,
    ProxyDetector,
)
from repro.core.report import (
    ContractAnalysis,
    ContractFailure,
    LandscapeReport,
)
from repro.core.signature_extractor import (
    candidate_selectors,
    dispatcher_selectors,
)
from repro.core.standards import ProxyStandard, classify_standard
from repro.core.storage_collision import (
    StorageCollision,
    StorageCollisionDetector,
    StorageCollisionReport,
    StorageProfile,
    profile_from_bytecode,
    profile_from_source,
)
from repro.core.symexec import SlotKey, StorageAccess, SymbolicExecutor

__all__ = [
    "Alert",
    "ContractAnalysis",
    "ContractFailure",
    "DeploymentMonitor",
    "EmulationFidelityAuditor",
    "FidelityReport",
    "MonitorStats",
    "ReplayComparison",
    "FunctionCollision",
    "FunctionCollisionDetector",
    "FunctionCollisionReport",
    "HoneypotClassifier",
    "HoneypotVerdict",
    "LandscapeReport",
    "LogicFinder",
    "LogicHistory",
    "LogicLocation",
    "MiningResult",
    "NotProxyReason",
    "OwnerKind",
    "OwnershipAnalyzer",
    "OwnershipReport",
    "ProxionOptions",
    "Proxion",
    "ProxyCheck",
    "ProxyDetector",
    "ProxyStandard",
    "SlotKey",
    "StorageAccess",
    "StorageCollision",
    "StorageCollisionDetector",
    "StorageCollisionReport",
    "StorageProfile",
    "SymbolicExecutor",
    "algorithm1_values",
    "candidate_selectors",
    "classify_standard",
    "craft_probe_calldata",
    "craft_probe_selector",
    "dispatcher_selectors",
    "estimate_full_collision_attempts",
    "mine_selector",
    "mining_rate",
    "profile_from_bytecode",
    "profile_from_source",
    "slot_change_points",
]
