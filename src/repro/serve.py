"""``repro.serve`` — the long-running analysis daemon (ROADMAP item 2).

``repro serve --store PATH [--port N]`` promotes the repo from a
one-shot sweep tool into a persistent service, the way the paper frames
Proxion itself (the real system ships a ``Throttler.py`` and a
rate-limiting sidecar because it answers queries under load):

* **chain following** — a :class:`~repro.core.monitor.DeploymentMonitor`
  polls the chain on a background thread, analyzes every new deployment
  and writes it through the :class:`~repro.store.binding.StoreBinding`,
  keeping the durable store hot;
* **point queries** — ``GET /v1/contract/ADDR`` answers "is this a
  proxy? what is its logic history? what collisions?" from WAL reader
  connections (one per server thread, concurrent with the writer); a
  store miss triggers a fresh analysis under the writer lock, whose
  result is written through so the next query hits;
* **admission control** — per-client token buckets (429 + Retry-After)
  in front of a bounded slots+queue gate (503 on overflow or wait
  timeout), with every shed request counted in the metrics registry —
  under overload the daemon degrades to fast refusals, never to queue
  collapse (``tools/check_serve.py`` gates this at 2x over-admission);
* **one coherent surface** — the PR 6 observability routes
  (``/metrics``, ``/healthz``, ``/progress``) are mounted on the same
  server via the shared :func:`~repro.obs.http.route_observability`
  handlers, and stay *unthrottled* so probes are never shed.

Every ``/v1`` body is produced by :mod:`repro.api`'s canonical encoder,
which is what makes ``repro explain ADDR --json --store PATH`` and
``GET /v1/contract/ADDR`` byte-identical for the same store state.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro import api
from repro.errors import ConfigurationError


# ------------------------------------------------------------ configuration
@dataclass(slots=True)
class ServeConfig:
    """Everything ``repro serve`` can tune (CLI flags mirror fields)."""

    store_path: str
    host: str = "127.0.0.1"
    port: int = 0
    # Landscape the daemon fronts (must match the sweep that seeded the
    # store, or fresh analyses would run against a different world).
    total: int = 400
    seed: int = 42
    chain: str = "ethereum"
    diamonds: bool = False
    # Chain following.
    follow: bool = False
    poll_interval_s: float = 0.25
    simulate_deploys: int = 0      # synthetic deployments per poll (demo)
    # RPC backends behind the daemon; > 1 wires a FailoverNode so a
    # primary-endpoint outage degrades to a failover, not an outage.
    rpc_endpoints: int = 1
    # Rate limiting (per client) and admission control (global).
    rate_per_s: float = 200.0
    burst: int = 40
    max_clients: int = 1024
    slots: int = 8
    queue_limit: int = 32
    queue_timeout_s: float = 2.0
    # Optional flight-recorder journal for /progress and /healthz.
    journal_path: str | None = None
    hung_after_s: float = 30.0


# ------------------------------------------------------------ rate limiting
class TokenBucket:
    """One client's token bucket: ``burst`` capacity, ``rate``/s refill."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token; 0.0 when admitted, else seconds until one."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with bounded client tracking.

    ``admit`` returns ``0.0`` when the request may proceed, else the
    ``Retry-After`` hint in seconds.  Client state is an LRU capped at
    ``max_clients`` — an address-rotating flood cannot grow memory, it
    only recycles (full) buckets.  ``clock`` is injectable so tests
    drive time explicitly.
    """

    def __init__(self, rate_per_s: float, burst: int, *,
                 max_clients: int = 1024,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"rate limit must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self.burst = max(1, burst)
        self.max_clients = max(1, max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def admit(self, client: str) -> float:
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, float(self.burst), now)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket.try_take(now)


class AdmissionGate:
    """Bounded concurrency (slots) behind a bounded wait queue.

    ``enter()`` returns ``"admitted"`` (caller must ``leave()``),
    ``"queue-full"`` (shed immediately — the queue never grows past
    ``queue_limit``, which is what prevents collapse under sustained
    overload) or ``"timeout"`` (shed after waiting ``timeout_s``).
    """

    def __init__(self, slots: int, queue_limit: int,
                 timeout_s: float) -> None:
        self.slots = max(1, slots)
        self.queue_limit = max(0, queue_limit)
        self.timeout_s = timeout_s
        self._condition = threading.Condition()
        self._active = 0
        self._waiting = 0

    @property
    def depth(self) -> int:
        """Requests currently queued (for the high-water gauge)."""
        return self._waiting

    @property
    def active(self) -> int:
        """Requests currently executing (the drain path waits on this)."""
        return self._active

    def enter(self) -> str:
        deadline = time.monotonic() + self.timeout_s
        with self._condition:
            if self._active < self.slots:
                self._active += 1
                return "admitted"
            if self._waiting >= self.queue_limit:
                return "queue-full"
            self._waiting += 1
            try:
                while self._active >= self.slots:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return "timeout"
                    self._condition.wait(remaining)
                self._active += 1
                return "admitted"
            finally:
                self._waiting -= 1

    def leave(self) -> None:
        with self._condition:
            self._active -= 1
            self._condition.notify()


# ------------------------------------------------------------ query service
class QueryService:
    """Store-backed point queries with on-miss fresh analysis.

    Reads go through per-thread WAL reader connections — SQLite's WAL
    mode lets any number of them answer while the single writer (the
    chain follower, or a miss-path analysis) commits.  Writes serialize
    on ``writer_lock``; the miss path re-checks the store under the lock
    so two racing misses on one address analyze it once.
    """

    def __init__(self, store_path: str, proxion,
                 writer_lock: threading.Lock) -> None:
        self._store_path = store_path
        self._proxion = proxion
        self._writer_lock = writer_lock
        self._local = threading.local()
        metrics = proxion.metrics
        self._hits = metrics.counter("serve.queries", result="hit")
        self._fresh = metrics.counter("serve.queries", result="fresh")
        self._latency = metrics.histogram("serve.query_seconds")

    def _reader(self):
        store = getattr(self._local, "store", None)
        if store is None:
            from repro.store.store import AnalysisStore
            store = AnalysisStore(self._store_path)
            self._local.store = store
        return store

    def query(self, address: bytes) -> api.ContractAnswer:
        started = time.perf_counter()
        try:
            answer = api.answer_from_store(self._reader(), address)
            if answer is not None:
                self._hits.inc()
                return answer
            with self._writer_lock:
                # A racing miss (or the follower) may have settled the
                # address while we waited; WAL readers see its commit.
                answer = api.answer_from_store(self._reader(), address)
                if answer is not None:
                    self._hits.inc()
                    return answer
                answer = api.fresh_answer(self._proxion, address)
            self._fresh.inc()
            return answer
        finally:
            self._latency.observe(time.perf_counter() - started)


# ------------------------------------------------------------------ the app
class ServeApp:
    """The assembled daemon: store + pipeline + follower + HTTP server.

    ``landscape`` is injectable for tests; by default the deterministic
    ``(total, seed, chain)`` landscape is regenerated, which is the same
    world any seeding sweep ran against.
    """

    def __init__(self, config: ServeConfig, *, landscape=None) -> None:
        from repro.chain.profiles import get_profile
        from repro.core import Proxion, ProxionOptions
        from repro.core.monitor import DeploymentMonitor
        from repro.corpus import generate_landscape
        from repro.store import attach_store

        self.config = config
        if landscape is None:
            landscape = generate_landscape(
                total=config.total, seed=config.seed,
                chain_profile=get_profile(config.chain))
        self.landscape = landscape

        binding = attach_store(config.store_path)
        if binding is None:
            raise ConfigurationError(
                f"cannot open store {config.store_path!r} for serving")
        self._binding = binding
        node = landscape.node
        if config.rpc_endpoints > 1:
            from repro.chain.failover import build_failover_node
            node = build_failover_node(node, config.rpc_endpoints)
        self._proxion = Proxion(
            node, registry=landscape.registry,
            dataset=landscape.dataset,
            options=ProxionOptions(detect_diamonds=config.diamonds),
            store=binding)
        self.metrics = self._proxion.metrics
        self.monitor = DeploymentMonitor(self._proxion)
        # The store already settles the chain's history; follow from the
        # head instead of replaying every historical block at startup.
        self.monitor.catch_up()

        self._writer_lock = threading.Lock()
        self.queries = QueryService(config.store_path, self._proxion,
                                    self._writer_lock)
        self.limiter = RateLimiter(config.rate_per_s, config.burst,
                                   max_clients=config.max_clients)
        self.gate = AdmissionGate(config.slots, config.queue_limit,
                                  config.queue_timeout_s)
        self._throttled = self.metrics.counter("serve.throttled")
        self._shed = {reason: self.metrics.counter("serve.shed",
                                                   reason=reason)
                      for reason in ("queue-full", "timeout", "draining")}
        self._queue_depth = self.metrics.gauge("serve.queue_depth")
        self._polls = self.metrics.counter("serve.follower_polls")

        self._stop = threading.Event()
        self._draining = False
        self._closed = False
        self._follower: threading.Thread | None = None
        if config.follow:
            self._follower = threading.Thread(
                target=self._follow, name="repro-serve-follower", daemon=True)

        app = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"   # keep-alive: bench clients
            #                                 reuse connections
            # Without TCP_NODELAY, Nagle's algorithm holds the response
            # tail for the client's delayed ACK (~40ms per request on a
            # reused connection) — two orders of magnitude on p50.
            disable_nagle_algorithm = True

            def log_message(self, format: str, *args: Any) -> None:
                pass  # request logging would melt stderr under load

            def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
                try:
                    status, content_type, body, headers = app._route(
                        self.path, self.client_address[0])
                except Exception as error:   # defensive: a query must
                    body = (f"internal error: {error}\n"   # never kill
                            .encode("utf-8"))              # the server
                    status, content_type, headers = (
                        500, "text/plain; charset=utf-8", {})
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for key, value in headers.items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((config.host, config.port),
                                          _Handler)
        self._httpd.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServeApp":
        self._server_thread.start()
        if self._follower is not None:
            self._follower.start()
        return self

    def close(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful drain, then teardown.  Idempotent (a signal handler
        and a ``finally`` may both call it).

        Order matters: first refuse new ``/v1`` work (503 + Retry-After),
        then stop the follower *at a poll boundary* (it checks the stop
        event between polls, so no analysis is interrupted mid-contract),
        then wait for admitted in-flight queries to finish, and only then
        tear down the HTTP server and close the store cleanly.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self._stop.set()
        if self._follower is not None and self._follower.is_alive():
            self._follower.join(timeout=max(drain_timeout_s, 5.0))
        deadline = time.monotonic() + drain_timeout_s
        while self.gate.active > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._server_thread.is_alive():
            self._server_thread.join(timeout=2.0)
        self._binding.close()

    def __enter__(self) -> "ServeApp":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # ------------------------------------------------------------- follower
    def _follow(self) -> None:
        from repro.lang import compile_contract, stdlib

        deployer = bytes.fromhex("00000000000000000000000000000000005e12e5")
        self.landscape.chain.fund(deployer, 10 ** 24)
        epoch = 0
        while not self._stop.is_set():
            if self.config.simulate_deploys:
                # Synthetic traffic for demos and the smoke gate: each
                # poll deploys a small wallet and a minimal clone of it,
                # so the follower always has genuinely new code to chew.
                for index in range(self.config.simulate_deploys):
                    contract = compile_contract(stdlib.simple_wallet(
                        f"Svc{epoch}_{index}", deployer))
                    receipt = self.landscape.chain.deploy(
                        deployer, contract.init_code)
                    self.landscape.chain.deploy(
                        deployer,
                        stdlib.minimal_proxy_init(receipt.created_address))
                epoch += 1
            with self._writer_lock:
                self.monitor.poll()
            self._polls.inc()
            self._stop.wait(self.config.poll_interval_s)

    # --------------------------------------------------------------- routing
    def _answer(self, answer: api.Answer, status: int = 200,
                headers: dict[str, str] | None = None,
                ) -> tuple[int, str, bytes, dict[str, str]]:
        return (status, "application/json", api.encode(answer),
                headers or {})

    def _route(self, path: str, client: str,
               ) -> tuple[int, str, bytes, dict[str, str]]:
        path = path.split("?", 1)[0]
        # Observability routes stay unthrottled: shedding a liveness
        # probe under load would turn overload into a false outage.
        obs = self._route_obs(path)
        if obs is not None:
            status, content_type, body = obs
            return (status, content_type, body.encode("utf-8"), {})
        if path.startswith("/v1/"):
            return self._route_v1(path, client)
        body = ("unknown path; try /v1/contract/ADDR, /v1/server, "
                "/metrics, /healthz or /progress\n").encode("utf-8")
        return (404, "text/plain; charset=utf-8", body, {})

    def _route_obs(self, path: str) -> tuple[int, str, str] | None:
        from repro.obs.http import route_observability
        return route_observability(
            path, lambda: self.metrics,
            journal_path=self.config.journal_path,
            hung_after_s=self.config.hung_after_s)

    def _route_v1(self, path: str, client: str,
                  ) -> tuple[int, str, bytes, dict[str, str]]:
        if self._draining:
            # Shutdown in progress: refuse new query work outright while
            # already-admitted requests finish.  Clients get the same
            # RFC 9110 contract as overload shedding: 503 + Retry-After.
            self._shed["draining"].inc()
            return self._answer(
                api.ErrorAnswer(error="shutting down (draining)",
                                status=503, retry_after_s=1.0),
                status=503, headers={"Retry-After": "1"})
        retry_after = self.limiter.admit(client)
        if retry_after > 0:
            self._throttled.inc()
            seconds = max(1, int(retry_after + 0.999))
            return self._answer(
                api.ErrorAnswer(error="rate limit exceeded", status=429,
                                retry_after_s=retry_after),
                status=429, headers={"Retry-After": str(seconds)})
        outcome = self.gate.enter()
        self._queue_depth.set(self.gate.depth)
        if outcome != "admitted":
            self._shed[outcome].inc()
            retry_hint = self.config.queue_timeout_s
            return self._answer(
                api.ErrorAnswer(error=f"overloaded ({outcome})", status=503,
                                retry_after_s=retry_hint),
                status=503,
                headers={"Retry-After": str(max(1, int(retry_hint)))})
        try:
            return self._dispatch_v1(path)
        finally:
            self.gate.leave()

    def _dispatch_v1(self, path: str,
                     ) -> tuple[int, str, bytes, dict[str, str]]:
        if path == "/v1/server":
            return self._answer(self._server_answer())
        prefix = "/v1/contract/"
        if path.startswith(prefix):
            rendered = path[len(prefix):]
            try:
                address = bytes.fromhex(rendered.removeprefix("0x"))
            except ValueError:
                address = b""
            if len(address) != 20:
                return self._answer(
                    api.ErrorAnswer(
                        error=f"{rendered!r} is not a 20-byte hex address",
                        status=400),
                    status=400)
            return self._answer(self.queries.query(address))
        return self._answer(
            api.ErrorAnswer(error=f"unknown v1 route {path!r}", status=404),
            status=404)

    def _server_answer(self) -> api.ServerAnswer:
        store = self.queries._reader()
        counts = {
            table: store._connection.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in ("analyses", "failures", "skips", "proxy_verdicts")
        }
        queries = self.metrics.counter_total("serve.queries")
        return api.ServerAnswer(
            store=self.config.store_path,
            contracts=counts["analyses"],
            failures=counts["failures"],
            skips=counts["skips"],
            settled_code_hashes=counts["proxy_verdicts"],
            following=self._follower is not None,
            blocks_scanned=self.monitor.stats.blocks_scanned,
            queries=int(queries),
        )


def serve(config: ServeConfig, *, landscape=None) -> ServeApp:
    """Build and start a daemon; the caller owns ``close()``."""
    return ServeApp(config, landscape=landscape).start()


__all__ = [
    "AdmissionGate",
    "QueryService",
    "RateLimiter",
    "ServeApp",
    "ServeConfig",
    "TokenBucket",
    "serve",
]
