"""``repro.api`` — the versioned query surface (``repro.query/1``).

Every way of asking this codebase a question about one contract — the
``repro explain`` CLI, the ``repro serve`` HTTP daemon, a direct store
lookup — constructs the *same* typed answer records defined here and
serializes them through the *same* canonical encoder.  That is the whole
point of the module: for the same store state, ``repro explain ADDR
--json --store PATH`` and ``GET /v1/contract/ADDR`` return
**byte-identical** bodies, because neither owns its own serializer
(``tools/check_serve.py`` gates the guarantee in CI).

Answer kinds:

* :class:`ContractAnswer` — "is this address a proxy?", with the full
  analysis record, the quarantine record, or the skip verdict;
* :class:`EvidenceAnswer` — a contract answer that also carries the
  ``repro.evidence/1`` trail (``repro explain``'s output);
* :class:`StatusAnswer` — a sweep journal snapshot (``repro status
  --json`` and ``GET /progress``);
* :class:`ServerAnswer` — the daemon's own vitals (``GET /v1/server``);
* :class:`ErrorAnswer` — a typed refusal (rate-limited, overloaded,
  bad address), carrying the HTTP status and ``Retry-After`` hint.

Canonical encoding: ``to_json`` is ``json.dumps(record, indent=2,
sort_keys=True)``; ``encode`` appends the trailing newline ``print``
adds, yielding the exact HTTP body bytes.  Every key of a record is
always present (``null`` when inapplicable) so consumers never probe
for optional fields.

:data:`SCHEMA_REGISTRY` is the one table of every versioned wire format
this repository speaks (documented in ``docs/service.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pipeline import Proxion
    from repro.core.report import ContractAnalysis
    from repro.obs.console import SweepStatus
    from repro.obs.provenance import EvidenceTrail
    from repro.store.store import AnalysisStore

#: Version tag carried by every answer record.
QUERY_SCHEMA = "repro.query/1"

#: Every versioned wire format in the repository, in one place: tag →
#: (producer, one-line meaning).  ``docs/service.md`` renders this table
#: and a test pins it, so adding a schema anywhere forces the registry
#: (and the docs) to follow.
SCHEMA_REGISTRY: dict[str, tuple[str, str]] = {
    "repro.checkpoint/1": (
        "survey --checkpoint",
        "JSONL per-contract sweep progress for crash/resume"),
    "repro.store/1": (
        "survey --store / repro serve",
        "durable SQLite analysis store (hash facts + instance rows)"),
    "repro.events/1": (
        "survey --events",
        "flight-recorder journal of sweep lifecycle events"),
    "repro.evidence/1": (
        "survey --audit / repro explain",
        "per-contract verdict provenance trail"),
    "repro.bench/1": (
        "repro bench",
        "benchmark suite payload (workload medians + dims)"),
    "repro.bench-row/1": (
        "repro bench",
        "one workload's timing row inside a bench payload"),
    QUERY_SCHEMA: (
        "repro explain/status --json / repro serve",
        "typed query answers (contract, evidence, status, server, error)"),
}

# Contract verdicts (the closed set a ContractAnswer may carry).
VERDICT_PROXY = "proxy"
VERDICT_NOT_PROXY = "not-proxy"
VERDICT_QUARANTINED = "quarantined"
VERDICT_SKIPPED = "skipped"

# Where an answer's facts came from.
SOURCE_STORE = "store"
SOURCE_FRESH = "fresh"
SOURCE_AUDIT = "audit"


def _hex(address: bytes) -> str:
    return "0x" + address.hex()


# ------------------------------------------------------------- answer types
@dataclass(frozen=True, slots=True)
class ContractAnswer:
    """One contract's point answer: verdict plus its supporting record."""

    address: str                      # 0x-hex
    verdict: str                      # VERDICT_* above
    source: str                       # SOURCE_* above
    analysis: dict[str, Any] | None   # the serialized ContractAnalysis
    failure: dict[str, Any] | None    # the serialized ContractFailure

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA,
            "kind": "contract",
            "address": self.address,
            "verdict": self.verdict,
            "source": self.source,
            "analysis": self.analysis,
            "failure": self.failure,
        }


@dataclass(frozen=True, slots=True)
class EvidenceAnswer:
    """A contract's provenance trail as a query answer.

    ``evidence`` nests the complete ``repro.evidence/1`` record
    (schema tag, address, sections) exactly as the trail serializes
    itself — the envelope adds provenance (``source``) without
    re-encoding the trail.
    """

    address: str
    source: str
    evidence: dict[str, Any]          # EvidenceTrail.to_dict()

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA,
            "kind": "evidence",
            "address": self.address,
            "source": self.source,
            "evidence": self.evidence,
        }


@dataclass(frozen=True, slots=True)
class StatusAnswer:
    """A sweep journal snapshot in the query envelope."""

    status: dict[str, Any]            # SweepStatus.to_dict()

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA,
            "kind": "status",
            "status": self.status,
        }


@dataclass(frozen=True, slots=True)
class ServerAnswer:
    """The serve daemon's own vitals (``GET /v1/server``)."""

    store: str | None
    contracts: int
    failures: int
    skips: int
    settled_code_hashes: int
    following: bool
    blocks_scanned: int
    queries: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA,
            "kind": "server",
            "store": self.store,
            "contracts": self.contracts,
            "failures": self.failures,
            "skips": self.skips,
            "settled_code_hashes": self.settled_code_hashes,
            "following": self.following,
            "blocks_scanned": self.blocks_scanned,
            "queries": self.queries,
        }


@dataclass(frozen=True, slots=True)
class ErrorAnswer:
    """A typed refusal; ``status`` doubles as the HTTP response code."""

    error: str
    status: int = 400
    retry_after_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": QUERY_SCHEMA,
            "kind": "error",
            "error": self.error,
            "status": self.status,
            "retry_after_s": self.retry_after_s,
        }


Answer = (ContractAnswer | EvidenceAnswer | StatusAnswer | ServerAnswer
          | ErrorAnswer)


# -------------------------------------------------------- canonical encoder
def to_json(answer: Answer) -> str:
    """The one serializer every surface uses (no trailing newline)."""
    return json.dumps(answer.to_dict(), indent=2, sort_keys=True)


def encode(answer: Answer) -> bytes:
    """The exact HTTP body bytes: ``to_json`` plus the newline ``print``
    appends — this is what makes CLI and HTTP answers byte-identical."""
    return (to_json(answer) + "\n").encode("utf-8")


# ------------------------------------------------------------- constructors
def answer_from_analysis(analysis: "ContractAnalysis",
                         source: str) -> ContractAnswer:
    """Wrap a live :class:`ContractAnalysis` in the answer envelope."""
    from repro.landscape.serialize import analysis_to_dict

    return ContractAnswer(
        address=_hex(analysis.address),
        verdict=VERDICT_PROXY if analysis.is_proxy else VERDICT_NOT_PROXY,
        source=source,
        analysis=analysis_to_dict(analysis),
        failure=None,
    )


def answer_from_record(record: dict[str, Any], source: str) -> ContractAnswer:
    """Wrap a stored (already serialized) analysis record."""
    return ContractAnswer(
        address=record["address"],
        verdict=(VERDICT_PROXY if record.get("is_proxy")
                 else VERDICT_NOT_PROXY),
        source=source,
        analysis=record,
        failure=None,
    )


def answer_from_store(store: "AnalysisStore",
                      address: bytes) -> ContractAnswer | None:
    """The store's point answer for one address, or ``None`` on a miss.

    Checks the three mutually-exclusive instance tables in verdict
    priority order (an address lives in at most one).
    """
    record = store.load_analysis_record(address)
    if record is not None:
        return answer_from_record(record, SOURCE_STORE)
    failure = store.load_failure_record(address)
    if failure is not None:
        return ContractAnswer(address=_hex(address),
                              verdict=VERDICT_QUARANTINED,
                              source=SOURCE_STORE,
                              analysis=None, failure=failure)
    if store.has_skip(address):
        return ContractAnswer(address=_hex(address), verdict=VERDICT_SKIPPED,
                              source=SOURCE_STORE,
                              analysis=None, failure=None)
    return None


def fresh_answer(proxion: "Proxion", address: bytes) -> ContractAnswer:
    """Analyze one address now and answer from the result.

    Mirrors one iteration of ``analyze_all``: the §3.1 liveness probe
    first (dead → ``skipped``), quarantine-on-exception
    (cause-classified, never a 500), and write-through to the bound
    store so the *next* query is a store hit.  Deliberately runs without
    an evidence trail: the CLI's fresh path does the same, which keeps
    fresh CLI and HTTP answers byte-identical too.
    """
    from repro.core.report import ContractFailure
    from repro.errors import classify_cause
    from repro.landscape.serialize import failure_to_dict

    store = proxion.store
    if not proxion.node.is_alive(address):
        if store is not None:
            store.record_skip(address)
        return ContractAnswer(address=_hex(address), verdict=VERDICT_SKIPPED,
                              source=SOURCE_FRESH,
                              analysis=None, failure=None)
    try:
        analysis = proxion.analyze_contract(address)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as error:
        failure = ContractFailure(address=address,
                                  cause=classify_cause(error),
                                  error=str(error), stage="analysis")
        if store is not None:
            store.record_failure(failure)
        return ContractAnswer(address=_hex(address),
                              verdict=VERDICT_QUARANTINED,
                              source=SOURCE_FRESH,
                              analysis=None,
                              failure=failure_to_dict(failure))
    if store is not None:
        store.record_analysis(analysis)
    return answer_from_analysis(analysis, SOURCE_FRESH)


def evidence_answer(trail: "EvidenceTrail", source: str) -> EvidenceAnswer:
    """Wrap a provenance trail in the query envelope."""
    record = trail.to_dict()
    return EvidenceAnswer(address=record["address"], source=source,
                          evidence=record)


def status_answer(status: "SweepStatus") -> StatusAnswer:
    """Wrap a journal snapshot in the query envelope."""
    return StatusAnswer(status=status.to_dict())


# --------------------------------------------------------- human rendering
def describe_answer(answer: ContractAnswer) -> str:
    """The short human line for a contract answer (non-``--json`` CLI)."""
    if answer.verdict == VERDICT_QUARANTINED:
        failure = answer.failure or {}
        return (f"{answer.address}: quarantined "
                f"({failure.get('cause', '?')} at "
                f"{failure.get('stage', '?')}: {failure.get('error', '')}) "
                f"[{answer.source}]")
    if answer.verdict == VERDICT_SKIPPED:
        return f"{answer.address}: no code (dead address) [{answer.source}]"
    record = answer.analysis or {}
    if answer.verdict == VERDICT_NOT_PROXY:
        return f"{answer.address}: not a proxy [{answer.source}]"
    bits = [f"{answer.address}: proxy",
            f"standard={record.get('standard')}"]
    if record.get("hidden"):
        bits.append("hidden")
    history = record.get("logic_history") or {}
    logic = history.get("addresses") or []
    if logic:
        bits.append(f"logic={logic[-1]} "
                    f"({history.get('upgrade_count', 0)} upgrades)")
    functions = len(record.get("function_collisions") or [])
    storage = len(record.get("storage_collisions") or [])
    if functions or storage:
        bits.append(f"collisions={functions}F/{storage}S")
    return " ".join(bits) + f" [{answer.source}]"


__all__ = [
    "QUERY_SCHEMA",
    "SCHEMA_REGISTRY",
    "VERDICT_NOT_PROXY",
    "VERDICT_PROXY",
    "VERDICT_QUARANTINED",
    "VERDICT_SKIPPED",
    "SOURCE_AUDIT",
    "SOURCE_FRESH",
    "SOURCE_STORE",
    "Answer",
    "ContractAnswer",
    "ErrorAnswer",
    "EvidenceAnswer",
    "ServerAnswer",
    "StatusAnswer",
    "answer_from_analysis",
    "answer_from_record",
    "answer_from_store",
    "describe_answer",
    "encode",
    "evidence_answer",
    "fresh_answer",
    "status_answer",
    "to_json",
]
