"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``survey``         — generate a calibrated landscape, run the full sweep,
                       print the §7 findings
* ``serve``          — long-running analysis daemon: follows the chain,
                       answers ``repro.query/1`` point queries over HTTP
                       with rate limiting (docs/service.md)
* ``accuracy``       — build the labelled corpus, print Table 2 for every tool
* ``bench``          — the continuous-benchmarking suite (timing trajectory,
                       regression gate, EVM flame profiles)
* ``demo <name>``    — run a packaged attack scenario (honeypot / audius)
* ``status``         — point-in-time snapshot of a sweep's flight-recorder
                       journal (``survey --events``)
* ``tail``           — stream a sweep's flight-recorder events (``--follow``)
* ``explain``        — render one contract's ``repro.evidence/1`` trail
                       (from ``survey --audit DIR``, or freshly recorded)
* ``mine-selector``  — §2.3: mine a selector collision against a prototype
"""

from __future__ import annotations

import argparse
import sys

#: Flag name → ``add_argument`` kwargs for the observability group.  One
#: definition, shared by every command that exposes a subset — the help
#: text and defaults cannot drift between ``survey``/``accuracy``/``bench``.
_OBSERVABILITY_FLAGS: dict[str, dict] = {
    "--metrics": dict(
        action="store_true",
        help="print the repro.obs summary (per-stage wall time, RPC "
             "usage, §6.1 dedup hit rates); with --json, embed the "
             "metrics snapshot"),
    "--metrics-prom": dict(
        default=None, metavar="FILE",
        help="write the registry in Prometheus text format"),
    "--trace-jsonl": dict(
        default=None, metavar="FILE",
        help="append every pipeline span as JSON lines"),
    "--profile-evm": dict(
        action="store_true",
        help="collect opcode-class/gas/depth EVM profile"),
    "--flame": dict(
        default=None, metavar="FILE",
        help="write collapsed flame stacks of the EVM work "
             "(flamegraph.pl input; implies --profile-evm)"),
    "--flame-weight": dict(
        default="gas", choices=("gas", "instructions"),
        help="flame sample unit (default: base gas)"),
    "--events": dict(
        default=None, metavar="FILE",
        help="write the repro.events/1 flight-recorder journal there; "
             "read it live with `repro status FILE` / `repro tail FILE` "
             "(composes with --workers)"),
    "--audit": dict(
        default=None, metavar="DIR",
        help="record verdict provenance: one repro.evidence/1 file per "
             "contract in DIR, rendered later by `repro explain ADDR "
             "--audit DIR` (composes with --workers)"),
    "--serve": dict(
        type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /progress over HTTP on "
             "127.0.0.1:PORT while the command runs (0 = pick an "
             "ephemeral port); the same handlers `repro serve` mounts"),
    "--serve-obs": dict(
        type=int, default=None, metavar="PORT",
        help="deprecated alias of --serve (one release; same handlers, "
             "byte-identical /metrics)"),
}

#: Flag name → ``add_argument`` kwargs for the robustness group (chaos
#: injection + checkpoint/resume).
_ROBUSTNESS_FLAGS: dict[str, dict] = {
    "--chaos": dict(
        default=None,
        help="inject a canned fault plan between the sweep and the "
             "node, absorbed by the resilient RPC layer "
             "(docs/robustness.md)"),
    "--chaos-seed": dict(
        type=int, default=1337,
        help="seed for the fault plan and the retry jitter "
             "(default 1337)"),
    "--rpc-endpoints": dict(
        type=int, default=1, metavar="N",
        help="front the chain with N RPC backends behind a failover "
             "node; --chaos then strikes only the primary endpoint "
             "(default 1 = single endpoint, docs/robustness.md)"),
    "--checkpoint": dict(
        default=None, metavar="FILE",
        help="append per-contract progress to a JSONL checkpoint so a "
             "killed sweep can resume"),
    "--resume": dict(
        action="store_true",
        help="resume from --checkpoint FILE if it exists (skips "
             "completed addresses)"),
    "--shard-timeout": dict(
        type=float, default=30.0, metavar="SECONDS",
        help="supervised sweeps (--workers > 1): kill a worker whose "
             "heartbeat is older than this (per contract, not per "
             "shard; default 30)"),
    "--max-shard-retries": dict(
        type=int, default=2, metavar="N",
        help="supervised sweeps: respawn a dead/hung shard this many "
             "times before bisecting it down to the poison contract "
             "(default 2)"),
}


def _add_flag_group(parser: argparse.ArgumentParser,
                    definitions: dict[str, dict],
                    only: tuple[str, ...] | None) -> None:
    for flag, kwargs in definitions.items():
        if only is None or flag in only:
            parser.add_argument(flag, **kwargs)


def add_observability_flags(parser: argparse.ArgumentParser,
                            only: tuple[str, ...] | None = None) -> None:
    """Attach the shared observability flags (or the ``only`` subset)."""
    _add_flag_group(parser, _OBSERVABILITY_FLAGS, only)


def add_robustness_flags(parser: argparse.ArgumentParser,
                         only: tuple[str, ...] | None = None) -> None:
    """Attach the shared robustness flags (or the ``only`` subset)."""
    from repro.chain.faults import CANNED_PLANS

    definitions = dict(_ROBUSTNESS_FLAGS)
    definitions["--chaos"] = dict(definitions["--chaos"],
                                  choices=CANNED_PLANS)
    _add_flag_group(parser, definitions, only)


def _cmd_survey(args: argparse.Namespace) -> int:
    # Thin wrapper so the live ops surface (--serve-obs) and the serial
    # events journal are always torn down, whichever path/return the
    # sweep takes.
    obs: dict = {"registry": None, "server": None, "journal": None}
    try:
        return _survey_impl(args, obs)
    finally:
        if obs["journal"] is not None:
            obs["journal"].close()
        if obs["server"] is not None:
            obs["server"].close()


def _survey_impl(args: argparse.Namespace, obs: dict) -> int:
    from repro.chain.profiles import get_profile
    from repro.core import Proxion, ProxionOptions
    from repro.corpus import generate_landscape
    from repro.landscape import (
        figure5_duplicates,
        figure6_upgrades,
        table3_collisions_by_year,
        table4_standards,
    )

    profile = get_profile(args.chain)
    if not args.json:
        print(f"generating {args.total} contracts on {profile.name} "
              f"(seed={args.seed})...")
    landscape = generate_landscape(total=args.total, seed=args.seed,
                                   chain_profile=profile)
    options = ProxionOptions(detect_diamonds=args.diamonds,
                             profile_evm=args.profile_evm or bool(args.flame))

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint FILE", file=sys.stderr)
        return 2

    store_path = args.store
    if args.db:
        # Deprecated in PR 8, removed now (one release of deprecation
        # served): the flag still parses so old scripts get this message
        # instead of an argparse usage error.
        print("error: --db was removed; use --store PATH (same "
              "repro.store/1 database — files written by --db open "
              "unchanged)", file=sys.stderr)
        return 2
    if args.incremental and store_path is None:
        print("error: --incremental requires --store PATH (the store is "
              "where settled work is read from)", file=sys.stderr)
        return 2

    audit = None
    if args.audit:
        from repro.errors import ConfigurationError
        from repro.obs.provenance import AuditDir
        try:
            # Fail on an unwritable directory now, not mid-sweep; workers
            # re-open the same path by name.
            audit = AuditDir(args.audit)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"audit: recording repro.evidence/1 trails in "
                  f"{args.audit} (render with `repro explain ADDR "
                  f"--audit {args.audit}`)")

    serve_port = args.serve
    if args.serve_obs is not None:
        if serve_port is not None and serve_port != args.serve_obs:
            print("error: --serve-obs is a deprecated alias of --serve; "
                  "the two name different ports — pass --serve only",
                  file=sys.stderr)
            return 2
        serve_port = args.serve_obs
        print("note: --serve-obs is deprecated; use --serve PORT (same "
              "endpoints, same handlers)", file=sys.stderr)
    if serve_port is not None:
        from repro.obs.http import ObsServer

        # The callable indirection lets the CLI swap in the merged
        # registry once a parallel sweep lands, while scrapes keep
        # hitting one stable URL for the whole command.
        obs["registry"] = landscape.node.metrics
        obs["server"] = ObsServer(lambda: obs["registry"],
                                  journal_path=args.events,
                                  hung_after_s=args.shard_timeout,
                                  port=serve_port)
        if not args.json:
            print(f"obs: serving /metrics /healthz /progress at "
                  f"{obs['server'].url}")

    if args.workers > 1:
        # Per-worker artifacts that cannot be merged into one file stay
        # serial-only; everything else (chaos, checkpoints, metrics, db,
        # json) composes with sharding.
        for flag, value in (("--flame", args.flame),
                            ("--trace-jsonl", args.trace_jsonl)):
            if value:
                print(f"error: {flag} is per-process output and does not "
                      f"compose with --workers > 1 (run serially)",
                      file=sys.stderr)
                return 2
        from repro.errors import ConfigurationError
        from repro.parallel import (
            SupervisorConfig,
            SweepSpec,
            run_sharded_sweep,
        )
        spec = SweepSpec(total=args.total, seed=args.seed, chain=args.chain,
                         options=options, chaos=args.chaos,
                         chaos_seed=args.chaos_seed,
                         rpc_endpoints=args.rpc_endpoints)
        if args.chaos and not args.json:
            print(f"chaos: injecting fault plan {args.chaos!r} "
                  f"(seed={args.chaos_seed}) in every worker")
        try:
            supervise = SupervisorConfig(
                shard_timeout_s=args.shard_timeout,
                max_shard_retries=args.max_shard_retries)
            result = run_sharded_sweep(
                spec, workers=args.workers, strategy=args.shard_strategy,
                world=landscape, checkpoint_path=args.checkpoint,
                resume=args.resume, supervise=supervise,
                progress=None if args.json else print,
                events_path=args.events, audit_dir=args.audit,
                store_path=store_path, incremental=args.incremental)
        except (ConfigurationError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report, metrics = result.report, result.metrics
        obs["registry"] = metrics  # /metrics now serves the merged view
        if not args.json:
            print(f"parallel: {args.workers} workers, "
                  f"{result.sum_shard_cpu_s:.2f}s shard CPU, "
                  f"critical-path speedup "
                  f"{result.critical_path_speedup:.2f}x")
            if result.respawns or result.hung_kills \
                    or result.poison_contracts:
                print(f"supervisor: {result.respawns} respawns, "
                      f"{result.hung_kills} hung kills, "
                      f"{result.poison_contracts} poison contracts "
                      f"quarantined")
    else:
        flame_profiler = None
        if args.flame:
            from repro.obs import FlameProfiler
            flame_profiler = FlameProfiler()

        events = None
        if args.events:
            from repro.obs.events import EventJournal, EventRecorder
            try:
                obs["journal"] = EventJournal.create(args.events)
            except OSError as error:
                print(f"error: cannot write --events journal: {error}",
                      file=sys.stderr)
                return 2
            events = EventRecorder(sinks=(obs["journal"],))

        node = landscape.node
        if args.rpc_endpoints > 1:
            from repro.chain.failover import build_failover_node
            # Failover carries its own retry/breaker machinery; --chaos
            # then strikes only the primary endpoint of the fleet.
            node = build_failover_node(node, args.rpc_endpoints,
                                       chaos=args.chaos,
                                       chaos_seed=args.chaos_seed,
                                       events=events)
            if not args.json:
                detail = (f" with fault plan {args.chaos!r} on the primary"
                          if args.chaos else "")
                print(f"failover: fronting the chain with "
                      f"{args.rpc_endpoints} RPC endpoints{detail}")
        elif args.chaos:
            from repro.chain.faults import build_chaos_stack
            # Injected latency and backoff are accounted virtually (no
            # real sleeps): the simulated node has nothing to wait for.
            node = build_chaos_stack(node, args.chaos, seed=args.chaos_seed,
                                     events=events)
            if not args.json:
                print(f"chaos: injecting fault plan {args.chaos!r} "
                      f"(seed={args.chaos_seed}) behind the resilient "
                      f"layer")

        store_binding = None
        if store_path is not None:
            from repro.errors import ConfigurationError
            from repro.store import attach_store
            try:
                store_binding = attach_store(store_path,
                                             incremental=args.incremental)
            except ConfigurationError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2

        proxion = Proxion(node, registry=landscape.registry,
                          dataset=landscape.dataset,
                          options=options, evm_profiler=flame_profiler,
                          events=events, audit=audit, store=store_binding)
        obs["registry"] = proxion.metrics
        if args.trace_jsonl:
            from repro.obs import JsonLinesSink
            proxion.tracer.add_sink(JsonLinesSink(args.trace_jsonl))

        checkpoint = None
        addresses = None
        if args.checkpoint:
            import os
            from repro.errors import ConfigurationError
            from repro.landscape.checkpoint import SweepCheckpoint
            addresses = landscape.dataset.addresses()
            try:
                if args.resume and os.path.exists(args.checkpoint):
                    checkpoint = SweepCheckpoint.resume(args.checkpoint,
                                                        addresses)
                    if not args.json:
                        print(f"resuming from {args.checkpoint}: "
                              f"{len(checkpoint.completed)} of "
                              f"{len(addresses)} addresses already done")
                else:
                    checkpoint = SweepCheckpoint.start(args.checkpoint,
                                                       addresses)
            except (ConfigurationError, OSError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2

        if events is not None:
            from repro.obs.events import SWEEP_END, SWEEP_START
            sweep_addresses = (addresses if addresses is not None
                               else landscape.dataset.addresses())
            events.emit(SWEEP_START, contracts=len(sweep_addresses),
                        workers=1, strategy="serial", chaos=args.chaos)
        try:
            report = proxion.analyze_all(addresses, checkpoint=checkpoint)
        finally:
            if checkpoint is not None:
                checkpoint.close()
            if store_binding is not None:
                store_binding.close()
        if events is not None:
            events.emit(SWEEP_END, analyses=len(report.analyses),
                        failures=len(report.failures))
        metrics = proxion.metrics

    if store_path is not None and not args.json:
        restored = metrics.snapshot()["counters"].get(
            "pipeline.store_restored_contracts", 0)
        suffix = (f" ({restored} contracts restored, not re-analyzed)"
                  if restored else "")
        print(f"store: sweep persisted to {store_path}{suffix} — inspect "
              f"with `repro store stats {store_path}`")

    if args.metrics_prom:
        from repro.obs import to_prometheus
        try:
            with open(args.metrics_prom, "w", encoding="utf-8") as stream:
                stream.write(to_prometheus(metrics))
        except OSError as error:
            print(f"error: cannot write --metrics-prom file: {error}",
                  file=sys.stderr)
            return 1
        if not args.json:
            print(f"Prometheus metrics written to {args.metrics_prom}")

    if args.flame:
        assert flame_profiler is not None
        try:
            flame_profiler.write_collapsed(args.flame,
                                           weight=args.flame_weight)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not args.json:
            print(f"collapsed flame stacks ({args.flame_weight}) written "
                  f"to {args.flame}")

    if args.json:
        from repro.landscape.serialize import report_to_dict
        import json as _json
        payload = report_to_dict(report)
        if args.metrics:
            payload["metrics"] = metrics.snapshot()
        print(_json.dumps(payload, indent=2))
        return 0

    proxies = report.proxies()
    print(f"\nanalyzed {len(report)} alive contracts "
          f"({report.emulation_failure_rate():.1%} emulation failures)")
    if report.failures:
        census = ", ".join(f"{cause}: {count}" for cause, count
                           in sorted(report.quarantine_census().items()))
        print(f"quarantined: {len(report.failures)} contracts ({census})")
    print(f"proxies: {len(proxies)} "
          f"({len(proxies) / max(len(report), 1):.1%}); "
          f"hidden: {len(report.hidden_proxies())}")
    print(f"collisions: {report.function_collision_pairs()} function / "
          f"{report.storage_collision_pairs()} storage pairs")

    print("\nstandards (Table 4):")
    for standard, (count, share) in table4_standards(report).items():
        print(f"  {standard:10s} {count:>6d}  {share:6.2%}")

    duplicates = figure5_duplicates(report, landscape.node)
    print(f"\nduplicates (Fig. 5): {duplicates.unique_proxies} unique proxy "
          f"bytecodes / {duplicates.total_proxies} proxies "
          f"(top-3: {duplicates.top_proxy_share(3):.1%})")

    collisions = table3_collisions_by_year(report)
    print(f"collision duplicate share (Table 3): "
          f"{collisions.duplicate_share:.1%}")
    upgrades = figure6_upgrades(report)
    print(f"never-upgraded proxies (Fig. 6): "
          f"{upgrades.never_upgraded_share:.1%}")

    if args.metrics:
        from repro.obs import survey_metrics_summary
        print()
        print(survey_metrics_summary(metrics))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """`repro store fsck|stats|vacuum PATH` — store maintenance."""
    import json as _json

    from repro.errors import ConfigurationError
    from repro.store import fsck, stats, vacuum

    try:
        if args.action == "fsck":
            report = fsck(args.path, repair=args.repair)
            if args.json:
                print(_json.dumps({
                    "path": report.path, "issues": report.issues,
                    "repaired": report.repaired, "fatal": report.fatal,
                    "ok": report.ok}, indent=2, sort_keys=True))
            elif report.clean:
                print(f"{args.path}: clean")
            else:
                for issue in report.issues:
                    fixed = " [repaired]" if issue in report.repaired else ""
                    print(f"{args.path}: {issue}{fixed}")
                if report.fatal:
                    print(f"{args.path}: unrecoverable — quarantine the "
                          f"file (sweeps do this automatically) or delete "
                          f"it and re-sweep", file=sys.stderr)
                elif report.issues and not args.repair and not report.ok:
                    print(f"{args.path}: rerun with --repair to fix",
                          file=sys.stderr)
            return 0 if report.ok else 1
        if args.action == "stats":
            payload = stats(args.path)
            if args.json:
                print(_json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(f"{payload['path']}: {payload['schema']}")
                for table, count in sorted(payload["tables"].items()):
                    print(f"  {table:18s} {count:>8d}")
                leverage = payload["dedup_leverage"]
                print(f"  unique codehashes  "
                      f"{payload['unique_code_hashes']:>8d}"
                      + (f"  ({leverage}x dedup leverage)"
                         if leverage else ""))
                print(f"  file bytes         {payload['file_bytes']:>8d}"
                      f"  (+{payload['wal_bytes']} WAL)")
            return 0
        payload = vacuum(args.path)
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"{args.path}: {payload['bytes_before']} -> "
                  f"{payload['bytes_after']} bytes "
                  f"({payload['bytes_reclaimed']} reclaimed)")
        return 0
    except (ConfigurationError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs.console import journal_snapshot, render_status

    try:
        status = journal_snapshot(args.journal)
    except (ConfigurationError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        from repro import api
        # The repro.query/1 envelope — the same bytes the serve daemon's
        # /progress endpoint returns for this journal.
        print(api.to_json(api.status_answer(status)))
    else:
        print(render_status(status))
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs.console import format_event, tail_journal

    try:
        for event in tail_journal(args.journal, follow=args.follow,
                                  poll_s=args.poll):
            print(format_event(event), flush=args.follow)
    except BrokenPipeError:
        # `repro tail ... | head` closing the pipe is a normal exit, but
        # Python would complain again flushing stdout at shutdown.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except (ConfigurationError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass  # ^C out of --follow is a normal way to stop watching
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro import api
    from repro.errors import ConfigurationError
    from repro.obs.provenance import AuditDir, EvidenceTrail, render_trail

    try:
        address = bytes.fromhex(args.address.removeprefix("0x"))
    except ValueError:
        print(f"error: {args.address!r} is not a hex address",
              file=sys.stderr)
        return 2
    if len(address) != 20:
        print(f"error: {args.address!r} is not a 20-byte address",
              file=sys.stderr)
        return 2
    if args.audit and args.store:
        print("error: --audit and --store are different sources — pass one",
              file=sys.stderr)
        return 2

    if args.store:
        # Store-backed point query: the same repro.query/1 ContractAnswer
        # the serve daemon returns from GET /v1/contract/ADDR — for the
        # same store state, --json is byte-identical to the HTTP body.
        return _explain_from_store(args, address)

    if args.audit:
        # Read-only: render what an audited sweep already persisted.
        try:
            trail = AuditDir(args.audit).read(address)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        source = api.SOURCE_AUDIT
    else:
        # No audit dir: record a fresh trail by re-analyzing the address
        # against the deterministic landscape named by --total/--seed.
        from repro.chain.profiles import get_profile
        from repro.core import Proxion, ProxionOptions
        from repro.corpus import generate_landscape

        if not args.json:
            print(f"no --audit DIR: re-analyzing 0x{address.hex()} on the "
                  f"{args.chain} landscape (total={args.total}, "
                  f"seed={args.seed})...", file=sys.stderr)
        landscape = generate_landscape(total=args.total, seed=args.seed,
                                       chain_profile=get_profile(args.chain))
        proxion = Proxion(landscape.node, registry=landscape.registry,
                          dataset=landscape.dataset,
                          options=ProxionOptions(
                              detect_diamonds=args.diamonds))
        trail = EvidenceTrail(address)
        try:
            proxion.analyze_contract(address, trail=trail)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        source = api.SOURCE_FRESH

    if args.json:
        print(api.to_json(api.evidence_answer(trail, source)))
    else:
        print(render_trail(trail))
    return 0


def _explain_from_store(args: argparse.Namespace, address: bytes) -> int:
    """``explain --store``: answer from the store, analyze on a miss."""
    from repro import api
    from repro.chain.profiles import get_profile
    from repro.core import Proxion, ProxionOptions
    from repro.corpus import generate_landscape
    from repro.errors import ConfigurationError
    from repro.store import attach_store

    try:
        binding = attach_store(args.store)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if binding is None:
        print(f"error: cannot open store {args.store!r}", file=sys.stderr)
        return 2
    try:
        answer = api.answer_from_store(binding.store, address)
        if answer is None:
            # Miss: analyze against the deterministic landscape and write
            # through, exactly what the serve daemon's miss path does —
            # trail-free on purpose, so the two stay byte-identical.
            if not args.json:
                print(f"store miss: analyzing 0x{address.hex()} on the "
                      f"{args.chain} landscape (total={args.total}, "
                      f"seed={args.seed})...", file=sys.stderr)
            landscape = generate_landscape(
                total=args.total, seed=args.seed,
                chain_profile=get_profile(args.chain))
            proxion = Proxion(landscape.node, registry=landscape.registry,
                              dataset=landscape.dataset,
                              options=ProxionOptions(
                                  detect_diamonds=args.diamonds),
                              store=binding)
            answer = api.fresh_answer(proxion, address)
    finally:
        binding.close()
    if args.json:
        print(api.to_json(answer))
    else:
        print(api.describe_answer(answer))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the long-running query daemon (docs/service.md)."""
    from repro.errors import ConfigurationError
    from repro.serve import ServeApp, ServeConfig

    if args.simulate and not args.follow:
        print("error: --simulate deploys through the chain follower — "
              "add --follow", file=sys.stderr)
        return 2
    config = ServeConfig(
        store_path=args.store, host=args.host, port=args.port,
        total=args.total, seed=args.seed, chain=args.chain,
        diamonds=args.diamonds, follow=args.follow,
        poll_interval_s=args.poll, simulate_deploys=args.simulate,
        rate_per_s=args.rate, burst=args.burst,
        slots=args.slots, queue_limit=args.queue_limit,
        queue_timeout_s=args.queue_timeout,
        journal_path=args.events, hung_after_s=args.shard_timeout,
        rpc_endpoints=args.rpc_endpoints)
    try:
        app = ServeApp(config)
    except (ConfigurationError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    app.start()
    following = (f", following the chain every {args.poll}s"
                 if args.follow else "")
    print(f"serve: {app.url} — /v1/contract/ADDR /v1/server /metrics "
          f"/healthz /progress (store={args.store}{following})",
          flush=True)
    print("serve: ^C or SIGTERM to stop", file=sys.stderr, flush=True)

    # Graceful drain: SIGTERM/SIGINT flip an event instead of killing the
    # process, so in-flight queries finish and the store closes cleanly
    # (docs/service.md).  Handlers only work on the main thread; under a
    # nested invocation (tests) fall back to the plain wait.
    import signal
    import threading
    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
    except ValueError:                  # not on the main thread
        pass
    try:
        stop.wait()                     # serve until signalled
    except KeyboardInterrupt:
        pass
    finally:
        print("serve: draining and shutting down", file=sys.stderr,
              flush=True)
        app.close()
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.corpus import build_accuracy_corpus
    from repro.landscape import table2
    from repro.obs import MetricsRegistry, SpanTracer, survey_metrics_summary

    registry = MetricsRegistry()
    tracer = SpanTracer(registry=registry)
    if args.trace_jsonl:
        from repro.obs import JsonLinesSink
        tracer.add_sink(JsonLinesSink(args.trace_jsonl))

    journal = None
    events = None
    if args.events:
        from repro.obs.events import EventJournal, EventRecorder
        try:
            journal = EventJournal.create(args.events)
        except OSError as error:
            print(f"error: cannot write --events journal: {error}",
                  file=sys.stderr)
            return 2
        events = EventRecorder(sinks=(journal,))

    try:
        print(f"building labelled corpus ({args.pairs} pairs per case)...")
        with tracer.span("build_corpus", pairs_per_case=args.pairs):
            corpus = build_accuracy_corpus(pairs_per_case=args.pairs,
                                           seed=args.seed)
        print(f"{len(corpus.pairs)} labelled pairs\n")
        if events is not None:
            from repro.obs.events import SWEEP_START
            events.emit(SWEEP_START, contracts=len(corpus.pairs), workers=1,
                        strategy="accuracy", chaos=None)
        for methodology in ("union", "all"):
            print(f"--- methodology: {methodology} ---")
            with tracer.span("table2", methodology=methodology):
                scored = table2(corpus, methodology=methodology)
            for collision_type, tools in scored.items():
                for tool, matrix in tools.items():
                    print(f"{collision_type:8s} {tool:8s} {matrix.row()}")
            print()
        if events is not None:
            from repro.obs.events import SWEEP_END
            events.emit(SWEEP_END, analyses=len(corpus.pairs), failures=0)
    finally:
        if journal is not None:
            journal.close()

    if args.metrics_prom:
        from repro.obs import to_prometheus
        try:
            with open(args.metrics_prom, "w", encoding="utf-8") as stream:
                stream.write(to_prometheus(registry))
        except OSError as error:
            print(f"error: cannot write --metrics-prom file: {error}",
                  file=sys.stderr)
            return 1
        print(f"Prometheus metrics written to {args.metrics_prom}")

    if args.metrics:
        print(survey_metrics_summary(registry))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench_summary
    from repro.obs.bench import (
        BenchConfig,
        WORKLOADS,
        compare_payloads,
        load_payload,
        run_suite,
        validate_payload,
        write_payload,
    )

    if args.list:
        for workload in WORKLOADS.values():
            marker = " " if workload.quick else "*"
            print(f"  {workload.name:20s}{marker} {workload.description}")
        print("  (* = full runs only, skipped by --quick)")
        return 0

    config = BenchConfig(
        quick=args.quick,
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
        only=tuple(args.workloads.split(",")) if args.workloads else None,
    )
    try:
        payload = run_suite(config,
                            progress=lambda line: print(line,
                                                        file=sys.stderr))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    problems = validate_payload(payload)
    if problems:
        print("error: produced an invalid payload:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2

    try:
        write_payload(payload, args.out)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(bench_summary(payload))
    print(f"\nresults written to {args.out}")

    if args.flame:
        from repro.core.pipeline import Proxion, ProxionOptions
        from repro.corpus.generator import generate_landscape
        from repro.obs import FlameProfiler

        profiler = FlameProfiler()
        world = generate_landscape(total=config.scale(50, 80),
                                   seed=config.seed)
        proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset,
                          options=ProxionOptions(profile_evm=True),
                          evm_profiler=profiler)
        proxion.analyze_all()
        try:
            profiler.write_collapsed(args.flame, weight=args.flame_weight)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"collapsed flame stacks ({args.flame_weight}) written to "
              f"{args.flame} — render with flamegraph.pl or speedscope")

    if args.compare:
        try:
            baseline = load_payload(args.compare)
        except FileNotFoundError:
            print(f"\nno baseline at {args.compare} — comparison skipped "
                  f"(gate passes)")
            return 0
        comparison = compare_payloads(baseline, payload)
        print()
        print(comparison.render())
        return comparison.exit_code
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib

    module_names = {
        "quickstart": "examples.quickstart",
        "honeypot": "examples.honeypot_hunt",
        "audius": "examples.audius_postmortem",
        "monitor": "examples.live_monitor",
        "forensics": "examples.archive_forensics",
        "multichain": "examples.multichain_survey",
    }
    # The examples live next to the repository root; import by path when the
    # package is installed elsewhere.
    import pathlib
    examples_dir = pathlib.Path(__file__).resolve().parents[2] / "examples"
    if examples_dir.is_dir() and str(examples_dir.parent) not in sys.path:
        sys.path.insert(0, str(examples_dir.parent))
    module = importlib.import_module(module_names[args.name])
    module.main()
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.evm.pretty import annotate

    if args.hex == "-":
        blob = sys.stdin.read().strip()
    else:
        blob = args.hex
    code = bytes.fromhex(blob.removeprefix("0x"))
    print(annotate(code))
    return 0


def _cmd_mine_selector(args: argparse.Namespace) -> int:
    from repro.core.selector_miner import mine_selector
    from repro.utils.abi import function_selector

    target = function_selector(args.prototype)
    print(f"target: 0x{target.hex()} ({args.prototype})")
    print(f"mining a {args.bits}-bit prefix collision "
          f"(max {args.max_attempts:,} attempts)...")
    result = mine_selector(target, prefix_bits=args.bits,
                           max_attempts=args.max_attempts)
    if result.found:
        mined = function_selector(result.prototype)
        print(f"found {result.prototype!r} → 0x{mined.hex()} after "
              f"{result.attempts:,} attempts in {result.seconds:.2f}s "
              f"({result.attempts_per_second:,.0f}/s)")
        return 0
    print(f"not found within {result.attempts:,} attempts "
          f"({result.attempts_per_second:,.0f}/s)")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProxioN reproduction — hidden-proxy and collision "
                    "analysis on a simulated Ethereum")
    commands = parser.add_subparsers(dest="command", required=True)

    survey = commands.add_parser("survey", help="landscape sweep (§7)")
    survey.add_argument("--total", type=int, default=400)
    survey.add_argument("--seed", type=int, default=42)
    survey.add_argument("--diamonds", action="store_true",
                        help="enable the §8.2 diamond extension")
    survey.add_argument("--chain", default="ethereum",
                        help="chain profile (ethereum/polygon/bsc/arbitrum)")
    survey.add_argument("--json", action="store_true",
                        help="emit the full sweep as JSON")
    survey.add_argument("--store", default=None, metavar="PATH",
                        help="durable repro.store/1 analysis store: dedup "
                             "facts and per-contract results are written "
                             "through during the sweep (docs/persistence.md)")
    survey.add_argument("--incremental", action="store_true",
                        help="with --store: restore every contract the "
                             "store already settles and analyze only the "
                             "delta; the merged report is byte-identical "
                             "to a from-scratch sweep")
    survey.add_argument("--db", default=None, metavar="PATH",
                        help="removed; use --store PATH")
    survey.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard the sweep across N worker processes "
                             "(default 1 = serial; docs/parallelism.md)")
    survey.add_argument("--shard-strategy", default="codehash",
                        choices=("roundrobin", "codehash"),
                        help="address partitioning for --workers > 1; "
                             "codehash (default) keeps clone families "
                             "together and merges byte-identically to the "
                             "serial sweep")
    add_observability_flags(survey)
    add_robustness_flags(survey)
    survey.set_defaults(func=_cmd_survey)

    serve = commands.add_parser(
        "serve", help="long-running analysis daemon with a query API "
                      "(docs/service.md)")
    serve.add_argument("--store", required=True, metavar="PATH",
                       help="repro.store/1 store to serve from (seed it "
                            "with `survey --store PATH` first)")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="listen port (default 0 = ephemeral)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default loopback)")
    serve.add_argument("--total", type=int, default=400,
                       help="landscape size behind fresh analyses (must "
                            "match the seeding sweep; default 400)")
    serve.add_argument("--seed", type=int, default=42,
                       help="landscape seed (must match the seeding sweep)")
    serve.add_argument("--chain", default="ethereum",
                       help="chain profile (must match the seeding sweep)")
    serve.add_argument("--diamonds", action="store_true",
                       help="enable the §8.2 diamond extension for fresh "
                            "analyses")
    serve.add_argument("--follow", action="store_true",
                       help="poll the chain for new deployments and write "
                            "their analyses through the store")
    serve.add_argument("--poll", type=float, default=0.25, metavar="SECONDS",
                       help="chain poll interval with --follow "
                            "(default 0.25)")
    serve.add_argument("--simulate", type=int, default=0, metavar="N",
                       help="with --follow: deploy N synthetic contract "
                            "pairs per poll (demo/smoke traffic)")
    serve.add_argument("--rpc-endpoints", type=int, default=1, metavar="N",
                       help="front the chain with N RPC backends behind "
                            "a failover node (default 1 = single "
                            "endpoint, docs/robustness.md)")
    serve.add_argument("--rate", type=float, default=200.0, metavar="QPS",
                       help="per-client token refill rate for /v1 routes "
                            "(default 200/s)")
    serve.add_argument("--burst", type=int, default=40, metavar="N",
                       help="per-client token bucket capacity (default 40)")
    serve.add_argument("--slots", type=int, default=8, metavar="N",
                       help="concurrently admitted /v1 requests "
                            "(default 8)")
    serve.add_argument("--queue-limit", type=int, default=32, metavar="N",
                       help="waiting requests beyond the slots before "
                            "shedding 503s (default 32)")
    serve.add_argument("--queue-timeout", type=float, default=2.0,
                       metavar="SECONDS",
                       help="longest a request may queue before a 503 "
                            "(default 2)")
    serve.add_argument("--events", default=None, metavar="FILE",
                       help="repro.events/1 journal to serve on /progress "
                            "and /healthz")
    serve.add_argument("--shard-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="/healthz heartbeat staleness threshold "
                            "(default 30)")
    serve.set_defaults(func=_cmd_serve)

    accuracy = commands.add_parser("accuracy", help="Table 2 scoring (§6.3)")
    accuracy.add_argument("--pairs", type=int, default=8)
    accuracy.add_argument("--seed", type=int, default=7)
    add_observability_flags(accuracy, only=("--metrics", "--metrics-prom",
                                            "--trace-jsonl", "--events"))
    accuracy.set_defaults(func=_cmd_accuracy)

    bench = commands.add_parser(
        "bench", help="continuous benchmarking (repro.obs.bench)")
    bench.add_argument("--quick", action="store_true",
                       help="reduced scales + 2 repeats (the CI profile)")
    bench.add_argument("--out", default="BENCH_proxion.json", metavar="FILE",
                       help="result payload target (default "
                            "BENCH_proxion.json)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff against a baseline payload; exit 1 on "
                            ">25%% median regression")
    add_observability_flags(bench, only=("--flame", "--flame-weight"))
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed repeats per workload (default: 2 quick / "
                            "5 full)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup iterations (default 1)")
    bench.add_argument("--seed", type=int, default=2024)
    bench.add_argument("--workloads", default=None, metavar="A,B,...",
                       help="comma-separated workload filter (see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list the registered workloads and exit")
    bench.set_defaults(func=_cmd_bench)

    store = commands.add_parser(
        "store", help="maintain a repro.store/1 analysis store")
    store.add_argument("action", choices=("fsck", "stats", "vacuum"),
                       help="fsck: integrity check (exit 1 on unrepaired "
                            "damage); stats: row counts and dedup "
                            "leverage; vacuum: WAL checkpoint + compact")
    store.add_argument("path", help="store file (survey --store PATH)")
    store.add_argument("--repair", action="store_true",
                       help="with fsck: drop garbled rows, resolve "
                            "instance-table overlaps, rebuild derived "
                            "tables")
    store.add_argument("--json", action="store_true",
                       help="machine-readable output")
    store.set_defaults(func=_cmd_store)

    status = commands.add_parser(
        "status", help="snapshot a sweep's flight-recorder journal")
    status.add_argument("journal",
                        help="repro.events/1 journal file "
                             "(written by survey --events)")
    status.add_argument("--json", action="store_true",
                        help="emit the snapshot as JSON (the /progress "
                             "payload)")
    status.set_defaults(func=_cmd_status)

    tail = commands.add_parser(
        "tail", help="stream a sweep's flight-recorder events")
    tail.add_argument("journal",
                      help="repro.events/1 journal file "
                           "(written by survey --events)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep watching for new events until the journal "
                           "records sweep.end (or ^C)")
    tail.add_argument("--poll", type=float, default=0.25, metavar="SECONDS",
                      help="poll interval while following (default 0.25)")
    tail.set_defaults(func=_cmd_tail)

    explain = commands.add_parser(
        "explain", help="render one contract's repro.evidence/1 trail")
    explain.add_argument("address", help="contract address (0x-hex)")
    explain.add_argument("--audit", default=None, metavar="DIR",
                         help="read the trail from an audit directory "
                              "written by `survey --audit DIR` (default: "
                              "record a fresh trail by re-analyzing the "
                              "address)")
    explain.add_argument("--store", default=None, metavar="PATH",
                         help="answer from a repro.store/1 store (analyze "
                              "and write through on a miss); with --json "
                              "the output is byte-identical to the serve "
                              "daemon's GET /v1/contract/ADDR")
    explain.add_argument("--json", action="store_true",
                         help="emit the repro.query/1 answer record "
                              "(evidence envelope, or a contract answer "
                              "with --store)")
    explain.add_argument("--total", type=int, default=400,
                         help="landscape size for a fresh analysis "
                              "(ignored with --audit)")
    explain.add_argument("--seed", type=int, default=42,
                         help="landscape seed for a fresh analysis "
                              "(ignored with --audit)")
    explain.add_argument("--chain", default="ethereum",
                         help="chain profile for a fresh analysis "
                              "(ignored with --audit)")
    explain.add_argument("--diamonds", action="store_true",
                         help="enable the §8.2 diamond extension for a "
                              "fresh analysis")
    explain.set_defaults(func=_cmd_explain)

    demo = commands.add_parser("demo", help="run a packaged scenario")
    demo.add_argument("name", choices=("quickstart", "honeypot", "audius",
                                       "monitor", "forensics", "multichain"))
    demo.set_defaults(func=_cmd_demo)

    disasm = commands.add_parser("disasm",
                                 help="annotated disassembly (Listing 3)")
    disasm.add_argument("hex", help="runtime bytecode as hex, or '-' for stdin")
    disasm.set_defaults(func=_cmd_disasm)

    miner = commands.add_parser("mine-selector",
                                help="selector-collision mining (§2.3)")
    miner.add_argument("prototype",
                       help='target prototype, e.g. "free_ether_withdrawal()"')
    miner.add_argument("--bits", type=int, default=12)
    miner.add_argument("--max-attempts", type=int, default=1_000_000)
    miner.set_defaults(func=_cmd_mine_selector)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
