"""The ProxioN exception hierarchy.

The §6 landscape study is an ~10⁹-RPC regime: rate limits, transient
node failures, restarts and runaway bytecode are *expected* events, not
exceptional ones.  Every error the reproduction raises on purpose derives
from :class:`ProxionError`, split along the axis the pipeline cares about:

* :class:`TransientRpcError` (and its refinements) — *retryable*; the
  resilient node wrapper (:mod:`repro.chain.resilient`) absorbs these with
  capped, jittered backoff;
* :class:`DeadlineExceeded` / :class:`CircuitOpen` — the retry machinery
  itself giving up; the pipeline quarantines the contract and keeps
  sweeping (:meth:`repro.core.pipeline.Proxion.analyze_all`);
* :class:`ConfigurationError` — caller misuse, never retried and never
  quarantined silently (it also subclasses :class:`ValueError` so legacy
  ``except ValueError`` call sites keep working).

:func:`classify_cause` maps any exception to the short cause label used by
quarantine records, the ``pipeline.quarantined{cause=...}`` counter, and
``LandscapeReport`` serialization.
"""

from __future__ import annotations


class ProxionError(Exception):
    """Base class of every deliberate ProxioN error."""


class ConfigurationError(ProxionError, ValueError):
    """API misuse / invalid arguments — a bug at the call site, not a fault.

    Subclasses :class:`ValueError` for backwards compatibility with callers
    (and tests) that predate the hierarchy.
    """


class RpcError(ProxionError):
    """An archive-node RPC failed.

    ``method`` is the JSON-RPC method name (``eth_getStorageAt``, ...);
    ``address`` the contract being queried, when one is in play.
    """

    def __init__(self, message: str, *, method: str | None = None,
                 address: bytes | None = None) -> None:
        super().__init__(message)
        self.method = method
        self.address = address


class TransientRpcError(RpcError):
    """A retryable RPC failure (connection reset, 5xx, flapping node).

    ``kind`` is a short taxonomy label (``connection`` / ``timeout`` /
    ``rate-limit`` / ``outage``) used by fault-injection accounting and by
    :func:`classify_cause`.
    """

    kind = "connection"

    def __init__(self, message: str, *, method: str | None = None,
                 address: bytes | None = None,
                 kind: str | None = None) -> None:
        super().__init__(message, method=method, address=address)
        if kind is not None:
            self.kind = kind


class RateLimitedError(TransientRpcError):
    """The node shed load (HTTP 429-shaped); retry after backing off."""

    kind = "rate-limit"

    def __init__(self, message: str, *, method: str | None = None,
                 address: bytes | None = None,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message, method=method, address=address)
        self.retry_after_s = retry_after_s


class RpcTimeout(TransientRpcError):
    """The call outlived its per-request timeout."""

    kind = "timeout"


class NodeOutageError(TransientRpcError):
    """The node is down (restart window / sustained outage)."""

    kind = "outage"


class DeadlineExceeded(RpcError):
    """The retry machinery exhausted its per-call budget.

    Raised by :class:`~repro.chain.resilient.ResilientNode` when either the
    attempt budget or the wall-clock deadline runs out; chains the last
    underlying transient error as ``__cause__``.
    """

    def __init__(self, message: str, *, method: str | None = None,
                 address: bytes | None = None, attempts: int = 0,
                 elapsed_s: float = 0.0) -> None:
        super().__init__(message, method=method, address=address)
        self.attempts = attempts
        self.elapsed_s = elapsed_s


class CircuitOpen(RpcError):
    """The per-method circuit breaker is open; the call was not attempted.

    ``retry_at`` is the breaker-clock instant at which the next half-open
    probe becomes admissible.
    """

    def __init__(self, message: str, *, method: str | None = None,
                 retry_at: float = 0.0) -> None:
        super().__init__(message, method=method)
        self.retry_at = retry_at


class WorkerCrash(ProxionError):
    """A sweep worker process died (or wedged) instead of returning.

    Raised *descriptively*, never across the process boundary: the sweep
    supervisor (:mod:`repro.parallel.supervisor`) constructs one when it
    observes a worker exit abnormally (``exitcode``), kills a hung worker
    (heartbeat older than the shard timeout), or bisects a poison shard
    down to the single contract that keeps sinking its worker.  The
    instance carries the forensic context the quarantine record needs:
    ``shard`` (the original shard index), ``exitcode`` (negative = killed
    by that signal), and ``hung`` (True when the supervisor killed the
    worker itself).
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 exitcode: int | None = None, hung: bool = False,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.exitcode = exitcode
        self.hung = hung
        self.attempts = attempts


def classify_cause(error: BaseException) -> str:
    """The short cause label a failure is quarantined under.

    Stable, low-cardinality strings: they label metrics series and appear
    in checkpoint files, so renames are schema changes.
    """
    if isinstance(error, WorkerCrash):
        return "worker-crash"
    if isinstance(error, CircuitOpen):
        return "circuit-open"
    if isinstance(error, DeadlineExceeded):
        return "deadline-exceeded"
    if isinstance(error, TransientRpcError):
        return f"transient-{error.kind}"
    if isinstance(error, RpcError):
        return "rpc"
    if isinstance(error, ConfigurationError):
        return "configuration"
    if isinstance(error, ProxionError):
        return "proxion"
    return type(error).__name__


__all__ = [
    "CircuitOpen",
    "ConfigurationError",
    "DeadlineExceeded",
    "NodeOutageError",
    "ProxionError",
    "RateLimitedError",
    "RpcError",
    "RpcTimeout",
    "TransientRpcError",
    "WorkerCrash",
    "classify_cause",
]
