"""ProxioN reproduction: uncovering hidden proxy contracts and their
collision vulnerabilities in a (simulated) Ethereum.

Quick start::

    from repro import generate_landscape, Proxion

    landscape = generate_landscape(total=500, seed=42)
    proxion = Proxion(landscape.node, registry=landscape.registry, dataset=landscape.dataset)
    report = proxion.analyze_all()
    print(len(report.proxies()), "proxies,",
          len(report.hidden_proxies()), "hidden")

Package map:

* :mod:`repro.utils` — Keccak-256, ABI codec, hex helpers
* :mod:`repro.evm` — from-scratch EVM (disassembler + interpreter + tracing)
* :mod:`repro.chain` — simulated blockchain, archive node, explorer, dataset
* :mod:`repro.lang` — mini contract language and solc-idiomatic compiler
* :mod:`repro.core` — the ProxioN analyzer (detection, logic recovery,
  function/storage collisions, batch pipeline)
* :mod:`repro.obs` — metrics registry, pipeline spans, EVM profiling,
  Prometheus/JSON exporters (see ``docs/observability.md``)
* :mod:`repro.baselines` — USCHunt, CRUSH, Slither, Etherscan, Salehi
* :mod:`repro.corpus` — paper-calibrated synthetic landscapes + ground truth
* :mod:`repro.landscape` — §6/§7 analytics (figures, tables, accuracy)
"""

from repro.chain import ArchiveNode, Blockchain, ContractDataset, SourceRegistry
from repro.core import (
    LandscapeReport,
    Proxion,
    ProxionOptions,
    ProxyCheck,
    ProxyDetector,
    ProxyStandard,
)
from repro.corpus import build_accuracy_corpus, generate_landscape
from repro.obs import NULL_REGISTRY, MetricsRegistry, SpanTracer

__version__ = "1.0.0"

__all__ = [
    "ArchiveNode",
    "Blockchain",
    "ContractDataset",
    "LandscapeReport",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Proxion",
    "ProxionOptions",
    "ProxyCheck",
    "ProxyDetector",
    "ProxyStandard",
    "SourceRegistry",
    "SpanTracer",
    "build_accuracy_corpus",
    "generate_landscape",
    "__version__",
]
