"""Simulated Ethereum: world state, blocks, archive node, explorer, dataset."""

from repro.chain.blockchain import (
    Block,
    Blockchain,
    Receipt,
    Transaction,
)
from repro.chain.api import NodeRPC
from repro.chain.dataset import ContractDataset, ContractRecord
from repro.chain.explorer import ContractSource, SourceRegistry, StorageVariableDecl
from repro.chain.faults import (
    CANNED_PLANS,
    FaultPlan,
    FaultRule,
    FaultyNode,
    build_chaos_stack,
    canned_plan,
)
from repro.chain.node import ApiCallCounter, ArchiveNode
from repro.chain.resilient import (
    BreakerConfig,
    CircuitBreaker,
    ResilientNode,
    RetryPolicy,
)
from repro.chain.profiles import (
    ARBITRUM,
    BSC,
    ETHEREUM,
    POLYGON,
    PRESETS,
    ChainProfile,
    get_profile,
)
from repro.chain.source_parser import parse_source_text, verify_from_text
from repro.chain.state import HistoricalStateView, WorldState

__all__ = [
    "ARBITRUM",
    "BSC",
    "ETHEREUM",
    "POLYGON",
    "PRESETS",
    "ApiCallCounter",
    "ArchiveNode",
    "Block",
    "Blockchain",
    "BreakerConfig",
    "CANNED_PLANS",
    "ChainProfile",
    "CircuitBreaker",
    "FaultPlan",
    "FaultRule",
    "FaultyNode",
    "NodeRPC",
    "ResilientNode",
    "RetryPolicy",
    "build_chaos_stack",
    "canned_plan",
    "get_profile",
    "ContractDataset",
    "ContractRecord",
    "ContractSource",
    "HistoricalStateView",
    "parse_source_text",
    "verify_from_text",
    "Receipt",
    "SourceRegistry",
    "StorageVariableDecl",
    "Transaction",
    "WorldState",
]
