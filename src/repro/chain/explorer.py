"""Etherscan-like source-code registry.

The paper's pipeline asks Etherscan for verified source (§5.1) and, for
efficiency, assigns a known source to every other contract sharing the same
runtime-bytecode hash (§7.1).  This registry reproduces both behaviours.

A :class:`ContractSource` is the uniform parsed form the paper's custom
Etherscan parser produces: the declared functions (canonical prototypes) and
the storage variable declarations in order — everything the source-based
collision detectors need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.keccak import keccak256


@dataclass(frozen=True)
class StorageVariableDecl:
    """One storage variable declaration, in declaration order."""

    name: str
    type_name: str
    is_constant: bool = False  # constants take no storage slot


@dataclass(frozen=True)
class ContractSource:
    """Parsed, uniform view of a verified contract source."""

    contract_name: str
    function_prototypes: tuple[str, ...] = ()
    storage_variables: tuple[StorageVariableDecl, ...] = ()
    text: str = ""
    compiler_version: str = "v0.8.21"

    @property
    def has_fallback_delegatecall(self) -> bool:
        """Source-level heuristic used by the Slither-like baseline."""
        lowered = self.text.lower()
        return "fallback" in lowered and "delegatecall" in lowered


class SourceRegistry:
    """Maps contract addresses to verified sources."""

    def __init__(self) -> None:
        self._by_address: dict[bytes, ContractSource] = {}
        self._by_code_hash: dict[bytes, ContractSource] = {}

    def verify(self, address: bytes, source: ContractSource,
               runtime_code: bytes | None = None) -> None:
        """Publish (verify) source for an address, optionally keyed by code."""
        self._by_address[address] = source
        if runtime_code is not None:
            self._by_code_hash[keccak256(runtime_code)] = source

    def get_source(self, address: bytes) -> ContractSource | None:
        return self._by_address.get(address)

    def has_source(self, address: bytes) -> bool:
        return address in self._by_address

    def get_source_by_code(self, runtime_code: bytes) -> ContractSource | None:
        """§7.1 optimization: source propagates across identical bytecode."""
        return self._by_code_hash.get(keccak256(runtime_code))

    def resolve(self, address: bytes,
                runtime_code: bytes | None = None) -> ContractSource | None:
        """Address lookup first, then bytecode-hash propagation."""
        source = self._by_address.get(address)
        if source is not None:
            return source
        if runtime_code:
            return self.get_source_by_code(runtime_code)
        return None

    def verified_addresses(self) -> list[bytes]:
        return list(self._by_address)

    def __len__(self) -> int:
        return len(self._by_address)
