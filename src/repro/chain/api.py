"""The formal node/analyzer API boundary: the :class:`NodeRPC` protocol.

Everything above :mod:`repro.chain` — the pipeline, the logic finder, the
monitor, the parallel sweep engine — consumes the chain through this one
structural interface instead of a concrete node class.  Three conformers
ship with the repository, layered like an onion:

* :class:`~repro.chain.node.ArchiveNode` — the ground-truth archive view;
* :class:`~repro.chain.faults.FaultyNode` — deterministic fault injection
  *around* any conformer (chaos testing);
* :class:`~repro.chain.resilient.ResilientNode` — retries, backoff and
  circuit breaking *around* any conformer (production hardening).

Because the protocol is structural (:class:`typing.Protocol`), wrappers
nest freely — ``ResilientNode(FaultyNode(ArchiveNode(chain)))`` is itself
a ``NodeRPC`` — and new backends (a real JSON-RPC client, a read-through
cache) only have to match the surface, not inherit from anything.  The
shared conformance suite in ``tests/chain/test_node_api.py`` checks every
declared conformer behaviorally, so the three classes cannot drift apart
the way three informally duplicated signatures can.

The protocol is ``@runtime_checkable``: ``isinstance(node, NodeRPC)``
verifies member *presence* (the conformance tests cover semantics), which
is how :class:`~repro.core.pipeline.Proxion` and the sweep engine validate
injected nodes without importing any concrete class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # imports only needed by type checkers, not at runtime
    from repro.chain.blockchain import Blockchain, Receipt
    from repro.evm.interpreter import CallResult
    from repro.evm.tracer import LogEvent
    from repro.obs.registry import MetricsRegistry


@runtime_checkable
class NodeRPC(Protocol):
    """Structural type of every archive-node implementation.

    The six core members mirror the JSON-RPC surface the paper's tool
    runs against (``eth_getCode``, ``eth_getStorageAt``, ``eth_call``,
    liveness, transaction counting) plus the ``metrics`` registry every
    node meters itself through; the remaining members are the archive
    extensions (history, logs, block metadata) the §5 logic recovery and
    the monitor rely on.
    """

    #: Every conformer meters its RPCs through a registry of this shape.
    metrics: "MetricsRegistry"

    # --------------------------------------------------------- core surface
    def get_code(self, address: bytes,
                 block_number: int | None = None) -> bytes:
        """``eth_getCode`` — runtime bytecode, optionally at a height."""
        ...

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        """``eth_getStorageAt`` — one storage word, optionally at a height."""
        ...

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None,
             **kwargs) -> "CallResult":
        """``eth_call`` — emulate a message call (no state commitment)."""
        ...

    def is_alive(self, address: bytes) -> bool:
        """Deployed and not self-destructed (the paper's §3.1 filter)."""
        ...

    def get_transaction_count(self, address: bytes) -> int:
        """``eth_getTransactionCount``-shaped: past transactions *to* it."""
        ...

    # --------------------------------------------------- archive extensions
    def get_balance(self, address: bytes) -> int:
        ...

    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None) -> list[tuple[int, "LogEvent"]]:
        ...

    def transactions_of(self, address: bytes) -> list["Receipt"]:
        ...

    def has_transactions(self, address: bytes) -> bool:
        ...

    def year_of(self, block_number: int) -> int:
        ...

    @property
    def chain(self) -> "Blockchain":
        """The underlying chain (emulator state + block contexts)."""
        ...

    @property
    def latest_block_number(self) -> int:
        ...

    @property
    def genesis_block_number(self) -> int:
        ...


#: The classes the repository declares (and tests) as conformers.
DECLARED_CONFORMERS = (
    "repro.chain.node.ArchiveNode",
    "repro.chain.resilient.ResilientNode",
    "repro.chain.faults.FaultyNode",
    "repro.chain.failover.FailoverNode",
)


__all__ = ["NodeRPC", "DECLARED_CONFORMERS"]
