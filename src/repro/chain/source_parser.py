"""Parsing verified source text into the uniform ContractSource form.

The paper: "To maintain a uniform format for the contract source code, we
have developed a parser that processes the source code provided by the
Etherscan APIs" (§5.1).  This is that parser for the Solidity subset the
repository's contracts are written in: it extracts the contract name, the
storage variable declarations (in order, with constancy), and canonical
function prototypes — everything the source-based detectors consume.

It is intentionally tolerant: unknown statements are skipped, comments are
stripped, and anything that fails produces a partial record rather than an
exception (verified mainnet source is wildly heterogeneous).
"""

from __future__ import annotations

import re

from repro.chain.explorer import ContractSource, StorageVariableDecl

_COMMENT_LINE_RE = re.compile(r"//[^\n]*")
_COMMENT_BLOCK_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_CONTRACT_RE = re.compile(r"\bcontract\s+(\w+)")
_TYPE = r"(?:mapping\s*\([^)]*\)|[A-Za-z_][A-Za-z0-9_]*)"
_VARIABLE_RE = re.compile(
    rf"^\s*({_TYPE})\s+((?:public|private|internal|constant|immutable)\s+)*"
    rf"(\w+)\s*(?:=[^;]+)?;",
    re.MULTILINE)
_FUNCTION_RE = re.compile(
    r"\bfunction\s+(\w+)\s*\(([^)]*)\)")
_KEYWORDS_NOT_TYPES = {
    "function", "constructor", "fallback", "receive", "emit", "return",
    "require", "revert", "assembly", "if", "else", "event", "modifier",
    "using", "pragma", "import", "contract", "interface", "library",
}


def _strip_comments(text: str) -> str:
    return _COMMENT_LINE_RE.sub("", _COMMENT_BLOCK_RE.sub("", text))


def _canonical_type(type_name: str) -> str:
    collapsed = re.sub(r"\s+", "", type_name)
    # Solidity aliases that affect selectors.
    if collapsed == "uint":
        return "uint256"
    if collapsed == "int":
        return "int256"
    return collapsed


def _parse_parameters(parameter_text: str) -> list[str]:
    types: list[str] = []
    for chunk in parameter_text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        # "type [location] [name]" — the first token is the type.
        tokens = chunk.split()
        types.append(_canonical_type(tokens[0]))
    return types


def parse_source_text(text: str,
                      compiler_version: str = "v0.8.21") -> ContractSource:
    """Parse Solidity-style text into a :class:`ContractSource`."""
    stripped = _strip_comments(text)

    contract_match = _CONTRACT_RE.search(stripped)
    contract_name = contract_match.group(1) if contract_match else "Unknown"

    prototypes: list[str] = []
    for name, parameters in _FUNCTION_RE.findall(stripped):
        prototypes.append(f"{name}({','.join(_parse_parameters(parameters))})")

    variables: list[StorageVariableDecl] = []
    # Only declarations before the first function/constructor body are
    # storage variables in our rendering; scan the contract header region.
    body_start = len(stripped)
    for marker in ("function ", "constructor", "fallback"):
        index = stripped.find(marker)
        if index != -1:
            body_start = min(body_start, index)
    header = stripped[:body_start]
    for type_name, qualifiers, variable_name in _VARIABLE_RE.findall(header):
        canonical = _canonical_type(type_name)
        if canonical in _KEYWORDS_NOT_TYPES:
            continue
        variables.append(StorageVariableDecl(
            name=variable_name,
            type_name=canonical,
            is_constant="constant" in (qualifiers or ""),
        ))

    return ContractSource(
        contract_name=contract_name,
        function_prototypes=tuple(prototypes),
        storage_variables=tuple(variables),
        text=text,
        compiler_version=compiler_version,
    )


def verify_from_text(registry, address: bytes, text: str,
                     runtime_code: bytes | None = None,
                     compiler_version: str = "v0.8.21") -> ContractSource:
    """Parse ``text`` and register it with a SourceRegistry in one step."""
    source = parse_source_text(text, compiler_version)
    registry.verify(address, source, runtime_code)
    return source
