"""Archive-node RPC facade.

ProxioN consumes the chain exclusively through this JSON-RPC-shaped surface
(``eth_getCode``, ``eth_getStorageAt`` at a block height, ``eth_call``), the
same way the paper runs against a locally established Ethereum archive node
(§7.1).  Every call is metered through the node's
:class:`~repro.obs.registry.MetricsRegistry` — a ``rpc.calls{method=...}``
counter plus a ``rpc.latency_seconds{method=...}`` histogram — which is how
the §6.1 result ("26 getStorageAt calls per proxy on average, versus
millions of blocks") is measured.  :class:`ApiCallCounter` survives as a
compatibility shim over those registry counters.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

from repro.chain.blockchain import Blockchain, Receipt
from repro.evm.interpreter import CallResult
from repro.evm.tracer import LogEvent
from repro.obs import provenance
from repro.obs.provenance import NULL_TRAIL, EvidenceTrail
from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.spans import clock


class ApiCallCounter:
    """Per-method RPC tallies — a compatibility view over the registry.

    Historically a standalone dict-of-counts; it is now backed by
    ``rpc.calls{method=...}`` counters in a :class:`MetricsRegistry`, so
    the legacy surface (``bump``/``get``/``total``/``reset``/``counts``)
    and the observability exporters always agree.  Constructing it without
    a registry gives it a private one, preserving standalone use.
    """

    __slots__ = ("registry", "_cache")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._cache: dict[str, Counter] = {}

    def _counter(self, method: str) -> Counter:
        counter = self._cache.get(method)
        if counter is None:
            counter = self.registry.counter("rpc.calls", method=method)
            self._cache[method] = counter
        return counter

    def bump(self, method: str) -> None:
        self._counter(method).inc()

    def get(self, method: str) -> int:
        return int(self._counter(method).value)

    def total(self) -> int:
        return int(self.registry.counter_total("rpc.calls"))

    def reset(self) -> None:
        for counter in self.registry.counters_named("rpc.calls").values():
            counter.value = 0

    @property
    def counts(self) -> dict[str, int]:
        """The legacy ``{method: count}`` dict (non-zero methods only)."""
        return {dict(labels).get("method", ""): int(counter.value)
                for labels, counter
                in self.registry.counters_named("rpc.calls").items()
                if counter.value}


class ArchiveNode:
    """Read-only archive view over a :class:`Blockchain`."""

    #: Default per-``eth_call`` instruction ceiling.  Pathological bytecode
    #: (unbounded loops, deep re-entrancy) must terminate as a recorded
    #: emulation failure instead of hanging a sweep; 2M instructions is far
    #: beyond any legitimate proxy dispatch.
    DEFAULT_CALL_INSTRUCTION_BUDGET = 2_000_000

    def __init__(self, chain: Blockchain,
                 metrics: MetricsRegistry | None = None,
                 call_instruction_budget: int | None = None) -> None:
        self._chain = chain
        # Per-node registry by default: sweeps stay isolated from each
        # other; pass an explicit registry (or NULL_REGISTRY) to share or
        # disable collection.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.api_calls = ApiCallCounter(self.metrics)
        self._latency: dict[str, Histogram] = {}
        self.call_instruction_budget = (
            call_instruction_budget if call_instruction_budget is not None
            else self.DEFAULT_CALL_INSTRUCTION_BUDGET)
        # Evidence attribution (repro.obs.provenance): while a trail is
        # attached via ``witness_reads``, every archive read is recorded
        # as an ``rpc.read`` observation.  NULL_TRAIL keeps the default
        # path at one ``enabled`` check per call.
        self._witness: EvidenceTrail = NULL_TRAIL

    @contextmanager
    def witness_reads(self, trail: EvidenceTrail):
        """Attribute every read inside the block to ``trail``."""
        previous = self._witness
        self._witness = trail
        try:
            yield
        finally:
            self._witness = previous

    def _observe(self, method: str, start: float) -> None:
        histogram = self._latency.get(method)
        if histogram is None:
            histogram = self.metrics.histogram("rpc.latency_seconds",
                                               method=method)
            self._latency[method] = histogram
        histogram.observe(clock() - start)

    @property
    def chain(self) -> Blockchain:
        """The underlying simulated chain (for emulator state access)."""
        return self._chain

    # ------------------------------------------------------------- chain info
    @property
    def latest_block_number(self) -> int:
        return self._chain.latest_block_number

    @property
    def genesis_block_number(self) -> int:
        return 0

    def year_of(self, block_number: int) -> int:
        return self._chain.year_of(block_number)

    # ----------------------------------------------------------------- reads
    def get_code(self, address: bytes, block_number: int | None = None) -> bytes:
        self.api_calls.bump("eth_getCode")
        start = clock()
        if block_number is None:
            code = self._chain.state.get_code(address)
        else:
            code = self._chain.state.get_code_at(address, block_number)
        self._observe("eth_getCode", start)
        if self._witness.enabled:
            self._witness.note(provenance.RPC_READ, method="eth_getCode",
                               address="0x" + address.hex(),
                               block=block_number, size=len(code))
        return code

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        self.api_calls.bump("eth_getStorageAt")
        start = clock()
        if block_number is None:
            word = self._chain.state.get_storage(address, slot)
        else:
            word = self._chain.state.get_storage_at(address, slot, block_number)
        self._observe("eth_getStorageAt", start)
        if self._witness.enabled:
            self._witness.note(provenance.RPC_READ,
                               method="eth_getStorageAt",
                               address="0x" + address.hex(),
                               slot=hex(slot), block=block_number,
                               value=hex(word))
        return word

    def get_balance(self, address: bytes) -> int:
        self.api_calls.bump("eth_getBalance")
        return self._chain.state.get_balance(address)

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None,
             max_instructions: int | None = None) -> CallResult:
        """eth_call — against current state, or a *historical* block.

        Historical calls run on an overlay over the archive's frozen view
        of that block (code and storage at height; balances are not
        archived and read as zero).

        Every call executes under an instruction ceiling
        (``max_instructions`` or the node's ``call_instruction_budget``):
        runaway bytecode terminates with an ``ExecutionTimeout`` result —
        recorded under ``rpc.emulation_failures{cause=...}`` — instead of
        stalling the sweep.
        """
        self.api_calls.bump("eth_call")
        start = clock()
        config = self._capped_config(max_instructions)
        if block_number is None:
            result = self._chain.call(to, data, sender=sender, config=config)
            self._record_call_outcome(result)
            self._observe("eth_call", start)
            return result
        from repro.evm.environment import TransactionContext
        from repro.evm.interpreter import EVM, Message
        from repro.evm.state import OverlayState

        view = self._chain.state.view_at(block_number)
        evm = EVM(
            OverlayState(view),
            block=self._chain.block_context(block_number),
            tx=TransactionContext(origin=sender),
            config=config,
        )
        result = evm.execute(Message(sender=sender, to=to, data=data))
        self._record_call_outcome(result)
        self._observe("eth_call", start)
        return result

    def _capped_config(self, max_instructions: int | None):
        """The chain's execution config with the call ceiling applied."""
        budget = (max_instructions if max_instructions is not None
                  else self.call_instruction_budget)
        config = self._chain.config
        if config.instruction_budget <= budget:
            return config
        return dataclasses.replace(config, instruction_budget=budget)

    def _record_call_outcome(self, result: CallResult) -> None:
        """§8.1-style cause accounting for failed ``eth_call`` executions.

        Reverts are clean negatives (the contract chose to reject); every
        other error — including a tripped instruction ceiling — counts as
        an emulation failure under its root cause.
        """
        if result.success or result.error is None or result.error == "revert":
            return
        cause = result.error.split(":", 1)[0].strip() or "unknown"
        self.metrics.counter("rpc.emulation_failures", method="eth_call",
                             cause=cause).inc()

    def is_alive(self, address: bytes) -> bool:
        """Alive = deployed and not self-destructed (the paper's §3.1 filter)."""
        return bool(self._chain.state.get_code(address))

    # ------------------------------------------------------------------ logs
    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None) -> list[tuple[int, "LogEvent"]]:
        """eth_getLogs: ``(block_number, event)`` pairs matching the filter."""
        self.api_calls.bump("eth_getLogs")
        start = clock()
        matches: list[tuple[int, LogEvent]] = []
        for block in self._chain.blocks:
            if from_block is not None and block.number < from_block:
                continue
            if to_block is not None and block.number > to_block:
                continue
            for receipt in block.receipts:
                for event in receipt.logs:
                    if address is not None and event.emitter != address:
                        continue
                    if topic is not None and (not event.topics
                                              or event.topics[0] != topic):
                        continue
                    matches.append((block.number, event))
        self._observe("eth_getLogs", start)
        return matches

    # ----------------------------------------------- transaction-history view
    def transactions_of(self, address: bytes) -> list[Receipt]:
        self.api_calls.bump("eth_getTransactionsByAddress")
        return self._chain.transactions_of(address)

    def has_transactions(self, address: bytes) -> bool:
        self.api_calls.bump("eth_getTransactionCountByAddress")
        return self._chain.has_transactions(address)

    def get_transaction_count(self, address: bytes) -> int:
        """Number of past transactions sent *to* ``address``."""
        self.api_calls.bump("eth_getTransactionCount")
        return len(self._chain.transactions_of(address))
