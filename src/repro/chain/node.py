"""Archive-node RPC facade.

ProxioN consumes the chain exclusively through this JSON-RPC-shaped surface
(``eth_getCode``, ``eth_getStorageAt`` at a block height, ``eth_call``), the
same way the paper runs against a locally established Ethereum archive node
(§7.1).  The facade also counts API calls, which is how the §6.1 result
("26 getStorageAt calls per proxy on average, versus millions of blocks")
is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain, Receipt
from repro.evm.interpreter import CallResult
from repro.evm.tracer import LogEvent


@dataclass(slots=True)
class ApiCallCounter:
    """Tallies RPC usage per method."""

    counts: dict[str, int] = field(default_factory=dict)

    def bump(self, method: str) -> None:
        self.counts[method] = self.counts.get(method, 0) + 1

    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> None:
        self.counts.clear()

    def get(self, method: str) -> int:
        return self.counts.get(method, 0)


class ArchiveNode:
    """Read-only archive view over a :class:`Blockchain`."""

    def __init__(self, chain: Blockchain) -> None:
        self._chain = chain
        self.api_calls = ApiCallCounter()

    @property
    def chain(self) -> Blockchain:
        """The underlying simulated chain (for emulator state access)."""
        return self._chain

    # ------------------------------------------------------------- chain info
    @property
    def latest_block_number(self) -> int:
        return self._chain.latest_block_number

    @property
    def genesis_block_number(self) -> int:
        return 0

    def year_of(self, block_number: int) -> int:
        return self._chain.year_of(block_number)

    # ----------------------------------------------------------------- reads
    def get_code(self, address: bytes, block_number: int | None = None) -> bytes:
        self.api_calls.bump("eth_getCode")
        if block_number is None:
            return self._chain.state.get_code(address)
        return self._chain.state.get_code_at(address, block_number)

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        self.api_calls.bump("eth_getStorageAt")
        if block_number is None:
            return self._chain.state.get_storage(address, slot)
        return self._chain.state.get_storage_at(address, slot, block_number)

    def get_balance(self, address: bytes) -> int:
        self.api_calls.bump("eth_getBalance")
        return self._chain.state.get_balance(address)

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None) -> CallResult:
        """eth_call — against current state, or a *historical* block.

        Historical calls run on an overlay over the archive's frozen view
        of that block (code and storage at height; balances are not
        archived and read as zero).
        """
        self.api_calls.bump("eth_call")
        if block_number is None:
            return self._chain.call(to, data, sender=sender)
        from repro.evm.environment import TransactionContext
        from repro.evm.interpreter import EVM, Message
        from repro.evm.state import OverlayState

        view = self._chain.state.view_at(block_number)
        evm = EVM(
            OverlayState(view),
            block=self._chain.block_context(block_number),
            tx=TransactionContext(origin=sender),
            config=self._chain.config,
        )
        return evm.execute(Message(sender=sender, to=to, data=data))

    def is_alive(self, address: bytes) -> bool:
        """Alive = deployed and not self-destructed (the paper's §3.1 filter)."""
        return bool(self._chain.state.get_code(address))

    # ------------------------------------------------------------------ logs
    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None) -> list[tuple[int, "LogEvent"]]:
        """eth_getLogs: ``(block_number, event)`` pairs matching the filter."""
        self.api_calls.bump("eth_getLogs")
        matches: list[tuple[int, LogEvent]] = []
        for block in self._chain.blocks:
            if from_block is not None and block.number < from_block:
                continue
            if to_block is not None and block.number > to_block:
                continue
            for receipt in block.receipts:
                for event in receipt.logs:
                    if address is not None and event.emitter != address:
                        continue
                    if topic is not None and (not event.topics
                                              or event.topics[0] != topic):
                        continue
                    matches.append((block.number, event))
        return matches

    # ----------------------------------------------- transaction-history view
    def transactions_of(self, address: bytes) -> list[Receipt]:
        self.api_calls.bump("eth_getTransactionsByAddress")
        return self._chain.transactions_of(address)

    def has_transactions(self, address: bytes) -> bool:
        self.api_calls.bump("eth_getTransactionCountByAddress")
        return self._chain.has_transactions(address)
