"""Deterministic fault injection at the archive-node boundary.

Real §6-scale sweeps (~10⁹ RPCs) run against nodes that rate-limit, drop
connections, restart, and stall; the simulated chain never does.  This
module closes that gap with a seeded :class:`FaultPlan` — a schedule of
transient errors, rate-limit responses, injected latency/timeouts, and
flapping or sustained outages, filterable per RPC method and per contract
address — and a :class:`FaultyNode` wrapper that implements the complete
:class:`~repro.chain.node.ArchiveNode` surface, so nothing downstream can
tell it from a healthy node.

Determinism is the load-bearing property: whether a given *request* is
fault-stricken is decided by hashing ``(seed, rule, method, request
signature)``, never by shared mutable RNG state, so a sweep under a plan is
reproducible call-for-call — including across checkpoint/resume, where the
resumed process replays a different call sequence.  Transient faults are
*attempt-scoped*: a stricken request fails its first ``fail_attempts``
tries and then succeeds, which is exactly the contract retry loops need for
the chaos-equivalence guarantee (see ``docs/robustness.md``).  Outages are
*schedule-scoped* (windows over the per-method call counter) and fail every
attempt inside the window, which is how sustained outages defeat retries
and exercise the quarantine path.

Injected faults are observable as ``faults.injected{kind=...,method=...}``
counters and a ``faults.injected_latency_seconds`` counter in the node's
metrics registry.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    NodeOutageError,
    RateLimitedError,
    RpcTimeout,
    TransientRpcError,
)

#: Fault taxonomy — the ``kind`` field of a :class:`FaultRule`.
TRANSIENT = "transient"        # connection-reset-shaped, retryable
RATE_LIMIT = "rate-limit"      # 429-shaped, retryable after backoff
TIMEOUT = "timeout"            # stalls for ``latency_s`` then fails
LATENCY = "latency"            # succeeds, but ``latency_s`` slower
OUTAGE = "outage"              # every attempt fails while the window is on
CRASH = "crash"                # os._exit: the whole worker process dies
HANG = "hang"                  # wedges the process (real sleep, no error)
REORG = "reorg"                # forks the chain: top-``depth`` blocks orphaned

FAULT_KINDS = (TRANSIENT, RATE_LIMIT, TIMEOUT, LATENCY, OUTAGE, CRASH, HANG,
               REORG)

#: Exit code of a :data:`CRASH`-stricken process (BSD ``EX_SOFTWARE``) —
#: what the sweep supervisor sees in ``Process.exitcode``.
WORKER_CRASH_EXITCODE = 70


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One line of a fault schedule.

    ``probability`` selects the share of matching *request signatures*
    (method + arguments) the rule strikes — decided deterministically from
    the plan seed.  A stricken request fails its first ``fail_attempts``
    attempts (transient kinds) unless the rule is an ``OUTAGE``, which
    instead fails every attempt while its schedule is active: a sustained
    outage covers ``window=(start, end)`` of the per-method call counter; a
    flapping one is down for ``outage_width`` calls out of every
    ``outage_period``.

    ``CRASH`` and ``HANG`` are the *process-level* kinds the sweep
    supervisor exists for — they do not raise, they take the whole worker
    down (``os._exit``) or wedge it (a real sleep no retry loop can
    interrupt).  Scoped two ways: with a ``window`` they fire when the
    per-method call counter enters it — the transient OOM-kill model,
    which a respawned worker (resuming past the completed prefix, hence
    never re-reaching that call index) survives; with a ``probability``
    they stick to the struck request *signatures* on every attempt — the
    poison-contract model, which only shard bisection and quarantine can
    absorb.  ``latency_s`` bounds a hang's duration (0 = wedged forever,
    until the supervisor kills the worker).
    """

    kind: str
    methods: tuple[str, ...] | None = None      # None = every method
    addresses: tuple[bytes, ...] | None = None  # None = every address
    probability: float = 1.0
    fail_attempts: int = 1
    latency_s: float = 0.0
    window: tuple[int, int] | None = None       # [start, end) call indices
    outage_period: int = 0                      # flapping cycle length
    outage_width: int = 0                       # down-calls per cycle
    depth: int = 1                              # blocks a REORG orphans

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}; "
                                     f"known: {FAULT_KINDS}")

    def matches(self, method: str, address: bytes | None) -> bool:
        if self.methods is not None and method not in self.methods:
            return False
        if self.addresses is not None:
            if address is None or address not in self.addresses:
                return False
        return True

    def outage_active(self, call_index: int) -> bool:
        """Whether an OUTAGE rule is down at this per-method call index."""
        if self.window is not None:
            start, end = self.window
            if not start <= call_index < end:
                return False
            if self.outage_period <= 0:
                return True          # sustained outage over the window
        elif self.outage_period <= 0:
            return True              # no schedule at all: always down
        if self.outage_period > 0:
            return call_index % self.outage_period < self.outage_width
        return False


def _strike(seed: int, rule_index: int, method: str, signature: bytes,
            probability: float) -> bool:
    """Deterministic per-request coin flip, independent of call order."""
    if probability >= 1.0:
        return True
    if probability <= 0.0:
        return False
    digest = hashlib.sha256(
        b"%d|%d|%s|" % (seed, rule_index, method.encode()) + signature
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64) < probability


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """What the plan injects for one attempt of one request."""

    kind: str
    rule_index: int
    latency_s: float = 0.0
    raises: type[TransientRpcError] | None = None
    message: str = ""
    depth: int = 0               # REORG only: blocks to orphan


_EXCEPTION_FOR = {
    TRANSIENT: TransientRpcError,
    RATE_LIMIT: RateLimitedError,
    TIMEOUT: RpcTimeout,
    OUTAGE: NodeOutageError,
}


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    The plan itself is stateless with respect to the sweep: all per-call
    state (method call counters, per-request attempt counters) lives in the
    :class:`FaultyNode` consulting it, so one plan can drive many nodes.
    """

    def __init__(self, rules: tuple[FaultRule, ...] | list[FaultRule] = (),
                 seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = seed

    def decide(self, method: str, address: bytes | None, signature: bytes,
               attempt: int, call_index: int) -> list[FaultDecision]:
        """Every fault to inject for this attempt, in rule order.

        At most one *raising* decision is returned (the first to fire);
        latency decisions accumulate before it.
        """
        decisions: list[FaultDecision] = []
        for index, rule in enumerate(self.rules):
            if not rule.matches(method, address):
                continue
            if rule.kind in (CRASH, HANG):
                if rule.window is not None:
                    start, end = rule.window
                    if not start <= call_index < end:
                        continue
                elif not _strike(self.seed, index, method, signature,
                                 rule.probability):
                    continue
                # Process-level faults fire on *every* attempt of a struck
                # request — a retry loop cannot talk a dead process back.
                decisions.append(FaultDecision(
                    kind=rule.kind, rule_index=index,
                    latency_s=rule.latency_s,
                    message=f"injected {rule.kind} on {method} "
                            f"(call #{call_index})"))
                break
            if rule.kind == REORG:
                # Chain-level, not request-level: the struck request still
                # succeeds, but the chain underneath it reorganizes first.
                # Window-scoped (a scheduled one-shot fork) or
                # probability-scoped (struck signatures fork once each —
                # the FaultyNode dedupes re-fires across attempts).
                if rule.window is not None:
                    start, end = rule.window
                    if not start <= call_index < end:
                        continue
                elif not _strike(self.seed, index, method, signature,
                                 rule.probability):
                    continue
                decisions.append(FaultDecision(
                    kind=REORG, rule_index=index, depth=rule.depth,
                    message=f"injected depth-{rule.depth} reorg on {method} "
                            f"(call #{call_index})"))
                continue
            if rule.kind == OUTAGE:
                if rule.outage_active(call_index):
                    decisions.append(FaultDecision(
                        kind=OUTAGE, rule_index=index,
                        latency_s=rule.latency_s,
                        raises=NodeOutageError,
                        message=f"injected outage on {method} "
                                f"(call #{call_index})"))
                    break
                continue
            if not _strike(self.seed, index, method, signature,
                           rule.probability):
                continue
            if rule.kind == LATENCY:
                decisions.append(FaultDecision(
                    kind=LATENCY, rule_index=index, latency_s=rule.latency_s))
                continue
            if attempt < rule.fail_attempts:
                decisions.append(FaultDecision(
                    kind=rule.kind, rule_index=index,
                    latency_s=rule.latency_s,
                    raises=_EXCEPTION_FOR[rule.kind],
                    message=f"injected {rule.kind} fault on {method} "
                            f"(attempt {attempt + 1}/{rule.fail_attempts})"))
                break
        return decisions


class FaultyNode:
    """An archive node that misbehaves exactly as its plan dictates.

    Wraps any object with the :class:`~repro.chain.node.ArchiveNode`
    surface.  ``sleep`` receives every injected latency; the default
    ``None`` only *accounts* the latency (metrics + ``injected_latency_s``)
    without stalling, keeping chaos tests fast while real deployments can
    pass ``time.sleep``.
    """

    def __init__(self, node, plan: FaultPlan, sleep=None) -> None:
        self._node = node
        self.plan = plan
        self._sleep = sleep
        self.metrics = node.metrics
        self.injected_latency_s = 0.0
        self._method_calls: dict[str, int] = {}
        self._attempts: dict[bytes, int] = {}
        self._fired_reorgs: set[tuple[int, bytes]] = set()
        self._latency_counter = self.metrics.counter(
            "faults.injected_latency_seconds")

    # ------------------------------------------------------------ passthrough
    @property
    def chain(self):
        return self._node.chain

    @property
    def api_calls(self):
        return self._node.api_calls

    @property
    def latest_block_number(self) -> int:
        return self._node.latest_block_number

    @property
    def genesis_block_number(self) -> int:
        return self._node.genesis_block_number

    def year_of(self, block_number: int) -> int:
        return self._node.year_of(block_number)

    def witness_reads(self, trail):
        """Evidence attribution passes through to the wrapped node."""
        return self._node.witness_reads(trail)

    # -------------------------------------------------------------- injection
    def injected_counts(self) -> dict[str, int]:
        """Total injections by kind, from the metrics registry."""
        return {dict(labels).get("kind", ""): int(counter.value)
                for labels, counter
                in self.metrics.counters_named("faults.injected").items()
                if counter.value}

    def _gate(self, method: str, address: bytes | None,
              signature: bytes) -> None:
        call_index = self._method_calls.get(method, 0)
        self._method_calls[method] = call_index + 1
        key = hashlib.sha256(method.encode() + b"|" + signature).digest()
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        for decision in self.plan.decide(method, address, signature,
                                         attempt, call_index):
            self.metrics.counter("faults.injected", kind=decision.kind,
                                 method=method).inc()
            if decision.kind == CRASH:
                # The OOM-kill model: no exception, no unwinding, no
                # flushing — the process is simply gone mid-contract.
                os._exit(WORKER_CRASH_EXITCODE)
            if decision.kind == HANG:
                self._wedge(decision.latency_s)
                continue
            if decision.kind == REORG:
                # Fork once per struck rule+signature: retries of the same
                # request must not cascade into repeated reorganizations.
                mark = (decision.rule_index, key)
                if mark not in self._fired_reorgs:
                    self._fired_reorgs.add(mark)
                    self._node.chain.fork(decision.depth)
                continue
            if decision.latency_s:
                self.injected_latency_s += decision.latency_s
                self._latency_counter.inc(decision.latency_s)
                if self._sleep is not None:
                    self._sleep(decision.latency_s)
            if decision.raises is not None:
                raise decision.raises(decision.message, method=method,
                                      address=address)

    @staticmethod
    def _wedge(hang_s: float) -> None:
        """Really stall the process (``HANG``) — deliberately *not* the
        injectable ``sleep``: a wedged worker is indistinguishable from a
        stuck RPC precisely because nothing virtual-clocks it away.  The
        supervisor's heartbeat timeout is the only way out when
        ``hang_s`` is 0 (wedged forever)."""
        deadline = time.monotonic() + hang_s if hang_s > 0 else None
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.05)

    @staticmethod
    def _sig(*parts) -> bytes:
        rendered = []
        for part in parts:
            if part is None:
                rendered.append(b"~")
            elif isinstance(part, bytes):
                rendered.append(part)
            else:
                rendered.append(str(part).encode())
        return b"|".join(rendered)

    # ----------------------------------------------------------------- reads
    def get_code(self, address: bytes, block_number: int | None = None) -> bytes:
        self._gate("eth_getCode", address, self._sig(address, block_number))
        return self._node.get_code(address, block_number)

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        self._gate("eth_getStorageAt", address,
                   self._sig(address, slot, block_number))
        return self._node.get_storage_at(address, slot, block_number)

    def get_balance(self, address: bytes) -> int:
        self._gate("eth_getBalance", address, self._sig(address))
        return self._node.get_balance(address)

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None, **kwargs):
        self._gate("eth_call", to, self._sig(to, data, sender, block_number))
        return self._node.call(to, data, sender=sender,
                               block_number=block_number, **kwargs)

    def is_alive(self, address: bytes) -> bool:
        self._gate("eth_getCode", address, self._sig(address, "alive"))
        return self._node.is_alive(address)

    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None):
        self._gate("eth_getLogs", address,
                   self._sig(address, topic, from_block, to_block))
        return self._node.get_logs(address, topic, from_block, to_block)

    def transactions_of(self, address: bytes):
        self._gate("eth_getTransactionsByAddress", address, self._sig(address))
        return self._node.transactions_of(address)

    def has_transactions(self, address: bytes) -> bool:
        self._gate("eth_getTransactionCountByAddress", address,
                   self._sig(address))
        return self._node.has_transactions(address)

    def get_transaction_count(self, address: bytes) -> int:
        self._gate("eth_getTransactionCount", address, self._sig(address))
        return self._node.get_transaction_count(address)


# ------------------------------------------------------------- canned plans
def canned_plan(name: str, seed: int = 0) -> FaultPlan:
    """The named plans used by ``survey --chaos``, CI, and the bench suite.

    * ``transient`` — 35 % of requests fail twice with connection errors,
      10 % are rate-limited once: fully absorbed by retries.
    * ``rate-limit`` — heavy 429 pressure (60 % of requests, two refusals).
    * ``latency`` — half of all requests gain 5 ms of injected latency.
    * ``flaky`` — transient + rate-limit + latency mixed together.
    * ``outage`` — a *sustained* storage/code outage from call #20 on:
      retries cannot save it, the sweep must quarantine and keep going.
    * ``flapping`` — the node is down 3 calls out of every 40.

    The ``worker-*`` plans are process-level chaos for supervised
    parallel sweeps (they take the calling process down — run them behind
    ``survey --workers N``, never serially):

    * ``worker-crash`` — the worker ``os._exit``\\ s at ``eth_getCode``
      call #15: every busy shard dies once mid-shard, and the respawned
      worker (resuming past the completed prefix) finishes clean.
    * ``worker-poison`` — 2 % of ``eth_getCode`` request signatures crash
      the worker on *every* attempt: only bisection down to the poison
      contract and a ``worker-crash`` quarantine absorb it.
    * ``worker-hang`` — 2 % of signatures wedge the worker forever; the
      supervisor's heartbeat timeout must kill and bisect.
    * ``worker-chaos`` — one mid-shard crash *and* sticky 1 % hangs: the
      combined kill-one-wedge-another acceptance scenario.

    ``chain-reorg`` is chain-level chaos: a scheduled one-shot depth-3
    reorganization at ``eth_getCode`` call #25 — the top three block
    records are orphaned mid-sweep.  Requests keep succeeding; what
    changes is the branch underneath them, which is exactly what the
    reorg-aware monitor and the zero-lost-contracts sweep accounting
    must absorb.
    """
    plans: dict[str, tuple[FaultRule, ...]] = {
        "transient": (
            FaultRule(TRANSIENT, probability=0.35, fail_attempts=2),
            FaultRule(RATE_LIMIT, probability=0.10, fail_attempts=1),
        ),
        "rate-limit": (
            FaultRule(RATE_LIMIT, probability=0.60, fail_attempts=2),
        ),
        "latency": (
            FaultRule(LATENCY, probability=0.50, latency_s=0.005),
        ),
        "flaky": (
            FaultRule(TRANSIENT, probability=0.25, fail_attempts=2),
            FaultRule(RATE_LIMIT, probability=0.15, fail_attempts=1),
            FaultRule(LATENCY, probability=0.30, latency_s=0.002),
        ),
        "outage": (
            FaultRule(OUTAGE,
                      methods=("eth_getStorageAt", "eth_getCode"),
                      window=(20, 1 << 62)),
        ),
        "flapping": (
            FaultRule(OUTAGE, outage_period=40, outage_width=3),
        ),
        "worker-crash": (
            FaultRule(CRASH, methods=("eth_getCode",), window=(15, 16)),
        ),
        "worker-poison": (
            FaultRule(CRASH, methods=("eth_getCode",), probability=0.02),
        ),
        "worker-hang": (
            FaultRule(HANG, methods=("eth_getCode",), probability=0.02),
        ),
        "worker-chaos": (
            FaultRule(CRASH, methods=("eth_getCode",), window=(15, 16)),
            FaultRule(HANG, methods=("eth_getCode",), probability=0.01),
        ),
        "chain-reorg": (
            FaultRule(REORG, methods=("eth_getCode",), window=(25, 26),
                      depth=3),
        ),
    }
    try:
        rules = plans[name]
    except KeyError:
        raise ConfigurationError(f"unknown canned fault plan {name!r}; "
                                 f"known: {sorted(plans)}") from None
    return FaultPlan(rules, seed=seed)


#: Names accepted by :func:`canned_plan` (the CLI ``--chaos`` choices).
CANNED_PLANS = ("transient", "rate-limit", "latency", "flaky", "outage",
                "flapping", "worker-crash", "worker-poison", "worker-hang",
                "worker-chaos", "chain-reorg")


def build_chaos_stack(node, plan: str, seed: int = 1337, events=None):
    """The canonical chaos sandwich: ``ResilientNode(FaultyNode(node))``.

    One shared rebuild hook for everything that wires a canned fault plan
    between a sweep and its node — the CLI, the bench suite, and each
    worker of a sharded sweep (which must reconstruct the stack from a
    pickle-able spec inside its own process).  Injected latency and
    backoff are accounted virtually (``sleep=None``): the simulated node
    has nothing to actually wait for.  ``events`` (an
    :class:`~repro.obs.events.EventRecorder`) is handed to the resilient
    layer so breaker transitions and retry exhaustion land in the flight
    recorder.
    """
    from repro.chain.resilient import ResilientNode

    return ResilientNode(FaultyNode(node, canned_plan(plan, seed=seed)),
                         seed=seed, sleep=None, events=events)


__all__ = [
    "CANNED_PLANS",
    "CRASH",
    "HANG",
    "WORKER_CRASH_EXITCODE",
    "build_chaos_stack",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "FaultyNode",
    "LATENCY",
    "OUTAGE",
    "RATE_LIMIT",
    "REORG",
    "TIMEOUT",
    "TRANSIENT",
    "canned_plan",
]
