"""Multi-endpoint RPC failover: one logical node over N backends.

A production sweep or serve daemon never talks to exactly one archive
node — it fronts a *fleet* of RPC endpoints with different reliability.
:class:`FailoverNode` implements the :class:`~repro.chain.api.NodeRPC`
protocol over N backends that answer for the same logical chain:

* **sticky primary** — all traffic goes to one endpoint until it proves
  unhealthy; there is no per-request load balancing to keep request
  ordering (and therefore chaos determinism) intact;
* **per-endpoint, per-method circuit breakers + retries** — reusing the
  :class:`~repro.chain.resilient.CircuitBreaker` /
  :class:`~repro.chain.resilient.RetryPolicy` machinery, with metrics
  labeled by endpoint (``resilience.*{method=...,endpoint=N}``);
* **probation after exhaustion** — an endpoint that exhausts its retry
  budget (or trips its breaker) is benched for ``probation_s`` seconds;
  the healthiest non-benched endpoint becomes the new primary.  Each
  switch ticks ``chain.failover_switches`` and lands in the flight
  recorder as an ``endpoint.failover`` event;
* **health scoring** — per-endpoint success ratios, exported as
  ``chain.endpoint_health{endpoint=N}`` gauges and readable via
  :meth:`FailoverNode.endpoint_health`.

A call fails only when *every* endpoint has been tried and refused — a
single healthy backend is enough to keep a sweep losing zero contracts
through a primary outage (the ``reorg-smoke`` gate's failover leg).
"""

from __future__ import annotations

import random
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpen,
    ConfigurationError,
    DeadlineExceeded,
    TransientRpcError,
)
from repro.obs import events as events_module
from repro.obs.events import NULL_RECORDER
from repro.obs.spans import clock
from repro.chain.resilient import (
    _STATE_VALUE,
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
)

#: How long a demoted endpoint sits on the bench before it may be
#: selected again (it is only *selected* again when every better-scored
#: endpoint is also benched or demoted — the primary stays sticky).
DEFAULT_PROBATION_S = 5.0


@dataclass(slots=True)
class EndpointHealth:
    """One backend's running score, as the failover layer sees it."""

    successes: int = 0
    failures: int = 0
    probation_until: float = field(default=0.0)

    @property
    def score(self) -> float:
        """Success ratio in [0, 1]; optimistic before any evidence."""
        total = self.successes + self.failures
        if total == 0:
            return 1.0
        return self.successes / total

    def on_probation(self, now: float) -> bool:
        return now < self.probation_until


class FailoverNode:
    """A :class:`~repro.chain.api.NodeRPC` conformer over N backends.

    All backends must answer for the same logical chain (``chain`` and
    the block clock are read through the first backend).  ``sleep``
    follows the :class:`~repro.chain.resilient.ResilientNode` convention:
    ``None`` accounts backoff virtually (no stall — the simulated chain
    has nothing to wait for) while ``time.sleep`` really waits.
    """

    def __init__(self, backends, *,
                 policy: RetryPolicy | None = None,
                 breaker: BreakerConfig | None = None,
                 seed: int = 0, sleep=None,
                 metrics=None, events=None,
                 probation_s: float = DEFAULT_PROBATION_S) -> None:
        backends = list(backends)
        if not backends:
            raise ConfigurationError(
                "FailoverNode needs at least one backend endpoint")
        self._backends = backends
        self.policy = policy or RetryPolicy()
        self.breaker_config = breaker or BreakerConfig()
        self.metrics = metrics if metrics is not None else backends[0].metrics
        self.events = events if events is not None else NULL_RECORDER
        self.probation_s = probation_s
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._virtual_elapsed = 0.0
        self._primary = 0
        self._breakers: dict[tuple[int, str], CircuitBreaker] = {}
        self.health = [EndpointHealth() for _ in backends]
        self._switches = self.metrics.counter("chain.failover_switches")
        self._health_gauges = [
            self.metrics.gauge("chain.endpoint_health", endpoint=str(index))
            for index in range(len(backends))]
        for gauge in self._health_gauges:
            gauge.set(1.0)

    # ------------------------------------------------------------ passthrough
    @property
    def chain(self):
        return self._backends[0].chain

    @property
    def api_calls(self):
        return self._backends[0].api_calls

    @property
    def latest_block_number(self) -> int:
        return self._backends[0].latest_block_number

    @property
    def genesis_block_number(self) -> int:
        return self._backends[0].genesis_block_number

    def year_of(self, block_number: int) -> int:
        return self._backends[0].year_of(block_number)

    @contextmanager
    def witness_reads(self, trail):
        """Attach the evidence trail to *every* backend: reads reach the
        archive through whichever endpoint is primary at that instant,
        and an audited sweep must capture them all."""
        with ExitStack() as stack:
            for backend in self._backends:
                witness = getattr(backend, "witness_reads", None)
                if witness is not None:
                    stack.enter_context(witness(trail))
            yield trail

    # ------------------------------------------------------------- selection
    @property
    def endpoints(self) -> int:
        return len(self._backends)

    @property
    def primary(self) -> int:
        """Index of the endpoint currently taking traffic."""
        return self._primary

    def endpoint_health(self) -> list[float]:
        """Per-endpoint success ratios, by backend index."""
        return [health.score for health in self.health]

    def _now(self) -> float:
        return clock() + self._virtual_elapsed

    def _wait(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self._sleep is time.sleep:
            self._sleep(seconds)
        else:
            self._virtual_elapsed += seconds
            if self._sleep is not None:
                self._sleep(seconds)

    def _select(self, now: float) -> int:
        """The endpoint to try next: the sticky primary while it is off
        probation, else the best-scored non-benched endpoint, else the
        one whose bench time ends soonest."""
        if not self.health[self._primary].on_probation(now):
            return self._primary
        available = [index for index in range(len(self._backends))
                     if not self.health[index].on_probation(now)]
        if available:
            return max(available, key=lambda i: (self.health[i].score, -i))
        return min(range(len(self._backends)),
                   key=lambda i: self.health[i].probation_until)

    def _switch_to(self, index: int, method: str, cause: str) -> None:
        if index == self._primary:
            return
        previous, self._primary = self._primary, index
        self._switches.inc()
        self.events.emit(events_module.ENDPOINT_FAILOVER,
                         previous=previous, to=index, method=method,
                         cause=cause)

    def _record(self, index: int, success: bool, now: float) -> None:
        health = self.health[index]
        if success:
            health.successes += 1
        else:
            health.failures += 1
            health.probation_until = now + self.probation_s
        self._health_gauges[index].set(round(health.score, 6))

    # --------------------------------------------------------------- breakers
    def _breaker(self, index: int, method: str) -> CircuitBreaker:
        breaker = self._breakers.get((index, method))
        if breaker is None:
            endpoint = str(index)
            gauge = self.metrics.gauge("resilience.breaker_state",
                                       method=method, endpoint=endpoint)

            def on_transition(old: str, new: str) -> None:
                self.metrics.counter("resilience.breaker_transitions",
                                     method=method, to=new,
                                     endpoint=endpoint).inc()
                gauge.set(_STATE_VALUE[new])

            breaker = CircuitBreaker(self.breaker_config, on_transition)
            self._breakers[(index, method)] = breaker
        return breaker

    # -------------------------------------------------------------- dispatch
    def _invoke(self, method: str, func_name: str, address: bytes | None,
                *args, **kwargs):
        last_error: Exception | None = None
        for _ in range(len(self._backends)):
            now = self._now()
            index = self._select(now)
            self._switch_to(index, method,
                            cause=type(last_error).__name__
                            if last_error is not None else "probation")
            try:
                result = self._call_endpoint(index, method, func_name,
                                             address, *args, **kwargs)
            except (DeadlineExceeded, CircuitOpen) as error:
                last_error = error
                self._record(index, success=False, now=self._now())
                continue
            self._record(index, success=True, now=self._now())
            return result
        raise last_error  # every endpoint tried and refused

    def _call_endpoint(self, index: int, method: str, func_name: str,
                       address: bytes | None, *args, **kwargs):
        """One endpoint's retry loop — ResilientNode semantics with
        endpoint-labeled metrics and a per-endpoint breaker."""
        func = getattr(self._backends[index], func_name)
        breaker = self._breaker(index, method)
        endpoint = str(index)
        started = self._now()
        attempt = 0
        while True:
            if not breaker.admit(self._now()):
                self.metrics.counter("resilience.circuit_open_rejections",
                                     method=method, endpoint=endpoint).inc()
                raise CircuitOpen(
                    f"circuit for {method} on endpoint {index} is open "
                    f"(retry at t={breaker.retry_at():.3f})",
                    method=method, retry_at=breaker.retry_at())
            try:
                result = func(*args, **kwargs)
            except TransientRpcError as error:
                now = self._now()
                breaker.record_failure(now)
                attempt += 1
                elapsed = now - started
                delay = self._rng.uniform(
                    0, self.policy.backoff_ceiling(attempt - 1))
                if (attempt >= self.policy.max_attempts
                        or elapsed + delay > self.policy.deadline_s):
                    self.metrics.counter("resilience.deadline_exceeded",
                                         method=method,
                                         endpoint=endpoint).inc()
                    raise DeadlineExceeded(
                        f"{method} on endpoint {index} failed after "
                        f"{attempt} attempt(s) / {elapsed:.3f}s: {error}",
                        method=method, address=address,
                        attempts=attempt, elapsed_s=elapsed) from error
                self.metrics.counter("resilience.retries", method=method,
                                     endpoint=endpoint).inc()
                self.metrics.counter("resilience.backoff_seconds",
                                     method=method,
                                     endpoint=endpoint).inc(delay)
                self._wait(delay)
                continue
            breaker.record_success(self._now())
            return result

    # ----------------------------------------------------------------- reads
    def get_code(self, address: bytes, block_number: int | None = None) -> bytes:
        return self._invoke("eth_getCode", "get_code", address,
                            address, block_number)

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        return self._invoke("eth_getStorageAt", "get_storage_at", address,
                            address, slot, block_number)

    def get_balance(self, address: bytes) -> int:
        return self._invoke("eth_getBalance", "get_balance", address, address)

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None, **kwargs):
        return self._invoke("eth_call", "call", to, to, data, sender=sender,
                            block_number=block_number, **kwargs)

    def is_alive(self, address: bytes) -> bool:
        return self._invoke("eth_getCode", "is_alive", address, address)

    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None):
        return self._invoke("eth_getLogs", "get_logs", address,
                            address, topic, from_block, to_block)

    def transactions_of(self, address: bytes):
        return self._invoke("eth_getTransactionsByAddress",
                            "transactions_of", address, address)

    def has_transactions(self, address: bytes) -> bool:
        return self._invoke("eth_getTransactionCountByAddress",
                            "has_transactions", address, address)

    def get_transaction_count(self, address: bytes) -> int:
        return self._invoke("eth_getTransactionCount",
                            "get_transaction_count", address, address)


def build_failover_node(node, endpoints: int, *, chaos: str | None = None,
                        chaos_seed: int = 1337, events=None) -> FailoverNode:
    """Wire ``endpoints`` backends over ``node``'s chain into one failover
    stack — the shared construction used by the CLI, :class:`SweepSpec`
    and the serve daemon.

    ``node`` becomes endpoint 0; ``endpoints - 1`` additional
    :class:`~repro.chain.node.ArchiveNode` replicas share its chain and
    metrics registry.  With ``chaos``, the canned fault plan wraps *only
    the primary* — the mid-sweep-primary-outage model the failover layer
    exists to absorb (contrast :func:`~repro.chain.faults.build_chaos_stack`,
    which pairs a single faulty node with a resilient wrapper).
    """
    from repro.chain.faults import FaultyNode, canned_plan
    from repro.chain.node import ArchiveNode

    if endpoints < 1:
        raise ConfigurationError(
            f"--rpc-endpoints must be >= 1, got {endpoints}")
    budget = getattr(node, "call_instruction_budget", None)
    backends = [node]
    for _ in range(endpoints - 1):
        backends.append(ArchiveNode(node.chain, metrics=node.metrics,
                                    call_instruction_budget=budget))
    if chaos is not None:
        backends[0] = FaultyNode(backends[0],
                                 canned_plan(chaos, seed=chaos_seed))
    return FailoverNode(backends, seed=chaos_seed, events=events)


__all__ = [
    "DEFAULT_PROBATION_S",
    "EndpointHealth",
    "FailoverNode",
    "build_failover_node",
]
