"""Contract deployment catalogue (the Google BigQuery substitute).

The paper begins by "querying the addresses and deployment blocks of all
contracts from Google BigQuery" (§7.1).  This dataset plays that role for
the simulated chain: a flat catalogue of (address, deploy block, deployer),
buildable either incrementally (as the corpus generator deploys) or by
scanning chain receipts after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.blockchain import Blockchain


@dataclass(frozen=True, slots=True)
class ContractRecord:
    """One deployed contract's catalogue entry."""

    address: bytes
    deploy_block: int
    deployer: bytes


class ContractDataset:
    """Enumerates analysis targets, like the paper's BigQuery table."""

    def __init__(self) -> None:
        self._records: dict[bytes, ContractRecord] = {}

    def add(self, address: bytes, deploy_block: int, deployer: bytes) -> None:
        self._records[address] = ContractRecord(address, deploy_block, deployer)

    def get(self, address: bytes) -> ContractRecord | None:
        return self._records.get(address)

    def addresses(self) -> list[bytes]:
        return list(self._records)

    def records(self) -> list[ContractRecord]:
        return list(self._records.values())

    def deploy_block_of(self, address: bytes) -> int:
        record = self._records.get(address)
        if record is None:
            raise KeyError(f"unknown contract 0x{address.hex()}")
        return record.deploy_block

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, address: bytes) -> bool:
        return address in self._records

    @classmethod
    def scan_chain(cls, chain: Blockchain) -> "ContractDataset":
        """Rebuild the catalogue from chain receipts (external + internal)."""
        dataset = cls()
        for block in chain.blocks:
            for receipt in block.receipts:
                if receipt.created_address is not None:
                    dataset.add(receipt.created_address, receipt.block_number,
                                receipt.transaction.sender)
                for event in receipt.internal_creates:
                    dataset.add(event.new_address, receipt.block_number,
                                event.creator)
        return dataset
