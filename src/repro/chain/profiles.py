"""Chain profiles: the §8.2 "beyond Ethereum" extension.

The paper notes ProxioN can apply to other EVM chains (Arbitrum, Avalanche,
BSC, Celo, Fantom, Optimism, Polygon) the way USCHunt did.  Nothing in the
analyzer is Ethereum-specific — the proxy semantics are EVM semantics — so
supporting another chain only means simulating its parameters: chain id
(visible to contracts through ``CHAINID``), block cadence (which changes
how block heights map to calendar time) and genesis date.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _timestamp(year: int, month: int, day: int) -> int:
    return int(_dt.datetime(year, month, day,
                            tzinfo=_dt.timezone.utc).timestamp())


@dataclass(frozen=True, slots=True)
class ChainProfile:
    """Parameters of one EVM chain."""

    name: str
    chain_id: int
    block_time: int              # seconds per block
    genesis_timestamp: int

    def blocks_per_year(self) -> int:
        return (365 * 24 * 3600) // self.block_time


ETHEREUM = ChainProfile(
    name="ethereum", chain_id=1, block_time=13,
    genesis_timestamp=_timestamp(2015, 7, 30))

POLYGON = ChainProfile(
    name="polygon", chain_id=137, block_time=2,
    genesis_timestamp=_timestamp(2020, 5, 30))

BSC = ChainProfile(
    name="bsc", chain_id=56, block_time=3,
    genesis_timestamp=_timestamp(2020, 8, 29))

ARBITRUM = ChainProfile(
    name="arbitrum", chain_id=42161, block_time=1,
    genesis_timestamp=_timestamp(2021, 5, 28))

PRESETS: dict[str, ChainProfile] = {
    profile.name: profile
    for profile in (ETHEREUM, POLYGON, BSC, ARBITRUM)
}


def get_profile(name: str) -> ChainProfile:
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(f"unknown chain profile: {name!r}; "
                         f"known: {sorted(PRESETS)}") from None
