"""Resilient archive-node wrapper: retries, backoff, circuit breaking.

The production counterpart of :mod:`repro.chain.faults`: wherever that
module injects failures, :class:`ResilientNode` absorbs them.  Three
mechanisms, each independently testable:

* **Capped exponential backoff with seeded full jitter** — every transient
  RPC failure waits ``uniform(0, min(cap, base · mult^attempt))`` before
  retrying, drawn from a ``random.Random(seed)`` so a given node instance
  produces a *reproducible* backoff trace (the chaos tests assert this).
* **Per-call deadline budgets** — a call may not consume more than
  ``RetryPolicy.deadline_s`` of combined attempt + backoff time, nor more
  than ``max_attempts`` tries; exhausting either raises
  :class:`~repro.errors.DeadlineExceeded` chaining the last failure.
* **Per-method circuit breaker** — after ``failure_threshold`` consecutive
  failures a method's circuit opens and calls fail fast with
  :class:`~repro.errors.CircuitOpen` (no RPC issued) until ``cooldown_s``
  has passed, then a half-open probe either closes it again or re-opens it.

``sleep`` is injectable: the default ``time.sleep`` really waits, while
tests and the bench suite pass a no-op and rely on the wrapper's *virtual*
clock (wall clock + accumulated skipped sleep), which also drives breaker
cooldowns so open→half-open transitions happen deterministically.

Everything is metered in the node's registry: ``resilience.retries``,
``resilience.backoff_seconds``, ``resilience.deadline_exceeded``,
``resilience.circuit_open_rejections`` (all ``{method=...}``) and
``resilience.breaker_transitions{method=...,to=...}``.  When an
:class:`~repro.obs.events.EventRecorder` is wired, the *narrative*
moments also land in the flight recorder: every breaker state change
(``breaker.open`` / ``breaker.half-open`` / ``breaker.close``) and every
retry-budget exhaustion (``retry.exhausted``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import CircuitOpen, DeadlineExceeded, TransientRpcError
from repro.obs import events as events_module
from repro.obs.events import NULL_RECORDER
from repro.obs.spans import clock

#: Breaker states (also the value of ``resilience.breaker_state`` gauges).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Breaker state → journal event kind (``repro.events/1`` taxonomy).
_STATE_EVENT = {
    CLOSED: events_module.BREAKER_CLOSE,
    OPEN: events_module.BREAKER_OPEN,
    HALF_OPEN: events_module.BREAKER_HALF_OPEN,
}


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Backoff + budget knobs of one :class:`ResilientNode`."""

    max_attempts: int = 6
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    multiplier: float = 2.0
    deadline_s: float = 30.0

    def backoff_ceiling(self, attempt: int) -> float:
        """The jitter window's upper bound after ``attempt`` failures."""
        return min(self.max_delay_s,
                   self.base_delay_s * self.multiplier ** attempt)


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Circuit-breaker knobs (one breaker per RPC method)."""

    failure_threshold: int = 5
    cooldown_s: float = 1.0
    half_open_probes: int = 1


class CircuitBreaker:
    """One method's breaker: closed → open → half-open → closed.

    ``on_transition(old, new)`` fires on every state change (wired to the
    ``resilience.breaker_transitions`` counter by :class:`ResilientNode`).
    Time is supplied by the caller, so virtual clocks work.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 on_transition=None) -> None:
        self.config = config or BreakerConfig()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probes_in_flight = 0
        self._on_transition = on_transition

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old, self.state = self.state, new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def retry_at(self) -> float:
        return self.opened_at + self.config.cooldown_s

    def admit(self, now: float) -> bool:
        """Whether a call may proceed; may move open → half-open."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now < self.retry_at():
                return False
            self._transition(HALF_OPEN)
            self._probes_in_flight = 0
        # Half-open: admit a bounded number of probes.
        if self._probes_in_flight >= self.config.half_open_probes:
            return False
        self._probes_in_flight += 1
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self._transition(CLOSED)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            # A failed probe re-opens immediately, restarting the cooldown.
            self.opened_at = now
            self.consecutive_failures += 1
            self._transition(OPEN)
            return
        self.consecutive_failures += 1
        if (self.state == CLOSED
                and self.consecutive_failures
                >= self.config.failure_threshold):
            self.opened_at = now
            self._transition(OPEN)


class ResilientNode:
    """Retry/backoff/breaker wrapper over any ArchiveNode-shaped object.

    Stack it outside a :class:`~repro.chain.faults.FaultyNode` to prove a
    sweep survives a fault plan, or outside a real RPC adapter in
    deployment.  The wrapped node's results pass through untouched — only
    failures are absorbed — which is what makes chaos equivalence
    byte-exact.
    """

    def __init__(self, node, policy: RetryPolicy | None = None,
                 breaker: BreakerConfig | None = None,
                 seed: int = 0, sleep=time.sleep, metrics=None,
                 events=None) -> None:
        self._node = node
        self.policy = policy or RetryPolicy()
        self.breaker_config = breaker or BreakerConfig()
        self.metrics = metrics if metrics is not None else node.metrics
        self.events = events if events is not None else NULL_RECORDER
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._virtual_elapsed = 0.0
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------ passthrough
    @property
    def chain(self):
        return self._node.chain

    @property
    def api_calls(self):
        return self._node.api_calls

    @property
    def latest_block_number(self) -> int:
        return self._node.latest_block_number

    @property
    def genesis_block_number(self) -> int:
        return self._node.genesis_block_number

    def year_of(self, block_number: int) -> int:
        return self._node.year_of(block_number)

    def witness_reads(self, trail):
        """Evidence attribution passes through to the wrapped node, so an
        audited sweep records the reads that actually reached the archive
        (retries included)."""
        return self._node.witness_reads(trail)

    # --------------------------------------------------------------- plumbing
    def _now(self) -> float:
        """Wall clock plus every skipped (virtual) backoff second."""
        return clock() + self._virtual_elapsed

    def _wait(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self._sleep is time.sleep:
            self._sleep(seconds)
        else:
            # Injected sleeps are treated as virtual: time advances on the
            # wrapper's clock without stalling the process.
            self._virtual_elapsed += seconds
            if self._sleep is not None:
                self._sleep(seconds)

    def breaker_for(self, method: str) -> CircuitBreaker:
        breaker = self._breakers.get(method)
        if breaker is None:
            gauge = self.metrics.gauge("resilience.breaker_state",
                                       method=method)

            def on_transition(old: str, new: str) -> None:
                self.metrics.counter("resilience.breaker_transitions",
                                     method=method, to=new).inc()
                gauge.set(_STATE_VALUE[new])
                self.events.emit(_STATE_EVENT[new], method=method,
                                 previous=old)

            breaker = CircuitBreaker(self.breaker_config, on_transition)
            self._breakers[method] = breaker
        return breaker

    def backoff_delays(self, attempts: int) -> list[float]:
        """The next ``attempts`` jittered delays (consumes RNG state).

        Exposed for determinism tests: two nodes built with the same seed
        produce identical delay sequences.
        """
        return [self._rng.uniform(0, self.policy.backoff_ceiling(attempt))
                for attempt in range(attempts)]

    def _invoke(self, method: str, func, address: bytes | None, *args,
                **kwargs):
        breaker = self.breaker_for(method)
        started = self._now()
        attempt = 0
        while True:
            if not breaker.admit(self._now()):
                self.metrics.counter("resilience.circuit_open_rejections",
                                     method=method).inc()
                raise CircuitOpen(
                    f"circuit for {method} is open "
                    f"(retry at t={breaker.retry_at():.3f})",
                    method=method, retry_at=breaker.retry_at())
            try:
                result = func(*args, **kwargs)
            except TransientRpcError as error:
                now = self._now()
                breaker.record_failure(now)
                attempt += 1
                elapsed = now - started
                delay = self._rng.uniform(
                    0, self.policy.backoff_ceiling(attempt - 1))
                if (attempt >= self.policy.max_attempts
                        or elapsed + delay > self.policy.deadline_s):
                    self.metrics.counter("resilience.deadline_exceeded",
                                         method=method).inc()
                    self.events.emit(events_module.RETRY_EXHAUSTED,
                                     method=method, attempts=attempt,
                                     elapsed_s=round(elapsed, 6))
                    raise DeadlineExceeded(
                        f"{method} failed after {attempt} attempt(s) "
                        f"/ {elapsed:.3f}s: {error}",
                        method=method, address=address,
                        attempts=attempt, elapsed_s=elapsed) from error
                self.metrics.counter("resilience.retries",
                                     method=method).inc()
                self.metrics.counter("resilience.backoff_seconds",
                                     method=method).inc(delay)
                self._wait(delay)
                continue
            breaker.record_success(self._now())
            return result

    # ----------------------------------------------------------------- reads
    def get_code(self, address: bytes, block_number: int | None = None) -> bytes:
        return self._invoke("eth_getCode", self._node.get_code, address,
                            address, block_number)

    def get_storage_at(self, address: bytes, slot: int,
                       block_number: int | None = None) -> int:
        return self._invoke("eth_getStorageAt", self._node.get_storage_at,
                            address, address, slot, block_number)

    def get_balance(self, address: bytes) -> int:
        return self._invoke("eth_getBalance", self._node.get_balance,
                            address, address)

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None, **kwargs):
        return self._invoke("eth_call", self._node.call, to,
                            to, data, sender=sender,
                            block_number=block_number, **kwargs)

    def is_alive(self, address: bytes) -> bool:
        return self._invoke("eth_getCode", self._node.is_alive, address,
                            address)

    def get_logs(self, address: bytes | None = None,
                 topic: int | None = None,
                 from_block: int | None = None,
                 to_block: int | None = None):
        return self._invoke("eth_getLogs", self._node.get_logs, address,
                            address, topic, from_block, to_block)

    def transactions_of(self, address: bytes):
        return self._invoke("eth_getTransactionsByAddress",
                            self._node.transactions_of, address, address)

    def has_transactions(self, address: bytes) -> bool:
        return self._invoke("eth_getTransactionCountByAddress",
                            self._node.has_transactions, address, address)

    def get_transaction_count(self, address: bytes) -> int:
        return self._invoke("eth_getTransactionCount",
                            self._node.get_transaction_count, address,
                            address)


__all__ = [
    "BreakerConfig",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "OPEN",
    "ResilientNode",
    "RetryPolicy",
]
