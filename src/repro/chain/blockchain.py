"""A simulated Ethereum blockchain: blocks, transactions, receipts.

Each transaction executes through the from-scratch EVM against the
:class:`~repro.chain.state.WorldState`.  Receipts capture the *internal*
call/create events of the execution (via a :class:`CallTracer`), which is
the transaction-history signal that the CRUSH and Salehi baselines mine.

Block numbering maps to calendar time through a mainnet-like clock
(genesis 2015-07-30, 13-second blocks by default) so the landscape surveys
can bucket deployments by year just as the paper's Figures 2/4 do.
"""

from __future__ import annotations

import bisect
import datetime as _dt
import hashlib
from dataclasses import dataclass, field

from repro.chain.profiles import ChainProfile
from repro.chain.state import WorldState
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, CallResult, Message
from repro.evm.tracer import (
    CallEvent,
    CallTracer,
    CombinedTracer,
    CreateEvent,
    LogEvent,
    Tracer,
)

GENESIS_TIMESTAMP = int(_dt.datetime(2015, 7, 30, tzinfo=_dt.timezone.utc).timestamp())
DEFAULT_BLOCK_TIME = 13
DEFAULT_GAS = 30_000_000
# How many recent block records keep an undo snapshot: the maximum depth a
# reorg (``Blockchain.fork``) can rewind.  Bounded so a long-lived chain
# does not accumulate one full-state copy per block forever.
DEFAULT_REORG_CAPACITY = 64


@dataclass(slots=True)
class Transaction:
    """An external transaction submitted to the chain."""

    sender: bytes
    to: bytes | None
    value: int = 0
    data: bytes = b""
    gas: int = DEFAULT_GAS


@dataclass(slots=True)
class Receipt:
    """Execution record of one transaction."""

    transaction: Transaction
    block_number: int
    success: bool
    output: bytes
    gas_used: int
    error: str | None
    created_address: bytes | None
    internal_calls: list[CallEvent] = field(default_factory=list)
    internal_creates: list[CreateEvent] = field(default_factory=list)
    logs: list[LogEvent] = field(default_factory=list)

    @property
    def touched_addresses(self) -> set[bytes]:
        """Every contract address this transaction interacted with."""
        touched: set[bytes] = set()
        if self.transaction.to is not None:
            touched.add(self.transaction.to)
        if self.created_address is not None:
            touched.add(self.created_address)
        for event in self.internal_calls:
            touched.add(event.target)
        for event in self.internal_creates:
            touched.add(event.new_address)
        return touched


@dataclass(slots=True)
class Block:
    """A sealed block.

    ``hash`` identifies the block *on its branch*: it commits to the parent
    hash, the height, and a branch nonce bumped on every :meth:`Blockchain.fork`,
    so a replacement block at the same height after a reorg always carries a
    different hash — the divergence signal ancestry-tracking followers key on.
    """

    number: int
    timestamp: int
    receipts: list[Receipt] = field(default_factory=list)
    parent_hash: bytes = b""
    hash: bytes = b""


class Blockchain:
    """The simulated chain driving WorldState through block history."""

    def __init__(
        self,
        block_time: int | None = None,
        genesis_timestamp: int | None = None,
        config: ExecutionConfig | None = None,
        profile: ChainProfile | None = None,
        reorg_capacity: int = DEFAULT_REORG_CAPACITY,
    ) -> None:
        from repro.chain.profiles import ETHEREUM

        self.profile = profile or ETHEREUM
        self.block_time = (block_time if block_time is not None
                           else self.profile.block_time)
        self.genesis_timestamp = (genesis_timestamp
                                  if genesis_timestamp is not None
                                  else self.profile.genesis_timestamp)
        self.state = WorldState()
        self.config = config or ExecutionConfig()
        self.receipts_by_address: dict[bytes, list[Receipt]] = {}
        self.reorg_capacity = max(0, reorg_capacity)
        self.forks = 0            # branch nonce; bumped by every fork()
        genesis = Block(number=0, timestamp=self.genesis_timestamp,
                        parent_hash=b"\x00" * 32)
        genesis.hash = self._block_hash(genesis.parent_hash, 0)
        self.blocks: list[Block] = [genesis]
        # Undo ring: (index into self.blocks, state snapshot taken *before*
        # that block executed).  fork() rewinds by reverting to one of these.
        self._undo: list[tuple[int, tuple]] = []
        self.state.current_block = 0

    def _block_hash(self, parent_hash: bytes, number: int) -> bytes:
        digest = hashlib.sha256()
        digest.update(parent_hash)
        digest.update(number.to_bytes(8, "big"))
        digest.update(self.forks.to_bytes(8, "big"))
        return digest.digest()

    # ------------------------------------------------------------ block clock
    @property
    def latest_block_number(self) -> int:
        return self.blocks[-1].number

    def timestamp_of(self, block_number: int) -> int:
        return self.genesis_timestamp + block_number * self.block_time

    def year_of(self, block_number: int) -> int:
        moment = _dt.datetime.fromtimestamp(self.timestamp_of(block_number),
                                            tz=_dt.timezone.utc)
        return moment.year

    def first_block_of_year(self, year: int) -> int:
        """Lowest block number whose timestamp falls in ``year``."""
        start = int(_dt.datetime(year, 1, 1, tzinfo=_dt.timezone.utc).timestamp())
        if start <= self.genesis_timestamp:
            return 0
        return (start - self.genesis_timestamp + self.block_time - 1) // self.block_time

    def advance_to_block(self, block_number: int) -> None:
        """Seal empty blocks up to ``block_number`` (fast-forward the clock).

        Empty spans are represented implicitly: only the latest block record
        is created, since intermediate empty blocks carry no state changes.
        """
        if block_number <= self.latest_block_number:
            return
        if self.reorg_capacity:
            self._undo.append((len(self.blocks), self.state.snapshot()))
            if len(self._undo) > self.reorg_capacity:
                del self._undo[0]
        parent = self.blocks[-1]
        block = Block(number=block_number,
                      timestamp=self.timestamp_of(block_number),
                      parent_hash=parent.hash)
        block.hash = self._block_hash(parent.hash, block_number)
        self.blocks.append(block)
        self.state.current_block = block_number

    def block_context(self, block_number: int | None = None) -> BlockContext:
        number = self.latest_block_number if block_number is None else block_number
        return BlockContext(number=number, timestamp=self.timestamp_of(number),
                            chain_id=self.profile.chain_id)

    # ------------------------------------------------------- reorganizations
    def block_hash(self, block_number: int) -> bytes | None:
        """Hash of the block record at ``block_number`` on the current branch.

        ``None`` when no record exists at that height (implicit empty span,
        or a height orphaned by a fork).  Followers compare stored hashes
        against this to detect that the branch underneath them changed.
        """
        index = bisect.bisect_left(self.blocks, block_number,
                                   key=lambda block: block.number)
        if index < len(self.blocks) and self.blocks[index].number == block_number:
            return self.blocks[index].hash
        return None

    @property
    def max_fork_depth(self) -> int:
        """How many trailing block records :meth:`fork` can currently orphan."""
        if not self._undo:
            return 0
        return len(self.blocks) - self._undo[0][0]

    def fork(self, depth: int) -> list[bytes]:
        """Reorganize: orphan the top ``depth`` block records.

        World state reverts to the common ancestor (code, storage, balances,
        nonces, archive histories), orphaned receipts leave the transaction
        index, and the branch nonce bumps so replacement blocks sealed at the
        same heights hash differently.  ``depth`` counts block *records* and
        is clamped to :attr:`max_fork_depth` (undo snapshots are bounded by
        ``reorg_capacity``).  Returns the orphaned deployment addresses —
        contracts that no longer exist on the canonical branch — in
        deployment order.
        """
        depth = min(depth, self.max_fork_depth)
        if depth <= 0:
            return []
        ancestor_index = len(self.blocks) - depth - 1
        snapshot = None
        for index, snap in self._undo:
            if index == ancestor_index + 1:
                snapshot = snap
                break
        if snapshot is None:      # unreachable given the clamp, but explicit
            return []
        orphaned: list[bytes] = []
        seen: set[bytes] = set()
        dropped: set[int] = set()
        for block in self.blocks[ancestor_index + 1:]:
            for receipt in block.receipts:
                dropped.add(id(receipt))
                for address in self._deployed_by(receipt):
                    if address not in seen:
                        seen.add(address)
                        orphaned.append(address)
        self.state.revert(snapshot)
        del self.blocks[ancestor_index + 1:]
        self._undo = [(index, snap) for index, snap in self._undo
                      if index <= ancestor_index]
        for address in list(self.receipts_by_address):
            kept = [receipt for receipt in self.receipts_by_address[address]
                    if id(receipt) not in dropped]
            if kept:
                self.receipts_by_address[address] = kept
            else:
                del self.receipts_by_address[address]
        self.state.current_block = self.blocks[-1].number
        self.forks += 1
        return orphaned

    @staticmethod
    def _deployed_by(receipt: Receipt) -> list[bytes]:
        deployed = []
        if receipt.created_address is not None:
            deployed.append(receipt.created_address)
        deployed.extend(event.new_address
                        for event in receipt.internal_creates)
        return deployed

    # ---------------------------------------------------------- transactions
    def send_transaction(self, transaction: Transaction,
                         extra_tracer: Tracer | None = None) -> Receipt:
        """Execute ``transaction`` in a fresh block and seal it."""
        block_number = self.latest_block_number + 1
        self.advance_to_block(block_number)
        block = self.blocks[-1]

        call_tracer = CallTracer()
        tracer: Tracer = call_tracer
        if extra_tracer is not None:
            tracer = CombinedTracer(tracers=[call_tracer, extra_tracer])

        evm = EVM(
            self.state,
            block=self.block_context(block_number),
            tx=TransactionContext(origin=transaction.sender),
            config=self.config,
            tracer=tracer,
        )
        result: CallResult = evm.execute(Message(
            sender=transaction.sender,
            to=transaction.to,
            value=transaction.value,
            data=transaction.data,
            gas=transaction.gas,
        ))
        receipt = Receipt(
            transaction=transaction,
            block_number=block_number,
            success=result.success,
            output=result.output,
            gas_used=result.gas_used,
            error=result.error,
            created_address=result.created_address,
            internal_calls=list(call_tracer.calls),
            internal_creates=list(call_tracer.creates),
            logs=list(call_tracer.logs) if result.success else [],
        )
        block.receipts.append(receipt)
        for address in receipt.touched_addresses:
            self.receipts_by_address.setdefault(address, []).append(receipt)
        return receipt

    # ----------------------------------------------------------- conveniences
    def fund(self, address: bytes, wei: int) -> None:
        """Credit an externally-owned account (faucet)."""
        self.state.set_balance(address, self.state.get_balance(address) + wei)

    def deploy(self, sender: bytes, init_code: bytes, value: int = 0) -> Receipt:
        """Deploy a contract from init code; receipt carries the address."""
        return self.send_transaction(Transaction(
            sender=sender, to=None, value=value, data=init_code))

    def transact(self, sender: bytes, to: bytes, data: bytes = b"",
                 value: int = 0) -> Receipt:
        """Send a function-call transaction."""
        return self.send_transaction(Transaction(
            sender=sender, to=to, value=value, data=data))

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None,
             config: ExecutionConfig | None = None) -> CallResult:
        """Read-only eth_call against current state (no block mined).

        ``config`` overrides the chain's execution config for this call
        (the archive node uses it to apply a per-call instruction ceiling).
        """
        evm = EVM(
            self.state,
            block=self.block_context(block_number),
            tx=TransactionContext(origin=sender),
            config=config if config is not None else self.config,
        )
        snapshot = self.state.snapshot()
        try:
            return evm.execute(Message(sender=sender, to=to, data=data))
        finally:
            self.state.revert(snapshot)

    def transactions_of(self, address: bytes) -> list[Receipt]:
        """Every receipt that touched ``address`` (tx-history baselines)."""
        return list(self.receipts_by_address.get(address, []))

    def has_transactions(self, address: bytes) -> bool:
        """True when the address has any post-deployment interaction.

        Deployment itself does not count as a "past transaction" for the
        purposes of Figure 2's hidden-contract quadrant: a freshly deployed,
        never-called contract is exactly what the paper means by "without
        transactions".
        """
        for receipt in self.receipts_by_address.get(address, []):
            if receipt.created_address == address:
                continue
            if any(event.new_address == address
                   for event in receipt.internal_creates):
                continue
            return True
        return False
