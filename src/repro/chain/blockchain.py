"""A simulated Ethereum blockchain: blocks, transactions, receipts.

Each transaction executes through the from-scratch EVM against the
:class:`~repro.chain.state.WorldState`.  Receipts capture the *internal*
call/create events of the execution (via a :class:`CallTracer`), which is
the transaction-history signal that the CRUSH and Salehi baselines mine.

Block numbering maps to calendar time through a mainnet-like clock
(genesis 2015-07-30, 13-second blocks by default) so the landscape surveys
can bucket deployments by year just as the paper's Figures 2/4 do.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.chain.profiles import ChainProfile
from repro.chain.state import WorldState
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, CallResult, Message
from repro.evm.tracer import (
    CallEvent,
    CallTracer,
    CombinedTracer,
    CreateEvent,
    LogEvent,
    Tracer,
)

GENESIS_TIMESTAMP = int(_dt.datetime(2015, 7, 30, tzinfo=_dt.timezone.utc).timestamp())
DEFAULT_BLOCK_TIME = 13
DEFAULT_GAS = 30_000_000


@dataclass(slots=True)
class Transaction:
    """An external transaction submitted to the chain."""

    sender: bytes
    to: bytes | None
    value: int = 0
    data: bytes = b""
    gas: int = DEFAULT_GAS


@dataclass(slots=True)
class Receipt:
    """Execution record of one transaction."""

    transaction: Transaction
    block_number: int
    success: bool
    output: bytes
    gas_used: int
    error: str | None
    created_address: bytes | None
    internal_calls: list[CallEvent] = field(default_factory=list)
    internal_creates: list[CreateEvent] = field(default_factory=list)
    logs: list[LogEvent] = field(default_factory=list)

    @property
    def touched_addresses(self) -> set[bytes]:
        """Every contract address this transaction interacted with."""
        touched: set[bytes] = set()
        if self.transaction.to is not None:
            touched.add(self.transaction.to)
        if self.created_address is not None:
            touched.add(self.created_address)
        for event in self.internal_calls:
            touched.add(event.target)
        for event in self.internal_creates:
            touched.add(event.new_address)
        return touched


@dataclass(slots=True)
class Block:
    """A sealed block."""

    number: int
    timestamp: int
    receipts: list[Receipt] = field(default_factory=list)


class Blockchain:
    """The simulated chain driving WorldState through block history."""

    def __init__(
        self,
        block_time: int | None = None,
        genesis_timestamp: int | None = None,
        config: ExecutionConfig | None = None,
        profile: ChainProfile | None = None,
    ) -> None:
        from repro.chain.profiles import ETHEREUM

        self.profile = profile or ETHEREUM
        self.block_time = (block_time if block_time is not None
                           else self.profile.block_time)
        self.genesis_timestamp = (genesis_timestamp
                                  if genesis_timestamp is not None
                                  else self.profile.genesis_timestamp)
        self.state = WorldState()
        self.blocks: list[Block] = [
            Block(number=0, timestamp=self.genesis_timestamp)]
        self.config = config or ExecutionConfig()
        self.receipts_by_address: dict[bytes, list[Receipt]] = {}
        self.state.current_block = 0

    # ------------------------------------------------------------ block clock
    @property
    def latest_block_number(self) -> int:
        return self.blocks[-1].number

    def timestamp_of(self, block_number: int) -> int:
        return self.genesis_timestamp + block_number * self.block_time

    def year_of(self, block_number: int) -> int:
        moment = _dt.datetime.fromtimestamp(self.timestamp_of(block_number),
                                            tz=_dt.timezone.utc)
        return moment.year

    def first_block_of_year(self, year: int) -> int:
        """Lowest block number whose timestamp falls in ``year``."""
        start = int(_dt.datetime(year, 1, 1, tzinfo=_dt.timezone.utc).timestamp())
        if start <= self.genesis_timestamp:
            return 0
        return (start - self.genesis_timestamp + self.block_time - 1) // self.block_time

    def advance_to_block(self, block_number: int) -> None:
        """Seal empty blocks up to ``block_number`` (fast-forward the clock).

        Empty spans are represented implicitly: only the latest block record
        is created, since intermediate empty blocks carry no state changes.
        """
        if block_number <= self.latest_block_number:
            return
        self.blocks.append(Block(number=block_number,
                                 timestamp=self.timestamp_of(block_number)))
        self.state.current_block = block_number

    def block_context(self, block_number: int | None = None) -> BlockContext:
        number = self.latest_block_number if block_number is None else block_number
        return BlockContext(number=number, timestamp=self.timestamp_of(number),
                            chain_id=self.profile.chain_id)

    # ---------------------------------------------------------- transactions
    def send_transaction(self, transaction: Transaction,
                         extra_tracer: Tracer | None = None) -> Receipt:
        """Execute ``transaction`` in a fresh block and seal it."""
        block_number = self.latest_block_number + 1
        self.advance_to_block(block_number)
        block = self.blocks[-1]

        call_tracer = CallTracer()
        tracer: Tracer = call_tracer
        if extra_tracer is not None:
            tracer = CombinedTracer(tracers=[call_tracer, extra_tracer])

        evm = EVM(
            self.state,
            block=self.block_context(block_number),
            tx=TransactionContext(origin=transaction.sender),
            config=self.config,
            tracer=tracer,
        )
        result: CallResult = evm.execute(Message(
            sender=transaction.sender,
            to=transaction.to,
            value=transaction.value,
            data=transaction.data,
            gas=transaction.gas,
        ))
        receipt = Receipt(
            transaction=transaction,
            block_number=block_number,
            success=result.success,
            output=result.output,
            gas_used=result.gas_used,
            error=result.error,
            created_address=result.created_address,
            internal_calls=list(call_tracer.calls),
            internal_creates=list(call_tracer.creates),
            logs=list(call_tracer.logs) if result.success else [],
        )
        block.receipts.append(receipt)
        for address in receipt.touched_addresses:
            self.receipts_by_address.setdefault(address, []).append(receipt)
        return receipt

    # ----------------------------------------------------------- conveniences
    def fund(self, address: bytes, wei: int) -> None:
        """Credit an externally-owned account (faucet)."""
        self.state.set_balance(address, self.state.get_balance(address) + wei)

    def deploy(self, sender: bytes, init_code: bytes, value: int = 0) -> Receipt:
        """Deploy a contract from init code; receipt carries the address."""
        return self.send_transaction(Transaction(
            sender=sender, to=None, value=value, data=init_code))

    def transact(self, sender: bytes, to: bytes, data: bytes = b"",
                 value: int = 0) -> Receipt:
        """Send a function-call transaction."""
        return self.send_transaction(Transaction(
            sender=sender, to=to, value=value, data=data))

    def call(self, to: bytes, data: bytes = b"",
             sender: bytes = b"\x00" * 20,
             block_number: int | None = None,
             config: ExecutionConfig | None = None) -> CallResult:
        """Read-only eth_call against current state (no block mined).

        ``config`` overrides the chain's execution config for this call
        (the archive node uses it to apply a per-call instruction ceiling).
        """
        evm = EVM(
            self.state,
            block=self.block_context(block_number),
            tx=TransactionContext(origin=sender),
            config=config if config is not None else self.config,
        )
        snapshot = self.state.snapshot()
        try:
            return evm.execute(Message(sender=sender, to=to, data=data))
        finally:
            self.state.revert(snapshot)

    def transactions_of(self, address: bytes) -> list[Receipt]:
        """Every receipt that touched ``address`` (tx-history baselines)."""
        return list(self.receipts_by_address.get(address, []))

    def has_transactions(self, address: bytes) -> bool:
        """True when the address has any post-deployment interaction.

        Deployment itself does not count as a "past transaction" for the
        purposes of Figure 2's hidden-contract quadrant: a freshly deployed,
        never-called contract is exactly what the paper means by "without
        transactions".
        """
        for receipt in self.receipts_by_address.get(address, []):
            if receipt.created_address == address:
                continue
            if any(event.new_address == address
                   for event in receipt.internal_creates):
                continue
            return True
        return False
