"""World state with full per-block history (the archive-node substrate).

Besides the live account state the :class:`WorldState` keeps, for every
storage slot and code blob it has ever held, the list of ``(block, value)``
change points.  That is exactly what a mainnet *archive node* provides and
what ProxioN's Algorithm 1 queries through ``getStorageAt`` at arbitrary
block heights.

Reads at a historical height binary-search the change list, so the simulated
archive node answers in O(log changes) regardless of chain length.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


@dataclass(slots=True)
class _History:
    """Change points of a single value across block heights."""

    blocks: list[int] = field(default_factory=list)
    values: list[object] = field(default_factory=list)

    def record(self, block: int, value: object) -> None:
        if self.blocks and self.blocks[-1] == block:
            self.values[-1] = value
            return
        self.blocks.append(block)
        self.values.append(value)

    def at(self, block: int, default: object) -> object:
        index = bisect_right(self.blocks, block) - 1
        if index < 0:
            return default
        return self.values[index]


class WorldState:
    """Live account state + archive history, used as the EVM's backend.

    All mutations are stamped with ``current_block`` (set by the blockchain
    before executing each block's transactions), building the historical
    record as a side effect of normal execution.
    """

    def __init__(self) -> None:
        self.current_block = 0
        self._code: dict[bytes, bytes] = {}
        self._storage: dict[tuple[bytes, int], int] = {}
        self._balance: dict[bytes, int] = {}
        self._nonce: dict[bytes, int] = {}
        self._destroyed: set[bytes] = set()
        self._storage_history: dict[tuple[bytes, int], _History] = {}
        self._code_history: dict[bytes, _History] = {}

    # ------------------------------------------------------ StateBackend API
    def get_code(self, address: bytes) -> bytes:
        return self._code.get(address, b"")

    def set_code(self, address: bytes, code: bytes) -> None:
        self._code[address] = code
        self._destroyed.discard(address)
        self._code_history.setdefault(address, _History()).record(
            self.current_block, code)

    def get_storage(self, address: bytes, slot: int) -> int:
        return self._storage.get((address, slot), 0)

    def set_storage(self, address: bytes, slot: int, value: int) -> None:
        key = (address, slot)
        if value:
            self._storage[key] = value
        else:
            self._storage.pop(key, None)
        self._storage_history.setdefault(key, _History()).record(
            self.current_block, value)

    def get_balance(self, address: bytes) -> int:
        return self._balance.get(address, 0)

    def set_balance(self, address: bytes, value: int) -> None:
        self._balance[address] = value

    def get_nonce(self, address: bytes) -> int:
        return self._nonce.get(address, 0)

    def set_nonce(self, address: bytes, value: int) -> None:
        self._nonce[address] = value

    def account_exists(self, address: bytes) -> bool:
        return (address in self._code or address in self._balance
                or address in self._nonce)

    def mark_destroyed(self, address: bytes) -> None:
        self._destroyed.add(address)
        self._code[address] = b""
        self._code_history.setdefault(address, _History()).record(
            self.current_block, b"")

    def is_destroyed(self, address: bytes) -> bool:
        return address in self._destroyed

    def snapshot(self) -> tuple:
        # Histories are monotone (appends only within the current block), so
        # the snapshot records list lengths instead of copying the archives.
        return (
            dict(self._code),
            dict(self._storage),
            dict(self._balance),
            dict(self._nonce),
            set(self._destroyed),
            {key: len(history.blocks)
             for key, history in self._storage_history.items()},
            {key: len(history.blocks)
             for key, history in self._code_history.items()},
        )

    def revert(self, snapshot: tuple) -> None:
        (code, storage, balance, nonce, destroyed,
         storage_lengths, code_lengths) = snapshot
        self._code = dict(code)
        self._storage = dict(storage)
        self._balance = dict(balance)
        self._nonce = dict(nonce)
        self._destroyed = set(destroyed)
        for key in list(self._storage_history):
            kept = storage_lengths.get(key, 0)
            history = self._storage_history[key]
            if kept == 0:
                del self._storage_history[key]
            else:
                del history.blocks[kept:]
                del history.values[kept:]
        for key in list(self._code_history):
            kept = code_lengths.get(key, 0)
            history = self._code_history[key]
            if kept == 0:
                del self._code_history[key]
            else:
                del history.blocks[kept:]
                del history.values[kept:]

    # ----------------------------------------------------------- archive API
    def get_storage_at(self, address: bytes, slot: int, block: int) -> int:
        """Storage slot value as of the end of ``block`` (archive read)."""
        history = self._storage_history.get((address, slot))
        if history is None:
            return 0
        return int(history.at(block, 0))  # type: ignore[arg-type]

    def get_code_at(self, address: bytes, block: int) -> bytes:
        """Deployed code as of the end of ``block`` (archive read)."""
        history = self._code_history.get(address)
        if history is None:
            return b""
        return bytes(history.at(block, b""))  # type: ignore[arg-type]

    def storage_change_blocks(self, address: bytes, slot: int) -> list[int]:
        """Blocks at which the slot value changed (ground truth for tests)."""
        history = self._storage_history.get((address, slot))
        return list(history.blocks) if history else []

    def view_at(self, block: int) -> "HistoricalStateView":
        """A read-only :class:`StateBackend` frozen at ``block``'s end."""
        return HistoricalStateView(self, block)


class HistoricalStateView:
    """Read-only state as of a past block (powers historical ``eth_call``).

    Storage and code come from the archive histories; balances and nonces
    are not archived (they are irrelevant to the paper's analyses) and read
    as zero.  Writes raise — wrap in an
    :class:`~repro.evm.state.OverlayState` to execute against history.
    """

    def __init__(self, world: WorldState, block: int) -> None:
        self._world = world
        self._block = block

    @property
    def block(self) -> int:
        return self._block

    def get_code(self, address: bytes) -> bytes:
        return self._world.get_code_at(address, self._block)

    def get_storage(self, address: bytes, slot: int) -> int:
        return self._world.get_storage_at(address, slot, self._block)

    def get_balance(self, address: bytes) -> int:
        return 0

    def get_nonce(self, address: bytes) -> int:
        return 0

    def account_exists(self, address: bytes) -> bool:
        return bool(self.get_code(address))

    # -- the read-only contract ---------------------------------------------
    def _refuse(self, *_args) -> None:
        raise TypeError("historical state views are read-only; wrap in an "
                        "OverlayState to execute against them")

    set_code = set_storage = set_balance = set_nonce = _refuse
    mark_destroyed = _refuse

    def snapshot(self) -> object:
        return None

    def revert(self, snapshot: object) -> None:
        del snapshot
