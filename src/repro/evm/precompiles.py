"""The precompiled contracts at addresses 0x01..0x04.

Real mainnet contracts routinely call ``sha256``, ``ripemd160`` and the
``identity`` copy precompile; ``ecrecover`` appears in signature-checking
paths.  We implement the hash/copy precompiles exactly and give ``ecrecover``
a deterministic stub (no secp256k1 available offline): it returns a pseudo
address derived from the input hash, which keeps signature-branching
contracts executable under emulation without claiming real recovery.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.utils.hexutil import ADDRESS_BYTES, WORD_BYTES
from repro.utils.keccak import keccak256

PrecompileFn = Callable[[bytes], bytes]


def _ecrecover(data: bytes) -> bytes:
    padded = data.ljust(4 * WORD_BYTES, b"\x00")[: 4 * WORD_BYTES]
    pseudo = keccak256(b"ecrecover:" + padded)[-ADDRESS_BYTES:]
    return pseudo.rjust(WORD_BYTES, b"\x00")


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _ripemd160(data: bytes) -> bytes:
    digest = hashlib.new("ripemd160", data).digest()
    return digest.rjust(WORD_BYTES, b"\x00")


def _identity(data: bytes) -> bytes:
    return data


PRECOMPILES: dict[bytes, PrecompileFn] = {
    (1).to_bytes(ADDRESS_BYTES, "big"): _ecrecover,
    (2).to_bytes(ADDRESS_BYTES, "big"): _sha256,
    (3).to_bytes(ADDRESS_BYTES, "big"): _ripemd160,
    (4).to_bytes(ADDRESS_BYTES, "big"): _identity,
}


def is_precompile(address: bytes) -> bool:
    return address in PRECOMPILES


def run_precompile(address: bytes, data: bytes) -> bytes:
    return PRECOMPILES[address](data)
