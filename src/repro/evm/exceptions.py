"""Exceptional halting conditions of the EVM.

All of these abort the current call frame and consume its remaining gas
(except :class:`Revert`, which refunds remaining gas and carries return
data).  They deliberately subclass a common base so the interpreter can
convert any of them into a failed :class:`~repro.evm.interpreter.CallResult`
instead of unwinding the host Python stack.
"""

from __future__ import annotations


class EVMError(Exception):
    """Base class for all exceptional halts."""


class StackUnderflow(EVMError):
    """An instruction required more stack items than were present.

    This is the dominant emulation failure mode the paper reports
    ("insufficient values on the EVM stack", §6.2).
    """


class StackOverflow(EVMError):
    """The 1024-item stack limit was exceeded."""


class InvalidJump(EVMError):
    """JUMP/JUMPI targeted an offset that is not a JUMPDEST."""


class InvalidOpcode(EVMError):
    """An unassigned byte (or the designated INVALID opcode) was executed."""


class OutOfGas(EVMError):
    """The frame's gas allowance was exhausted."""


class WriteProtection(EVMError):
    """A state-modifying instruction ran inside a STATICCALL context."""


class CallDepthExceeded(EVMError):
    """The 1024-frame call depth limit was reached."""


class Revert(EVMError):
    """REVERT was executed; carries the revert payload."""

    def __init__(self, output: bytes) -> None:
        super().__init__("execution reverted")
        self.output = output


class ExecutionTimeout(EVMError):
    """The interpreter's instruction budget was exhausted.

    Not a real EVM condition — a harness guard so that emulating adversarial
    or looping bytecode (which the proxy detector feeds in by design) always
    terminates.
    """
