"""Block- and transaction-level execution environment.

The interpreter answers environment opcodes (``NUMBER``, ``TIMESTAMP``,
``CHAINID``, ``BASEFEE``, ...) from these records.  Per §4.2 of the paper,
the ProxioN emulator populates them from the latest block of the (simulated)
chain — or with the most probable fixed values (chain id 1, etc.) — so that
contracts branching on chain state still execute with high fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.hexutil import ZERO_ADDRESS
from repro.utils.keccak import keccak256

MAINNET_CHAIN_ID = 1


@dataclass(frozen=True, slots=True)
class BlockContext:
    """Values of the block the execution is (notionally) included in."""

    number: int = 0
    timestamp: int = 0
    coinbase: bytes = ZERO_ADDRESS
    prev_randao: int = 0
    gas_limit: int = 30_000_000
    base_fee: int = 1_000_000_000
    chain_id: int = MAINNET_CHAIN_ID

    def block_hash(self, number: int) -> int:
        """Deterministic pseudo-hash for BLOCKHASH.

        Only the most recent 256 blocks are addressable, as on mainnet.
        """
        if number >= self.number or number < max(0, self.number - 256):
            return 0
        return int.from_bytes(keccak256(b"block:%d" % number), "big")


@dataclass(frozen=True, slots=True)
class TransactionContext:
    """Per-transaction environment shared by every frame of one execution."""

    origin: bytes = ZERO_ADDRESS
    gas_price: int = 1_000_000_000


@dataclass(slots=True)
class ExecutionConfig:
    """Interpreter knobs that are not part of EVM semantics.

    ``instruction_budget`` bounds total instructions per top-level execution
    so adversarial bytecode cannot hang an analysis batch.
    ``fixed_create_address`` implements the §4.2 trick of deploying
    CREATE/CREATE2 children at a well-known sentinel address during
    emulation (``None`` selects real address derivation).
    """

    instruction_budget: int = 2_000_000
    call_depth_limit: int = 1024
    fixed_create_address: bytes | None = None
    trace_memory_words: bool = False
    extra: dict[str, object] = field(default_factory=dict)
