"""A from-scratch EVM interpreter.

Implements the full instruction set in :mod:`repro.evm.opcodes` with real
call-frame semantics: value transfer, ``DELEGATECALL`` context inheritance
(caller, value and *storage* come from the calling frame — the property the
whole proxy pattern rests on), ``STATICCALL`` write protection, the
return-data buffer, CREATE/CREATE2 address derivation, sub-call state
rollback, a simplified but monotone gas model, and tracer hooks.

Two consumers drive it:

* :mod:`repro.chain` executes real transactions against persistent world
  state to build block history, and
* :mod:`repro.core.proxy_detector` replays crafted calldata against
  read-only snapshots to observe DELEGATECALL forwarding (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm import opcodes as op
from repro.evm.environment import BlockContext, ExecutionConfig, TransactionContext
from repro.evm.exceptions import (
    CallDepthExceeded,
    EVMError,
    ExecutionTimeout,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
    WriteProtection,
)
from repro.evm.precompiles import is_precompile, run_precompile
from repro.evm.state import StateBackend, transfer_value
from repro.evm.tracer import (
    CallEvent,
    CreateEvent,
    LogEvent,
    NullTracer,
    StorageEvent,
    Tracer,
)
from repro.utils import rlp
from repro.utils.hexutil import (
    ADDRESS_MASK,
    WORD_MASK,
    ceil32,
    from_signed,
    to_signed,
    word_to_address,
)
from repro.utils.keccak import keccak256

STACK_LIMIT = 1024
MAX_CODE_SIZE = 24_576  # EIP-170
CALL_STIPEND = 2_300


@dataclass(slots=True)
class Message:
    """One call or create request entering the interpreter."""

    sender: bytes
    to: bytes | None          # None requests contract creation
    value: int = 0
    data: bytes = b""
    gas: int = 10_000_000
    is_static: bool = False
    # For DELEGATECALL/CALLCODE the executing code and the storage context
    # differ; when unset both default to ``to``.
    code_address: bytes | None = None
    storage_address: bytes | None = None
    create_salt: int | None = None  # set for CREATE2
    depth: int = 0


@dataclass(slots=True)
class CallResult:
    """Outcome of a call or create."""

    success: bool
    output: bytes = b""
    gas_used: int = 0
    error: str | None = None
    created_address: bytes | None = None

    def __bool__(self) -> bool:
        return self.success


@dataclass(slots=True)
class Frame:
    """Mutable execution state of one call frame."""

    code: bytes
    calldata: bytes
    storage_address: bytes
    code_address: bytes
    caller: bytes
    value: int
    gas: int
    is_static: bool
    depth: int
    stack: list[int] = field(default_factory=list)
    memory: bytearray = field(default_factory=bytearray)
    pc: int = 0
    return_data: bytes = b""
    jumpdests: frozenset[int] = frozenset()

    # --- stack -----------------------------------------------------------
    def push(self, word: int) -> None:
        if len(self.stack) >= STACK_LIMIT:
            raise StackOverflow(f"stack overflow at pc={self.pc}")
        self.stack.append(word & WORD_MASK)

    def pop(self) -> int:
        if not self.stack:
            raise StackUnderflow(f"stack underflow at pc={self.pc}")
        return self.stack.pop()

    def popn(self, count: int) -> list[int]:
        if len(self.stack) < count:
            raise StackUnderflow(
                f"stack underflow at pc={self.pc}: need {count}, have {len(self.stack)}"
            )
        taken = self.stack[-count:]
        del self.stack[-count:]
        taken.reverse()  # first popped element first
        return taken

    # --- gas ---------------------------------------------------------------
    def charge(self, amount: int) -> None:
        if self.gas < amount:
            raise OutOfGas(f"out of gas at pc={self.pc}")
        self.gas -= amount

    # --- memory ------------------------------------------------------------
    def expand_memory(self, offset: int, size: int) -> None:
        if size == 0:
            return
        end = offset + size
        if end > len(self.memory):
            new_len = ceil32(end)
            # Quadratic memory cost (Yellow Paper C_mem), charged on deltas.
            old_words = len(self.memory) // 32
            new_words = new_len // 32
            cost = (3 * (new_words - old_words)
                    + (new_words * new_words - old_words * old_words) // 512)
            self.charge(cost)
            self.memory.extend(b"\x00" * (new_len - len(self.memory)))

    def read_memory(self, offset: int, size: int) -> bytes:
        if size == 0:
            return b""
        self.expand_memory(offset, size)
        return bytes(self.memory[offset:offset + size])

    def write_memory(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self.expand_memory(offset, len(data))
        self.memory[offset:offset + len(data)] = data


class EVM:
    """Executes messages against a :class:`StateBackend`."""

    def __init__(
        self,
        state: StateBackend,
        block: BlockContext | None = None,
        tx: TransactionContext | None = None,
        config: ExecutionConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.state = state
        self.block = block or BlockContext()
        self.tx = tx or TransactionContext()
        self.config = config or ExecutionConfig()
        self.tracer = tracer or NullTracer()
        self._instructions_left = 0

    # ------------------------------------------------------------------ API
    def execute(self, message: Message) -> CallResult:
        """Run a top-level message (external transaction entry point)."""
        # Each EVM frame costs several Python frames; the 1024-frame EVM
        # depth limit therefore needs more headroom than CPython's default
        # recursion limit provides.
        import sys
        if sys.getrecursionlimit() < 20_000:
            sys.setrecursionlimit(20_000)
        self._instructions_left = self.config.instruction_budget
        if message.to is None:
            return self._create(message)
        return self._call(message)

    # ------------------------------------------------------------- internals
    def _call(self, message: Message) -> CallResult:
        if message.depth > self.config.call_depth_limit:
            return CallResult(False, error=str(CallDepthExceeded()))
        assert message.to is not None
        storage_address = message.storage_address or message.to
        code_address = message.code_address or message.to

        snapshot = self.state.snapshot()
        if not message.is_static and message.storage_address is None:
            # Plain CALL transfers value; DELEGATECALL/CALLCODE set an
            # explicit storage_address and move no funds here.
            if not transfer_value(self.state, message.sender, message.to,
                                  message.value):
                return CallResult(False, error="insufficient balance for transfer")

        if is_precompile(code_address):
            output = run_precompile(code_address, message.data)
            return CallResult(True, output=output, gas_used=0)

        code = self.state.get_code(code_address)
        if not code:
            # Calling an account with no code trivially succeeds.
            return CallResult(True, output=b"", gas_used=0)

        frame = Frame(
            code=code,
            calldata=message.data,
            storage_address=storage_address,
            code_address=code_address,
            caller=message.sender,
            value=message.value,
            gas=message.gas,
            is_static=message.is_static,
            depth=message.depth,
            jumpdests=_scan_jumpdests(code),
        )
        try:
            output = self._run(frame)
            return CallResult(True, output=output, gas_used=message.gas - frame.gas)
        except Revert as revert:
            self.state.revert(snapshot)
            return CallResult(False, output=revert.output,
                              gas_used=message.gas - frame.gas, error="revert")
        except EVMError as error:
            self.state.revert(snapshot)
            return CallResult(False, gas_used=message.gas,
                              error=f"{type(error).__name__}: {error}")

    def _create(self, message: Message, init_code: bytes | None = None) -> CallResult:
        if message.depth > self.config.call_depth_limit:
            return CallResult(False, error=str(CallDepthExceeded()))
        init_code = message.data if init_code is None else init_code
        sender_nonce = self.state.get_nonce(message.sender)
        new_address = self._derive_create_address(
            message.sender, sender_nonce, message.create_salt, init_code
        )
        snapshot = self.state.snapshot()
        self.state.set_nonce(message.sender, sender_nonce + 1)
        if self.state.get_code(new_address):
            return CallResult(False, error="address collision on create")
        if not transfer_value(self.state, message.sender, new_address, message.value):
            self.state.revert(snapshot)
            return CallResult(False, error="insufficient balance for create")
        self.state.set_nonce(new_address, 1)

        frame = Frame(
            code=init_code,
            calldata=b"",
            storage_address=new_address,
            code_address=new_address,
            caller=message.sender,
            value=message.value,
            gas=message.gas,
            is_static=False,
            depth=message.depth,
            jumpdests=_scan_jumpdests(init_code),
        )
        try:
            runtime_code = self._run(frame)
        except Revert as revert:
            self.state.revert(snapshot)
            return CallResult(False, output=revert.output,
                              gas_used=message.gas - frame.gas, error="revert")
        except EVMError as error:
            self.state.revert(snapshot)
            return CallResult(False, gas_used=message.gas,
                              error=f"{type(error).__name__}: {error}")
        if len(runtime_code) > MAX_CODE_SIZE:
            self.state.revert(snapshot)
            return CallResult(False, error="created code exceeds EIP-170 limit")
        self.state.set_code(new_address, runtime_code)
        self.tracer.on_create(CreateEvent(
            kind="CREATE2" if message.create_salt is not None else "CREATE",
            depth=message.depth,
            creator=message.sender,
            new_address=new_address,
            init_code=init_code,
            value=message.value,
        ))
        return CallResult(True, output=runtime_code,
                          gas_used=message.gas - frame.gas,
                          created_address=new_address)

    def _derive_create_address(self, sender: bytes, nonce: int,
                               salt: int | None, init_code: bytes) -> bytes:
        if self.config.fixed_create_address is not None:
            # §4.2: during emulation, place created contracts at a sentinel
            # address so the emulator can recognize and re-enter them.
            return self.config.fixed_create_address
        if salt is not None:
            preimage = (b"\xff" + sender + salt.to_bytes(32, "big")
                        + keccak256(init_code))
            return keccak256(preimage)[12:]
        preimage = rlp.encode_list([rlp.encode_bytes(sender), rlp.encode_int(nonce)])
        return keccak256(preimage)[12:]

    # ----------------------------------------------------------- dispatcher
    def _run(self, frame: Frame) -> bytes:
        """Interpret ``frame`` until it halts; returns its output bytes."""
        code = frame.code
        code_len = len(code)
        while frame.pc < code_len:
            if self._instructions_left <= 0:
                raise ExecutionTimeout("instruction budget exhausted")
            self._instructions_left -= 1

            opcode_value = code[frame.pc]
            opcode = op.OPCODES.get(opcode_value)
            if opcode is None or opcode_value == op.INVALID:
                raise InvalidOpcode(f"invalid opcode 0x{opcode_value:02x} "
                                    f"at pc={frame.pc}")
            self.tracer.on_instruction(frame, frame.pc, opcode_value)
            frame.charge(opcode.base_gas)

            next_pc = frame.pc + 1
            if opcode.immediate_size:
                immediate = code[next_pc:next_pc + opcode.immediate_size]
                frame.push(int.from_bytes(immediate, "big"))
                frame.pc = next_pc + opcode.immediate_size
                continue

            handler_result = self._step(frame, opcode_value)
            if handler_result is not None:
                return handler_result
            if frame.pc == next_pc - 1:
                # Handler did not jump; advance sequentially.
                frame.pc = next_pc
        return b""

    def _step(self, frame: Frame, opcode_value: int) -> bytes | None:
        """Execute one non-push instruction; non-None return halts the frame."""
        stack = frame.stack

        # Arithmetic / logic -------------------------------------------------
        if opcode_value == op.STOP:
            return b""
        if opcode_value == op.ADD:
            a, b = frame.popn(2)
            frame.push(a + b)
        elif opcode_value == op.MUL:
            a, b = frame.popn(2)
            frame.push(a * b)
        elif opcode_value == op.SUB:
            a, b = frame.popn(2)
            frame.push(a - b)
        elif opcode_value == op.DIV:
            a, b = frame.popn(2)
            frame.push(a // b if b else 0)
        elif opcode_value == op.SDIV:
            a, b = frame.popn(2)
            if b == 0:
                frame.push(0)
            else:
                sa, sb = to_signed(a), to_signed(b)
                quotient = abs(sa) // abs(sb)
                frame.push(from_signed(-quotient if (sa < 0) != (sb < 0) else quotient))
        elif opcode_value == op.MOD:
            a, b = frame.popn(2)
            frame.push(a % b if b else 0)
        elif opcode_value == op.SMOD:
            a, b = frame.popn(2)
            if b == 0:
                frame.push(0)
            else:
                sa, sb = to_signed(a), to_signed(b)
                remainder = abs(sa) % abs(sb)
                frame.push(from_signed(-remainder if sa < 0 else remainder))
        elif opcode_value == op.ADDMOD:
            a, b, n = frame.popn(3)
            frame.push((a + b) % n if n else 0)
        elif opcode_value == op.MULMOD:
            a, b, n = frame.popn(3)
            frame.push((a * b) % n if n else 0)
        elif opcode_value == op.EXP:
            base, exponent = frame.popn(2)
            exponent_bytes = (exponent.bit_length() + 7) // 8
            frame.charge(50 * exponent_bytes)
            frame.push(pow(base, exponent, 1 << 256))
        elif opcode_value == op.SIGNEXTEND:
            width, value = frame.popn(2)
            if width < 31:
                sign_bit = 1 << (8 * (width + 1) - 1)
                mask = (1 << (8 * (width + 1))) - 1
                truncated = value & mask
                frame.push(truncated | (WORD_MASK ^ mask) if truncated & sign_bit
                           else truncated)
            else:
                frame.push(value)
        elif opcode_value == op.LT:
            a, b = frame.popn(2)
            frame.push(int(a < b))
        elif opcode_value == op.GT:
            a, b = frame.popn(2)
            frame.push(int(a > b))
        elif opcode_value == op.SLT:
            a, b = frame.popn(2)
            frame.push(int(to_signed(a) < to_signed(b)))
        elif opcode_value == op.SGT:
            a, b = frame.popn(2)
            frame.push(int(to_signed(a) > to_signed(b)))
        elif opcode_value == op.EQ:
            a, b = frame.popn(2)
            frame.push(int(a == b))
        elif opcode_value == op.ISZERO:
            frame.push(int(frame.pop() == 0))
        elif opcode_value == op.AND:
            a, b = frame.popn(2)
            frame.push(a & b)
        elif opcode_value == op.OR:
            a, b = frame.popn(2)
            frame.push(a | b)
        elif opcode_value == op.XOR:
            a, b = frame.popn(2)
            frame.push(a ^ b)
        elif opcode_value == op.NOT:
            frame.push(frame.pop() ^ WORD_MASK)
        elif opcode_value == op.BYTE:
            index, value = frame.popn(2)
            frame.push((value >> (8 * (31 - index))) & 0xFF if index < 32 else 0)
        elif opcode_value == op.SHL:
            shift, value = frame.popn(2)
            frame.push(value << shift if shift < 256 else 0)
        elif opcode_value == op.SHR:
            shift, value = frame.popn(2)
            frame.push(value >> shift if shift < 256 else 0)
        elif opcode_value == op.SAR:
            shift, value = frame.popn(2)
            signed = to_signed(value)
            if shift >= 256:
                frame.push(from_signed(-1 if signed < 0 else 0))
            else:
                frame.push(from_signed(signed >> shift))
        elif opcode_value == op.KECCAK256:
            offset, size = frame.popn(2)
            frame.charge(6 * (ceil32(size) // 32))
            frame.push(int.from_bytes(keccak256(frame.read_memory(offset, size)),
                                      "big"))

        # Environment --------------------------------------------------------
        elif opcode_value == op.ADDRESS:
            frame.push(int.from_bytes(frame.storage_address, "big"))
        elif opcode_value == op.BALANCE:
            frame.push(self.state.get_balance(word_to_address(frame.pop())))
        elif opcode_value == op.ORIGIN:
            frame.push(int.from_bytes(self.tx.origin, "big"))
        elif opcode_value == op.CALLER:
            frame.push(int.from_bytes(frame.caller, "big"))
        elif opcode_value == op.CALLVALUE:
            frame.push(frame.value)
        elif opcode_value == op.CALLDATALOAD:
            offset = frame.pop()
            chunk = frame.calldata[offset:offset + 32]
            frame.push(int.from_bytes(chunk.ljust(32, b"\x00"), "big"))
        elif opcode_value == op.CALLDATASIZE:
            frame.push(len(frame.calldata))
        elif opcode_value == op.CALLDATACOPY:
            dest, src, size = frame.popn(3)
            frame.charge(3 * (ceil32(size) // 32))
            chunk = frame.calldata[src:src + size]
            frame.write_memory(dest, chunk.ljust(size, b"\x00"))
        elif opcode_value == op.CODESIZE:
            frame.push(len(frame.code))
        elif opcode_value == op.CODECOPY:
            dest, src, size = frame.popn(3)
            frame.charge(3 * (ceil32(size) // 32))
            chunk = frame.code[src:src + size]
            frame.write_memory(dest, chunk.ljust(size, b"\x00"))
        elif opcode_value == op.GASPRICE:
            frame.push(self.tx.gas_price)
        elif opcode_value == op.EXTCODESIZE:
            frame.push(len(self.state.get_code(word_to_address(frame.pop()))))
        elif opcode_value == op.EXTCODECOPY:
            address_word, dest, src, size = frame.popn(4)
            frame.charge(3 * (ceil32(size) // 32))
            external = self.state.get_code(word_to_address(address_word))
            chunk = external[src:src + size]
            frame.write_memory(dest, chunk.ljust(size, b"\x00"))
        elif opcode_value == op.RETURNDATASIZE:
            frame.push(len(frame.return_data))
        elif opcode_value == op.RETURNDATACOPY:
            dest, src, size = frame.popn(3)
            if src + size > len(frame.return_data):
                raise InvalidOpcode("RETURNDATACOPY out of bounds")
            frame.charge(3 * (ceil32(size) // 32))
            frame.write_memory(dest, frame.return_data[src:src + size])
        elif opcode_value == op.EXTCODEHASH:
            external = self.state.get_code(word_to_address(frame.pop()))
            frame.push(int.from_bytes(keccak256(external), "big") if external else 0)

        # Block context --------------------------------------------------------
        elif opcode_value == op.BLOCKHASH:
            frame.push(self.block.block_hash(frame.pop()))
        elif opcode_value == op.COINBASE:
            frame.push(int.from_bytes(self.block.coinbase, "big"))
        elif opcode_value == op.TIMESTAMP:
            frame.push(self.block.timestamp)
        elif opcode_value == op.NUMBER:
            frame.push(self.block.number)
        elif opcode_value == op.DIFFICULTY:
            frame.push(self.block.prev_randao)
        elif opcode_value == op.GASLIMIT:
            frame.push(self.block.gas_limit)
        elif opcode_value == op.CHAINID:
            frame.push(self.block.chain_id)
        elif opcode_value == op.SELFBALANCE:
            frame.push(self.state.get_balance(frame.storage_address))
        elif opcode_value == op.BASEFEE:
            frame.push(self.block.base_fee)

        # Stack / memory / storage --------------------------------------------
        elif opcode_value == op.POP:
            frame.pop()
        elif opcode_value == op.MLOAD:
            offset = frame.pop()
            frame.push(int.from_bytes(frame.read_memory(offset, 32), "big"))
        elif opcode_value == op.MSTORE:
            offset, value = frame.popn(2)
            frame.write_memory(offset, value.to_bytes(32, "big"))
        elif opcode_value == op.MSTORE8:
            offset, value = frame.popn(2)
            frame.write_memory(offset, bytes([value & 0xFF]))
        elif opcode_value == op.SLOAD:
            slot = frame.pop()
            value = self.state.get_storage(frame.storage_address, slot)
            self.tracer.on_storage(StorageEvent(
                "SLOAD", frame.depth, frame.storage_address,
                frame.code_address, slot, value, frame.pc))
            frame.push(value)
        elif opcode_value == op.SSTORE:
            if frame.is_static:
                raise WriteProtection("SSTORE inside STATICCALL")
            slot, value = frame.popn(2)
            self.tracer.on_storage(StorageEvent(
                "SSTORE", frame.depth, frame.storage_address,
                frame.code_address, slot, value, frame.pc))
            self.state.set_storage(frame.storage_address, slot, value)
        elif opcode_value == op.JUMP:
            target = frame.pop()
            if target not in frame.jumpdests:
                raise InvalidJump(f"jump to non-JUMPDEST offset {target}")
            frame.pc = target
            return None
        elif opcode_value == op.JUMPI:
            target, condition = frame.popn(2)
            if condition:
                if target not in frame.jumpdests:
                    raise InvalidJump(f"jumpi to non-JUMPDEST offset {target}")
                frame.pc = target
                return None
        elif opcode_value == op.PC:
            frame.push(frame.pc)
        elif opcode_value == op.MSIZE:
            frame.push(len(frame.memory))
        elif opcode_value == op.GAS:
            frame.push(frame.gas)
        elif opcode_value == op.JUMPDEST:
            pass

        # DUP / SWAP / LOG -----------------------------------------------------
        elif 0x80 <= opcode_value <= 0x8F:
            depth = opcode_value - 0x7F
            if len(stack) < depth:
                raise StackUnderflow(f"DUP{depth} underflow at pc={frame.pc}")
            frame.push(stack[-depth])
        elif 0x90 <= opcode_value <= 0x9F:
            depth = opcode_value - 0x8F
            if len(stack) < depth + 1:
                raise StackUnderflow(f"SWAP{depth} underflow at pc={frame.pc}")
            stack[-1], stack[-depth - 1] = stack[-depth - 1], stack[-1]
        elif op.LOG0 <= opcode_value <= op.LOG4:
            if frame.is_static:
                raise WriteProtection("LOG inside STATICCALL")
            topic_count = opcode_value - op.LOG0
            offset, size = frame.popn(2)
            topics = tuple(frame.popn(topic_count))
            payload = frame.read_memory(offset, size)
            self.tracer.on_log(LogEvent(
                emitter=frame.storage_address,
                topics=topics,
                data=payload,
                depth=frame.depth,
            ))

        # Calls and creates ------------------------------------------------------
        elif opcode_value in (op.CALL, op.CALLCODE, op.DELEGATECALL, op.STATICCALL):
            self._do_call(frame, opcode_value)
        elif opcode_value in (op.CREATE, op.CREATE2):
            self._do_create(frame, opcode_value)

        # Halting -----------------------------------------------------------------
        elif opcode_value == op.RETURN:
            offset, size = frame.popn(2)
            return frame.read_memory(offset, size)
        elif opcode_value == op.REVERT:
            offset, size = frame.popn(2)
            raise Revert(frame.read_memory(offset, size))
        elif opcode_value == op.SELFDESTRUCT:
            if frame.is_static:
                raise WriteProtection("SELFDESTRUCT inside STATICCALL")
            beneficiary = word_to_address(frame.pop())
            balance = self.state.get_balance(frame.storage_address)
            self.state.set_balance(frame.storage_address, 0)
            self.state.set_balance(
                beneficiary, self.state.get_balance(beneficiary) + balance)
            self.state.mark_destroyed(frame.storage_address)
            return b""
        else:  # pragma: no cover - table and dispatcher disagree
            raise InvalidOpcode(f"unhandled opcode 0x{opcode_value:02x}")
        return None

    # --------------------------------------------------------------- sub-calls
    def _do_call(self, frame: Frame, opcode_value: int) -> None:
        if opcode_value in (op.CALL, op.CALLCODE):
            (gas_requested, target_word, value,
             in_offset, in_size, out_offset, out_size) = frame.popn(7)
        else:
            (gas_requested, target_word,
             in_offset, in_size, out_offset, out_size) = frame.popn(6)
            value = 0

        kind = {op.CALL: "CALL", op.CALLCODE: "CALLCODE",
                op.DELEGATECALL: "DELEGATECALL", op.STATICCALL: "STATICCALL"}[opcode_value]
        if kind == "CALL" and frame.is_static and value:
            raise WriteProtection("value-bearing CALL inside STATICCALL")

        target = word_to_address(target_word & ADDRESS_MASK)
        input_data = frame.read_memory(in_offset, in_size)
        frame.expand_memory(out_offset, out_size)

        # EIP-150 63/64 rule with the value stipend.
        gas_available = frame.gas - frame.gas // 64
        gas_forwarded = min(gas_requested, gas_available)
        frame.charge(gas_forwarded)
        if value:
            gas_forwarded += CALL_STIPEND

        self.tracer.on_call(CallEvent(
            kind=kind,
            depth=frame.depth,
            caller_code_address=frame.code_address,
            caller_storage_address=frame.storage_address,
            caller_calldata=frame.calldata,
            target=target,
            input_data=input_data,
            value=value if kind in ("CALL", "CALLCODE") else frame.value,
            pc=frame.pc,
        ))

        if kind == "CALL":
            message = Message(
                sender=frame.storage_address, to=target, value=value,
                data=input_data, gas=gas_forwarded,
                is_static=frame.is_static, depth=frame.depth + 1)
        elif kind == "CALLCODE":
            message = Message(
                sender=frame.storage_address, to=frame.storage_address,
                value=value, data=input_data, gas=gas_forwarded,
                is_static=frame.is_static, code_address=target,
                storage_address=frame.storage_address, depth=frame.depth + 1)
        elif kind == "DELEGATECALL":
            # The defining semantics of the proxy pattern: the callee's code
            # runs with the *caller's* storage, caller identity and value.
            message = Message(
                sender=frame.caller, to=frame.storage_address,
                value=frame.value, data=input_data, gas=gas_forwarded,
                is_static=frame.is_static, code_address=target,
                storage_address=frame.storage_address, depth=frame.depth + 1)
        else:  # STATICCALL
            message = Message(
                sender=frame.storage_address, to=target, value=0,
                data=input_data, gas=gas_forwarded,
                is_static=True, depth=frame.depth + 1)

        result = self._call(message)
        frame.gas += gas_forwarded - result.gas_used
        frame.return_data = result.output
        if out_size:
            frame.write_memory(out_offset, result.output[:out_size].ljust(
                min(out_size, len(result.output)), b"\x00"))
        frame.push(int(result.success))

    def _do_create(self, frame: Frame, opcode_value: int) -> None:
        if frame.is_static:
            raise WriteProtection("CREATE inside STATICCALL")
        if opcode_value == op.CREATE2:
            value, offset, size, salt = frame.popn(4)
        else:
            value, offset, size = frame.popn(3)
            salt = None
        init_code = frame.read_memory(offset, size)
        gas_forwarded = frame.gas - frame.gas // 64
        frame.charge(gas_forwarded)

        message = Message(
            sender=frame.storage_address, to=None, value=value,
            data=init_code, gas=gas_forwarded, create_salt=salt,
            depth=frame.depth + 1)
        result = self._create(message)
        frame.gas += gas_forwarded - result.gas_used
        frame.return_data = b"" if result.success else result.output
        frame.push(int.from_bytes(result.created_address, "big")
                   if result.success and result.created_address else 0)


def _scan_jumpdests(code: bytes) -> frozenset[int]:
    """Valid JUMPDEST offsets (skipping PUSH immediates), per EVM rules."""
    dests: set[int] = set()
    pc = 0
    code_len = len(code)
    while pc < code_len:
        byte = code[pc]
        if byte == op.JUMPDEST:
            dests.add(pc)
            pc += 1
        elif op.PUSH1 <= byte <= op.PUSH32:
            pc += 1 + (byte - op.PUSH0)
        else:
            pc += 1
    return frozenset(dests)
