"""The EVM instruction set (through the Shanghai fork).

Each opcode carries its mnemonic, the number of immediate operand bytes
(non-zero only for the ``PUSH1``..``PUSH32`` family), its stack consumption
and production, and a base gas cost.  Dynamic gas components (memory
expansion, cold/warm account access, copy costs) are handled by the
interpreter; the static table mirrors the Yellow Paper's ``W`` sets closely
enough for the paper's workloads.

The table intentionally covers the opcodes the paper's §4.2 calls out as
extensions over Octopus: ``CALL``, ``DELEGATECALL``, ``CREATE``, ``CREATE2``,
plus the block-environment opcodes (``NUMBER``, ``BLOCKHASH``, ``CHAINID``,
``BASEFEE``, ``COINBASE``, ...) that the emulator must answer with plausible
chain values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Opcode:
    """Static description of one EVM instruction."""

    value: int
    mnemonic: str
    immediate_size: int
    stack_inputs: int
    stack_outputs: int
    base_gas: int

    @property
    def is_push(self) -> bool:
        return PUSH0 <= self.value <= PUSH32

    @property
    def is_dup(self) -> bool:
        return 0x80 <= self.value <= 0x8F

    @property
    def is_swap(self) -> bool:
        return 0x90 <= self.value <= 0x9F

    @property
    def is_terminator(self) -> bool:
        """True when control flow cannot fall through this instruction."""
        return self.value in (STOP, JUMP, RETURN, REVERT, SELFDESTRUCT, INVALID)

    @property
    def is_jump(self) -> bool:
        return self.value in (JUMP, JUMPI)

    @property
    def is_call(self) -> bool:
        return self.value in (CALL, CALLCODE, DELEGATECALL, STATICCALL)


# Named opcode values used throughout the analyzers.
STOP = 0x00
ADD = 0x01
MUL = 0x02
SUB = 0x03
DIV = 0x04
SDIV = 0x05
MOD = 0x06
SMOD = 0x07
ADDMOD = 0x08
MULMOD = 0x09
EXP = 0x0A
SIGNEXTEND = 0x0B
LT = 0x10
GT = 0x11
SLT = 0x12
SGT = 0x13
EQ = 0x14
ISZERO = 0x15
AND = 0x16
OR = 0x17
XOR = 0x18
NOT = 0x19
BYTE = 0x1A
SHL = 0x1B
SHR = 0x1C
SAR = 0x1D
KECCAK256 = 0x20
ADDRESS = 0x30
BALANCE = 0x31
ORIGIN = 0x32
CALLER = 0x33
CALLVALUE = 0x34
CALLDATALOAD = 0x35
CALLDATASIZE = 0x36
CALLDATACOPY = 0x37
CODESIZE = 0x38
CODECOPY = 0x39
GASPRICE = 0x3A
EXTCODESIZE = 0x3B
EXTCODECOPY = 0x3C
RETURNDATASIZE = 0x3D
RETURNDATACOPY = 0x3E
EXTCODEHASH = 0x3F
BLOCKHASH = 0x40
COINBASE = 0x41
TIMESTAMP = 0x42
NUMBER = 0x43
DIFFICULTY = 0x44  # PREVRANDAO post-merge; same byte.
GASLIMIT = 0x45
CHAINID = 0x46
SELFBALANCE = 0x47
BASEFEE = 0x48
POP = 0x50
MLOAD = 0x51
MSTORE = 0x52
MSTORE8 = 0x53
SLOAD = 0x54
SSTORE = 0x55
JUMP = 0x56
JUMPI = 0x57
PC = 0x58
MSIZE = 0x59
GAS = 0x5A
JUMPDEST = 0x5B
PUSH0 = 0x5F
PUSH1 = 0x60
PUSH4 = 0x63
PUSH20 = 0x73
PUSH32 = 0x7F
DUP1 = 0x80
SWAP1 = 0x90
LOG0 = 0xA0
LOG4 = 0xA4
CREATE = 0xF0
CALL = 0xF1
CALLCODE = 0xF2
RETURN = 0xF3
DELEGATECALL = 0xF4
CREATE2 = 0xF5
STATICCALL = 0xFA
REVERT = 0xFD
INVALID = 0xFE
SELFDESTRUCT = 0xFF


def _build_table() -> dict[int, Opcode]:
    table: dict[int, Opcode] = {}

    def define(value: int, mnemonic: str, inputs: int, outputs: int,
               gas: int, immediate: int = 0) -> None:
        table[value] = Opcode(value, mnemonic, immediate, inputs, outputs, gas)

    define(STOP, "STOP", 0, 0, 0)
    define(ADD, "ADD", 2, 1, 3)
    define(MUL, "MUL", 2, 1, 5)
    define(SUB, "SUB", 2, 1, 3)
    define(DIV, "DIV", 2, 1, 5)
    define(SDIV, "SDIV", 2, 1, 5)
    define(MOD, "MOD", 2, 1, 5)
    define(SMOD, "SMOD", 2, 1, 5)
    define(ADDMOD, "ADDMOD", 3, 1, 8)
    define(MULMOD, "MULMOD", 3, 1, 8)
    define(EXP, "EXP", 2, 1, 10)
    define(SIGNEXTEND, "SIGNEXTEND", 2, 1, 5)
    define(LT, "LT", 2, 1, 3)
    define(GT, "GT", 2, 1, 3)
    define(SLT, "SLT", 2, 1, 3)
    define(SGT, "SGT", 2, 1, 3)
    define(EQ, "EQ", 2, 1, 3)
    define(ISZERO, "ISZERO", 1, 1, 3)
    define(AND, "AND", 2, 1, 3)
    define(OR, "OR", 2, 1, 3)
    define(XOR, "XOR", 2, 1, 3)
    define(NOT, "NOT", 1, 1, 3)
    define(BYTE, "BYTE", 2, 1, 3)
    define(SHL, "SHL", 2, 1, 3)
    define(SHR, "SHR", 2, 1, 3)
    define(SAR, "SAR", 2, 1, 3)
    define(KECCAK256, "KECCAK256", 2, 1, 30)
    define(ADDRESS, "ADDRESS", 0, 1, 2)
    define(BALANCE, "BALANCE", 1, 1, 100)
    define(ORIGIN, "ORIGIN", 0, 1, 2)
    define(CALLER, "CALLER", 0, 1, 2)
    define(CALLVALUE, "CALLVALUE", 0, 1, 2)
    define(CALLDATALOAD, "CALLDATALOAD", 1, 1, 3)
    define(CALLDATASIZE, "CALLDATASIZE", 0, 1, 2)
    define(CALLDATACOPY, "CALLDATACOPY", 3, 0, 3)
    define(CODESIZE, "CODESIZE", 0, 1, 2)
    define(CODECOPY, "CODECOPY", 3, 0, 3)
    define(GASPRICE, "GASPRICE", 0, 1, 2)
    define(EXTCODESIZE, "EXTCODESIZE", 1, 1, 100)
    define(EXTCODECOPY, "EXTCODECOPY", 4, 0, 100)
    define(RETURNDATASIZE, "RETURNDATASIZE", 0, 1, 2)
    define(RETURNDATACOPY, "RETURNDATACOPY", 3, 0, 3)
    define(EXTCODEHASH, "EXTCODEHASH", 1, 1, 100)
    define(BLOCKHASH, "BLOCKHASH", 1, 1, 20)
    define(COINBASE, "COINBASE", 0, 1, 2)
    define(TIMESTAMP, "TIMESTAMP", 0, 1, 2)
    define(NUMBER, "NUMBER", 0, 1, 2)
    define(DIFFICULTY, "DIFFICULTY", 0, 1, 2)
    define(GASLIMIT, "GASLIMIT", 0, 1, 2)
    define(CHAINID, "CHAINID", 0, 1, 2)
    define(SELFBALANCE, "SELFBALANCE", 0, 1, 5)
    define(BASEFEE, "BASEFEE", 0, 1, 2)
    define(POP, "POP", 1, 0, 2)
    define(MLOAD, "MLOAD", 1, 1, 3)
    define(MSTORE, "MSTORE", 2, 0, 3)
    define(MSTORE8, "MSTORE8", 2, 0, 3)
    define(SLOAD, "SLOAD", 1, 1, 100)
    define(SSTORE, "SSTORE", 2, 0, 100)
    define(JUMP, "JUMP", 1, 0, 8)
    define(JUMPI, "JUMPI", 2, 0, 10)
    define(PC, "PC", 0, 1, 2)
    define(MSIZE, "MSIZE", 0, 1, 2)
    define(GAS, "GAS", 0, 1, 2)
    define(JUMPDEST, "JUMPDEST", 0, 0, 1)
    define(PUSH0, "PUSH0", 0, 1, 2)
    for width in range(1, 33):
        define(PUSH0 + width, f"PUSH{width}", 0, 1, 3, immediate=width)
    for depth in range(1, 17):
        define(0x80 + depth - 1, f"DUP{depth}", depth, depth + 1, 3)
    for depth in range(1, 17):
        define(0x90 + depth - 1, f"SWAP{depth}", depth + 1, depth + 1, 3)
    for topics in range(5):
        define(LOG0 + topics, f"LOG{topics}", 2 + topics, 0, 375 * (topics + 1))
    define(CREATE, "CREATE", 3, 1, 32000)
    define(CALL, "CALL", 7, 1, 100)
    define(CALLCODE, "CALLCODE", 7, 1, 100)
    define(RETURN, "RETURN", 2, 0, 0)
    define(DELEGATECALL, "DELEGATECALL", 6, 1, 100)
    define(CREATE2, "CREATE2", 4, 1, 32000)
    define(STATICCALL, "STATICCALL", 6, 1, 100)
    define(REVERT, "REVERT", 2, 0, 0)
    define(INVALID, "INVALID", 0, 0, 0)
    define(SELFDESTRUCT, "SELFDESTRUCT", 1, 0, 5000)
    return table


OPCODES: dict[int, Opcode] = _build_table()

BY_MNEMONIC: dict[str, Opcode] = {op.mnemonic: op for op in OPCODES.values()}


def opcode_for(value: int) -> Opcode | None:
    """Look up an opcode by byte value; ``None`` for unassigned bytes."""
    return OPCODES.get(value)


def push_opcode(width: int) -> Opcode:
    """Return the ``PUSH{width}`` opcode (width 0..32)."""
    if not 0 <= width <= 32:
        raise ValueError(f"PUSH width out of range: {width}")
    return OPCODES[PUSH0 + width]
