"""State backends the interpreter executes against.

The interpreter only touches accounts through the small
:class:`StateBackend` protocol, so the same EVM core serves two masters:

* the full simulated blockchain (``repro.chain.state.WorldState``), where
  writes are persistent and become part of block history; and
* the ProxioN emulator, which wraps any read-only snapshot in an
  :class:`OverlayState` so crafted-calldata executions never disturb the
  underlying chain.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.utils.keccak import keccak256

EMPTY_CODE_HASH = keccak256(b"")


@runtime_checkable
class StateBackend(Protocol):
    """Minimal account-state surface required by the EVM interpreter."""

    def get_code(self, address: bytes) -> bytes: ...

    def get_storage(self, address: bytes, slot: int) -> int: ...

    def set_storage(self, address: bytes, slot: int, value: int) -> None: ...

    def get_balance(self, address: bytes) -> int: ...

    def set_balance(self, address: bytes, value: int) -> None: ...

    def get_nonce(self, address: bytes) -> int: ...

    def set_nonce(self, address: bytes, value: int) -> None: ...

    def set_code(self, address: bytes, code: bytes) -> None: ...

    def account_exists(self, address: bytes) -> bool: ...

    def mark_destroyed(self, address: bytes) -> None: ...

    def snapshot(self) -> object: ...

    def revert(self, snapshot: object) -> None: ...


class MemoryState:
    """A plain in-memory :class:`StateBackend` (tests and ad-hoc runs)."""

    def __init__(self) -> None:
        self._code: dict[bytes, bytes] = {}
        self._storage: dict[tuple[bytes, int], int] = {}
        self._balance: dict[bytes, int] = {}
        self._nonce: dict[bytes, int] = {}
        self._destroyed: set[bytes] = set()

    def snapshot(self) -> tuple:
        return (
            dict(self._code),
            dict(self._storage),
            dict(self._balance),
            dict(self._nonce),
            set(self._destroyed),
        )

    def revert(self, snapshot: tuple) -> None:
        self._code, self._storage, self._balance, self._nonce, self._destroyed = (
            dict(snapshot[0]),
            dict(snapshot[1]),
            dict(snapshot[2]),
            dict(snapshot[3]),
            set(snapshot[4]),
        )

    def get_code(self, address: bytes) -> bytes:
        return self._code.get(address, b"")

    def set_code(self, address: bytes, code: bytes) -> None:
        self._code[address] = code

    def get_storage(self, address: bytes, slot: int) -> int:
        return self._storage.get((address, slot), 0)

    def set_storage(self, address: bytes, slot: int, value: int) -> None:
        if value:
            self._storage[(address, slot)] = value
        else:
            self._storage.pop((address, slot), None)

    def get_balance(self, address: bytes) -> int:
        return self._balance.get(address, 0)

    def set_balance(self, address: bytes, value: int) -> None:
        self._balance[address] = value

    def get_nonce(self, address: bytes) -> int:
        return self._nonce.get(address, 0)

    def set_nonce(self, address: bytes, value: int) -> None:
        self._nonce[address] = value

    def account_exists(self, address: bytes) -> bool:
        return (
            address in self._code
            or address in self._balance
            or address in self._nonce
        )

    def mark_destroyed(self, address: bytes) -> None:
        self._destroyed.add(address)
        self._code.pop(address, None)


class OverlayState:
    """Copy-on-write view over a read-only base state.

    All writes land in the overlay; reads fall through to the base unless
    shadowed.  ``revert()``/``snapshot()`` give the interpreter cheap frame
    rollback for failed sub-calls.
    """

    def __init__(self, base: StateBackend) -> None:
        self._base = base
        self._code: dict[bytes, bytes] = {}
        self._storage: dict[tuple[bytes, int], int] = {}
        self._balance: dict[bytes, int] = {}
        self._nonce: dict[bytes, int] = {}
        self._destroyed: set[bytes] = set()

    def snapshot(self) -> tuple:
        return (
            dict(self._code),
            dict(self._storage),
            dict(self._balance),
            dict(self._nonce),
            set(self._destroyed),
        )

    def revert(self, snapshot: tuple) -> None:
        self._code, self._storage, self._balance, self._nonce, self._destroyed = (
            dict(snapshot[0]),
            dict(snapshot[1]),
            dict(snapshot[2]),
            dict(snapshot[3]),
            set(snapshot[4]),
        )

    def get_code(self, address: bytes) -> bytes:
        if address in self._destroyed:
            return b""
        if address in self._code:
            return self._code[address]
        return self._base.get_code(address)

    def set_code(self, address: bytes, code: bytes) -> None:
        self._code[address] = code
        self._destroyed.discard(address)

    def get_storage(self, address: bytes, slot: int) -> int:
        key = (address, slot)
        if key in self._storage:
            return self._storage[key]
        if address in self._destroyed:
            return 0
        return self._base.get_storage(address, slot)

    def set_storage(self, address: bytes, slot: int, value: int) -> None:
        self._storage[(address, slot)] = value

    def get_balance(self, address: bytes) -> int:
        if address in self._balance:
            return self._balance[address]
        return self._base.get_balance(address)

    def set_balance(self, address: bytes, value: int) -> None:
        self._balance[address] = value

    def get_nonce(self, address: bytes) -> int:
        if address in self._nonce:
            return self._nonce[address]
        return self._base.get_nonce(address)

    def set_nonce(self, address: bytes, value: int) -> None:
        self._nonce[address] = value

    def account_exists(self, address: bytes) -> bool:
        if address in self._destroyed:
            return False
        if address in self._code or address in self._balance or address in self._nonce:
            return True
        return self._base.account_exists(address)

    def mark_destroyed(self, address: bytes) -> None:
        self._destroyed.add(address)
        self._code[address] = b""


def transfer_value(state: StateBackend, sender: bytes, recipient: bytes,
                   value: int) -> bool:
    """Move ``value`` wei; returns ``False`` when the sender lacks funds."""
    if value == 0:
        return True
    balance = state.get_balance(sender)
    if balance < value:
        return False
    state.set_balance(sender, balance - value)
    state.set_balance(recipient, state.get_balance(recipient) + value)
    return True
