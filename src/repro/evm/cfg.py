"""Control-flow recovery: basic blocks and dispatcher structure.

§5.1 of the paper identifies function signatures by finding "the jump
instructions corresponding to code blocks of functions" (implemented there
over Panoramix).  This module is that substrate built from scratch:

* :func:`build_cfg` — split the linear disassembly into *basic blocks*
  (leaders at offset 0, at every JUMPDEST, and after every jump/terminator)
  and connect them with static edges (fallthrough, direct ``PUSH→JUMP(I)``
  targets);
* :class:`ControlFlowGraph` — reachability, block lookup;
* :func:`dispatcher_functions` — walk the dispatcher chain from the entry
  block and map each compared selector to the basic block implementing the
  function body, giving the selector → body-offset table the paper's
  function-collision detector needs (and a second, CFG-based implementation
  to cross-check :func:`repro.core.signature_extractor.dispatcher_selectors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm import opcodes as op
from repro.evm.disassembler import Disassembly, Instruction, disassemble


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)   # block start offsets

    @property
    def end(self) -> int:
        if not self.instructions:
            return self.start
        return self.instructions[-1].next_offset

    @property
    def terminator(self) -> Instruction | None:
        return self.instructions[-1] if self.instructions else None

    def __len__(self) -> int:
        return len(self.instructions)


class ControlFlowGraph:
    """Blocks indexed by start offset, with static edges."""

    def __init__(self, disassembly: Disassembly,
                 blocks: dict[int, BasicBlock]) -> None:
        self.disassembly = disassembly
        self.blocks = blocks

    def block_at(self, offset: int) -> BasicBlock | None:
        return self.blocks.get(offset)

    def entry(self) -> BasicBlock | None:
        return self.blocks.get(0)

    def reachable_from(self, start: int = 0) -> set[int]:
        """Offsets of blocks reachable from ``start`` along static edges."""
        seen: set[int] = set()
        frontier = [start]
        while frontier:
            offset = frontier.pop()
            if offset in seen or offset not in self.blocks:
                continue
            seen.add(offset)
            frontier.extend(self.blocks[offset].successors)
        return seen

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(sorted(self.blocks.values(), key=lambda b: b.start))


def build_cfg(code: bytes | Disassembly) -> ControlFlowGraph:
    """Construct the static CFG of runtime bytecode."""
    disassembly = code if isinstance(code, Disassembly) else disassemble(code)
    instructions = disassembly.instructions

    # Pass 1: leaders.
    leaders: set[int] = {0} if instructions else set()
    for index, instruction in enumerate(instructions):
        value = instruction.opcode.value
        if value == op.JUMPDEST:
            leaders.add(instruction.offset)
        if (instruction.opcode.is_jump or instruction.opcode.is_terminator):
            if index + 1 < len(instructions):
                leaders.add(instructions[index + 1].offset)

    # Pass 2: block bodies.
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for instruction in instructions:
        if instruction.offset in leaders:
            current = BasicBlock(start=instruction.offset)
            blocks[instruction.offset] = current
        if current is None:  # pragma: no cover - offset 0 is always a leader
            current = BasicBlock(start=instruction.offset)
            blocks[instruction.offset] = current
        current.instructions.append(instruction)
        if instruction.opcode.is_jump or instruction.opcode.is_terminator:
            current = None

    # Pass 3: static edges.
    for block in blocks.values():
        terminator = block.terminator
        if terminator is None:
            continue
        value = terminator.opcode.value
        # Direct PUSH→JUMP(I) targets.
        if terminator.opcode.is_jump and len(block.instructions) >= 2:
            pushed = block.instructions[-2]
            if pushed.opcode.is_push and pushed.operand:
                target = pushed.operand_int
                if target in disassembly.jumpdests:
                    block.successors.append(target)
        # Fallthrough for everything that can fall through.
        if not terminator.opcode.is_terminator:
            fall = terminator.next_offset
            if fall in blocks:
                block.successors.append(fall)
    return ControlFlowGraph(disassembly, blocks)


@dataclass(frozen=True, slots=True)
class DispatcherEntry:
    """One function the dispatcher routes to."""

    selector: bytes
    body_offset: int


def dispatcher_functions(code: bytes | Disassembly) -> list[DispatcherEntry]:
    """Recover the selector → function-body table from the dispatcher chain.

    Walks blocks from the entry along fallthrough edges; a block whose
    instructions contain ``PUSH4 sig`` … ``EQ`` … ``PUSH target JUMPI``
    contributes one entry.  Stops when the chain leaves dispatcher-shaped
    code (the fallback).
    """
    cfg = build_cfg(code)
    entries: list[DispatcherEntry] = []
    block = cfg.entry()
    visited: set[int] = set()
    while block is not None and block.start not in visited:
        visited.add(block.start)
        selector: bytes | None = None
        target: int | None = None
        saw_compare = False
        for index, instruction in enumerate(block.instructions):
            value = instruction.opcode.value
            if (instruction.opcode.immediate_size == 4
                    and len(instruction.operand) == 4):
                selector = instruction.operand
                saw_compare = False
            elif value in (op.EQ, op.SUB, op.XOR):
                saw_compare = True
            elif value == op.JUMPI and saw_compare and selector is not None:
                pushed = block.instructions[index - 1]
                if pushed.opcode.is_push:
                    target = pushed.operand_int
                    entries.append(DispatcherEntry(selector, target))
                selector = None
        # Continue down the not-taken (fallthrough) chain.
        fallthrough = [successor for successor in block.successors
                       if successor == block.end]
        block = cfg.block_at(fallthrough[0]) if fallthrough else None
    return entries
