"""Annotated disassembly, in the style of the paper's Listing 3.

Renders runtime bytecode with the structural annotations a human reviewer
needs: the function-selection chain marked with resolved selectors (and
names, when a selector table is supplied), block labels at JUMPDESTs that
dispatcher entries target, and the fallback region — e.g.::

    001f 63 PUSH4 0xdf4a3106   // selector of impl_LUsXCWD2AKCc()
    0024 14 EQ
    0025 61 PUSH2 0x00ce
    0028 57 JUMPI
    ...
    00ce 5b JUMPDEST           // impl_LUsXCWD2AKCc():
"""

from __future__ import annotations

from repro.evm.cfg import dispatcher_functions
from repro.evm.disassembler import disassemble


def annotate(code: bytes,
             selector_names: dict[bytes, str] | None = None) -> str:
    """Render bytecode as an annotated listing."""
    selector_names = selector_names or {}
    listing = disassemble(code)
    entries = dispatcher_functions(code)
    selector_of_body = {entry.body_offset: entry.selector
                        for entry in entries}
    known_selectors = {entry.selector for entry in entries}

    lines: list[str] = []
    for instruction in listing.instructions:
        raw = code[instruction.offset:instruction.offset + instruction.size]
        text = (f"{instruction.offset:04x} {raw[:1].hex()} "
                f"{instruction.opcode.mnemonic}")
        if instruction.operand:
            text += f" 0x{instruction.operand.hex()}"

        comment = None
        if (instruction.opcode.immediate_size == 4
                and instruction.operand in known_selectors):
            name = selector_names.get(instruction.operand)
            comment = (f"selector of {name}" if name
                       else f"dispatcher selector 0x{instruction.operand.hex()}")
        elif instruction.offset in selector_of_body:
            selector = selector_of_body[instruction.offset]
            name = selector_names.get(selector,
                                      f"0x{selector.hex()}")
            comment = f"{name}:"
        elif instruction.opcode.value == 0xF4:
            comment = "DELEGATECALL — the proxy forwarding site"

        if comment:
            text = f"{text:<34s} // {comment}"
        lines.append(text)
    for invalid in listing.invalid_bytes:
        lines.append(f"{invalid.offset:04x} {code[invalid.offset]:02x} "
                     f"<data/metadata>")
    lines.sort(key=lambda line: int(line[:4], 16))
    return "\n".join(lines)
