"""Execution tracing hooks.

ProxioN's dynamic analysis (§4.2) is *observation*: run crafted calldata and
watch whether a DELEGATECALL forwards it to another contract.  The
interpreter emits structured events through a :class:`Tracer`, and
:class:`CallTracer` / :class:`StorageTracer` collect the streams the
detectors consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.evm.interpreter import Frame


@dataclass(frozen=True, slots=True)
class CallEvent:
    """A CALL-family instruction about to execute a sub-frame."""

    kind: str                 # CALL | CALLCODE | DELEGATECALL | STATICCALL
    depth: int
    caller_code_address: bytes
    caller_storage_address: bytes
    caller_calldata: bytes
    target: bytes
    input_data: bytes
    value: int
    pc: int

    @property
    def forwards_full_calldata(self) -> bool:
        """True when the sub-call input is exactly the frame's calldata.

        This is the paper's proxy criterion: the fallback path must forward
        the *received* call data unmodified.  Library calls re-encode
        arguments, so their input never equals the incoming calldata.
        """
        return self.input_data == self.caller_calldata


@dataclass(frozen=True, slots=True)
class CreateEvent:
    """A CREATE/CREATE2 executed by a frame."""

    kind: str                 # CREATE | CREATE2
    depth: int
    creator: bytes
    new_address: bytes
    init_code: bytes
    value: int


@dataclass(frozen=True, slots=True)
class LogEvent:
    """A LOG0..LOG4 emission (an Ethereum event)."""

    emitter: bytes            # the storage-context address (proxy for proxies!)
    topics: tuple[int, ...]
    data: bytes
    depth: int


@dataclass(frozen=True, slots=True)
class StorageEvent:
    """One SLOAD or SSTORE, observed with its resolved slot and value."""

    kind: str                 # SLOAD | SSTORE
    depth: int
    storage_address: bytes
    code_address: bytes
    slot: int
    value: int
    pc: int


class Tracer(Protocol):
    """Hook surface the interpreter reports into."""

    def on_instruction(self, frame: "Frame", pc: int, opcode_value: int) -> None: ...

    def on_call(self, event: CallEvent) -> None: ...

    def on_create(self, event: CreateEvent) -> None: ...

    def on_storage(self, event: StorageEvent) -> None: ...

    def on_log(self, event: LogEvent) -> None: ...


class NullTracer:
    """A tracer that ignores everything (the default)."""

    def on_instruction(self, frame: "Frame", pc: int, opcode_value: int) -> None:
        pass

    def on_call(self, event: CallEvent) -> None:
        pass

    def on_create(self, event: CreateEvent) -> None:
        pass

    def on_storage(self, event: StorageEvent) -> None:
        pass

    def on_log(self, event: LogEvent) -> None:
        pass


@dataclass
class CallTracer(NullTracer):
    """Collects the CALL-family, CREATE and LOG event streams."""

    calls: list[CallEvent] = field(default_factory=list)
    creates: list[CreateEvent] = field(default_factory=list)
    logs: list[LogEvent] = field(default_factory=list)

    def on_call(self, event: CallEvent) -> None:
        self.calls.append(event)

    def on_create(self, event: CreateEvent) -> None:
        self.creates.append(event)

    def on_log(self, event: LogEvent) -> None:
        self.logs.append(event)

    def delegatecalls(self) -> list[CallEvent]:
        return [event for event in self.calls if event.kind == "DELEGATECALL"]


@dataclass
class StorageTracer(NullTracer):
    """Collects SLOAD/SSTORE events (exploit verification, §5.2)."""

    events: list[StorageEvent] = field(default_factory=list)

    def on_storage(self, event: StorageEvent) -> None:
        self.events.append(event)

    def writes_to(self, address: bytes) -> list[StorageEvent]:
        return [
            event for event in self.events
            if event.kind == "SSTORE" and event.storage_address == address
        ]


@dataclass
class CombinedTracer(NullTracer):
    """Fans every event out to several tracers."""

    tracers: list[Tracer] = field(default_factory=list)

    def on_instruction(self, frame: "Frame", pc: int, opcode_value: int) -> None:
        for tracer in self.tracers:
            tracer.on_instruction(frame, pc, opcode_value)

    def on_call(self, event: CallEvent) -> None:
        for tracer in self.tracers:
            tracer.on_call(event)

    def on_create(self, event: CreateEvent) -> None:
        for tracer in self.tracers:
            tracer.on_create(event)

    def on_storage(self, event: StorageEvent) -> None:
        for tracer in self.tracers:
            tracer.on_storage(event)

    def on_log(self, event: LogEvent) -> None:
        for tracer in self.tracers:
            tracer.on_log(event)
