"""A from-scratch EVM: opcode table, disassembler, interpreter, tracing."""

from repro.evm.disassembler import (
    Disassembly,
    Instruction,
    contains_delegatecall,
    disassemble,
)
from repro.evm.environment import (
    BlockContext,
    ExecutionConfig,
    TransactionContext,
)
from repro.evm.exceptions import EVMError, OutOfGas, Revert, StackUnderflow
from repro.evm.interpreter import EVM, CallResult, Frame, Message
from repro.evm.state import MemoryState, OverlayState, StateBackend
from repro.evm.tracer import (
    CallEvent,
    CallTracer,
    CombinedTracer,
    CreateEvent,
    NullTracer,
    StorageEvent,
    StorageTracer,
    Tracer,
)

__all__ = [
    "EVM",
    "BlockContext",
    "CallEvent",
    "CallResult",
    "CallTracer",
    "CombinedTracer",
    "CreateEvent",
    "Disassembly",
    "EVMError",
    "ExecutionConfig",
    "Frame",
    "Instruction",
    "MemoryState",
    "Message",
    "NullTracer",
    "OutOfGas",
    "OverlayState",
    "Revert",
    "StackUnderflow",
    "StateBackend",
    "StorageEvent",
    "StorageTracer",
    "Tracer",
    "TransactionContext",
    "contains_delegatecall",
    "disassemble",
]
