"""Linear-sweep EVM disassembler (the Octopus-equivalent of §4.1).

Translates runtime bytecode into a sequence of :class:`Instruction` records
(offset, opcode, immediate operand).  The disassembly is the substrate for:

* the fast proxy prefilter — "does a DELEGATECALL byte exist at an
  instruction boundary?" (paper §4.1),
* PUSH4 selector harvesting for safe-calldata generation (§4.2),
* dispatcher-pattern function-signature extraction (§5.1), and
* SLOAD/SSTORE slicing for storage-collision detection (§5.2).

Linear sweep can misinterpret data regions as code; the analyzers that build
on this are written to tolerate that (exactly as the paper discusses for
PUSH4 false positives).  Solidity runtime code conventionally ends the code
region at the first ``INVALID``/metadata boundary, which
:func:`Disassembly.code_segment` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.evm.opcodes import (
    DELEGATECALL,
    JUMPDEST,
    Opcode,
    opcode_for,
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One disassembled instruction."""

    offset: int
    opcode: Opcode
    operand: bytes = b""

    @property
    def size(self) -> int:
        return 1 + len(self.operand)

    @property
    def next_offset(self) -> int:
        return self.offset + self.size

    @property
    def operand_int(self) -> int:
        return int.from_bytes(self.operand, "big")

    def __str__(self) -> str:
        if self.operand:
            return f"{self.offset:04x}: {self.opcode.mnemonic} 0x{self.operand.hex()}"
        return f"{self.offset:04x}: {self.opcode.mnemonic}"


@dataclass(frozen=True, slots=True)
class InvalidByte:
    """A byte that does not map to any defined opcode."""

    offset: int
    value: int

    def __str__(self) -> str:
        return f"{self.offset:04x}: UNKNOWN_0x{self.value:02x}"


class Disassembly:
    """The disassembled view of one bytecode blob."""

    def __init__(self, code: bytes) -> None:
        self.code = code
        self.instructions: list[Instruction] = []
        self.invalid_bytes: list[InvalidByte] = []
        self._by_offset: dict[int, Instruction] = {}
        self._sweep()

    def _sweep(self) -> None:
        offset = 0
        code = self.code
        while offset < len(code):
            opcode = opcode_for(code[offset])
            if opcode is None:
                self.invalid_bytes.append(InvalidByte(offset, code[offset]))
                offset += 1
                continue
            operand = code[offset + 1:offset + 1 + opcode.immediate_size]
            # A PUSH whose immediate is cut off by the end of code still
            # executes (zero-padded) on a real EVM; mirror that here.
            instruction = Instruction(offset, opcode, operand)
            self.instructions.append(instruction)
            self._by_offset[offset] = instruction
            offset += instruction.size

    def at(self, offset: int) -> Instruction | None:
        """Return the instruction starting exactly at ``offset``, if any."""
        return self._by_offset.get(offset)

    @cached_property
    def jumpdests(self) -> frozenset[int]:
        """Offsets that are valid JUMP targets.

        Matches EVM semantics: a ``JUMPDEST`` byte inside a PUSH immediate is
        *not* a valid target, which the linear sweep naturally encodes
        because immediates are consumed by their instruction.
        """
        return frozenset(
            instruction.offset
            for instruction in self.instructions
            if instruction.opcode.value == JUMPDEST
        )

    def has_opcode(self, value: int) -> bool:
        """True when any swept instruction carries the given opcode byte."""
        return any(inst.opcode.value == value for inst in self.instructions)

    @cached_property
    def opcode_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for instruction in self.instructions:
            histogram[instruction.opcode.mnemonic] = (
                histogram.get(instruction.opcode.mnemonic, 0) + 1
            )
        return histogram

    def push4_operands(self) -> list[bytes]:
        """All 4-byte immediates following PUSH4 opcodes (candidate selectors).

        Per §4.2, not every PUSH4 operand is a function selector, but every
        compiler-emitted selector sits behind a PUSH4 — so "avoid all of
        them" is the safe over-approximation used to craft fallback-reaching
        calldata.
        """
        return [
            instruction.operand
            for instruction in self.instructions
            if instruction.opcode.immediate_size == 4 and len(instruction.operand) == 4
        ]

    def text(self) -> str:
        """Human-readable listing, one instruction per line."""
        return "\n".join(str(instruction) for instruction in self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


def disassemble(code: bytes) -> Disassembly:
    """Disassemble runtime bytecode into a :class:`Disassembly`."""
    return Disassembly(code)


def contains_delegatecall(code: bytes) -> bool:
    """Fast §4.1 prefilter: does the swept code contain DELEGATECALL?

    Cheap short-circuit first — if the byte never occurs at all the sweep is
    unnecessary; if it occurs we still sweep to rule out immediates that
    merely *contain* the 0xF4 byte.
    """
    if bytes([DELEGATECALL]) not in code:
        return False
    return disassemble(code).has_opcode(DELEGATECALL)
