"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The paper's headline scaling claims are *measurements* — "26 getStorageAt
calls per proxy" (§6.1), per-stage runtimes, dedup savings — so the
reproduction keeps a first-class, dependency-free metrics layer that is
cheap enough to stay enabled on every sweep.  Three instrument kinds:

* :class:`Counter` — monotone float/int, ``inc(amount)``;
* :class:`Gauge` — last-write-wins value, ``set(value)``;
* :class:`Histogram` — fixed upper-bound buckets (Prometheus-style
  cumulative on export), plus running sum/count for means.

Instruments are identified by ``(name, labels)`` and memoized, so hot
paths fetch them once and then pay one attribute add per event.  A
:class:`NullRegistry` (singleton :data:`NULL_REGISTRY`) hands out shared
no-op instruments for overhead-critical runs; it is selectable per
``Proxion`` instance.
"""

from __future__ import annotations

import threading
from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets (seconds): 1 µs .. 10 s, roughly log-spaced.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k="v",...}`` — the key format of snapshots/exports."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down; last write wins."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the high-water mark (handy for depth/lag gauges)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with running sum and count.

    Buckets store *per-bucket* tallies internally; the Prometheus exporter
    accumulates them into the cumulative ``le`` form.  An implicit +Inf
    bucket catches overflows.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey = (),
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, tally in zip(self.bounds, self.bucket_counts):
            running += tally
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.bucket_counts[-1]))
        return pairs


class MetricsRegistry:
    """Holds every instrument of one observed system.

    Thread-safe on instrument *creation*; updates on the instruments
    themselves are plain attribute writes (the GIL makes them atomic
    enough for counting).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # ---------------------------------------------------------- instruments
    def counter(self, name: str, /, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, key[1]))
        return instrument

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, key[1]))
        return instrument

    def histogram(self, name: str, /, bounds: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, key[1], bounds or DEFAULT_BUCKETS))
        return instrument

    # --------------------------------------------------------------- queries
    def counter_value(self, name: str, /, **labels: str) -> float:
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def counters_named(self, name: str) -> dict[LabelKey, Counter]:
        return {labels: c for (n, labels), c in self._counters.items()
                if n == name}

    def iter_counters(self) -> Iterator[Counter]:
        return iter(list(self._counters.values()))

    def iter_gauges(self) -> Iterator[Gauge]:
        return iter(list(self._gauges.values()))

    def iter_histograms(self) -> Iterator[Histogram]:
        return iter(list(self._histograms.values()))

    # ------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Zero every instrument *in place* — cached references stay valid."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.bucket_counts = [0] * (len(histogram.bounds) + 1)
            histogram.sum = 0.0
            histogram.count = 0

    # ------------------------------------------------------ state & merging
    def state(self) -> dict[str, list]:
        """A pickle/JSON-able dump that :meth:`merge_state` can re-ingest.

        Unlike :meth:`snapshot` (rendered series names, for humans and
        exporters) this keeps ``(name, labels)`` structured, so it is the
        wire format of cross-process aggregation: each worker of a sharded
        sweep ships its registry state to the parent, which folds them
        into one registry with :meth:`merge_state`.
        """
        return {
            "counters": [[c.name, list(c.labels), c.value]
                         for c in self._counters.values()],
            "gauges": [[g.name, list(g.labels), g.value]
                       for g in self._gauges.values()],
            "histograms": [[h.name, list(h.labels), list(h.bounds),
                            list(h.bucket_counts), h.sum, h.count]
                           for h in self._histograms.values()],
        }

    def merge_state(self, state: dict[str, list]) -> None:
        """Fold one :meth:`state` dump into this registry.

        Counters and histogram tallies are *summed*; gauges keep the
        high-water mark (a last-write-wins value has no meaningful sum
        across workers).  Histograms with mismatched bucket bounds merge
        their sum/count but overflow every sample into the +Inf bucket —
        and count the event under ``obs.histogram_bound_mismatches``.
        """
        if not self.enabled:
            return
        for name, labels, value in state.get("counters", ()):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in state.get("gauges", ()):
            self.gauge(name, **dict(labels)).max(value)
        for row in state.get("histograms", ()):
            name, labels, bounds, bucket_counts, total, count = row
            histogram = self.histogram(name, bounds=tuple(bounds),
                                       **dict(labels))
            histogram.sum += total
            histogram.count += count
            if histogram.bounds == tuple(bounds):
                for index, tally in enumerate(bucket_counts):
                    histogram.bucket_counts[index] += tally
            else:
                histogram.bucket_counts[-1] += sum(bucket_counts)
                self.counter("obs.histogram_bound_mismatches",
                             name=name).inc()

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.merge_state(other.state())

    def snapshot(self) -> dict[str, dict]:
        """JSON-compatible dump keyed by rendered series names."""
        return {
            "counters": {series_name(c.name, c.labels): c.value
                         for c in self._counters.values()},
            "gauges": {series_name(g.name, g.labels): g.value
                       for g in self._gauges.values()},
            "histograms": {
                series_name(h.name, h.labels): {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "buckets": {
                        ("+Inf" if bound == float("inf") else repr(bound)):
                            cumulative
                        for bound, cumulative in h.cumulative_buckets()
                    },
                }
                for h in self._histograms.values()
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """Hands out shared no-op instruments; records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, /, bounds: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        return self._null_histogram


#: Shared no-op registry — pass as ``Proxion(..., metrics=NULL_REGISTRY)``
#: (or ``ArchiveNode(..., metrics=NULL_REGISTRY)``) to disable collection.
NULL_REGISTRY = NullRegistry()

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (used when no explicit one is wired)."""
    return _default_registry
