"""The live ops HTTP surface: /metrics, /healthz, /progress.

``survey --serve PORT`` (``--serve-obs`` is the deprecated spelling)
starts an :class:`ObsServer` next to the sweep — a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon thread, zero
dependencies, binding loopback by default.  Three routes:

* ``GET /metrics`` — the registry in Prometheus text exposition format,
  **byte-identical** to :func:`repro.obs.export.to_prometheus` over the
  same registry (the CI gate asserts this);
* ``GET /healthz`` — the :func:`repro.obs.console.journal_health`
  verdict as JSON, status ``200`` when healthy and ``503`` when the
  supervisor or a worker looks wedged (so a liveness probe needs no body
  parsing);
* ``GET /progress`` — the :func:`repro.obs.console.journal_snapshot`
  status in the ``repro.query/1`` envelope (kind ``status``), exactly
  the bytes ``repro status --json`` prints.

Routing lives in :func:`route_observability` so the ``repro serve``
daemon (:mod:`repro.serve`) mounts the *same* handlers on its unified
server — one implementation, two front doors, byte-identical answers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry


def route_observability(path: str,
                        registry: Callable[[], MetricsRegistry],
                        *,
                        journal_path: str | None = None,
                        hung_after_s: float = 30.0,
                        ) -> tuple[int, str, str] | None:
    """Answer one observability route, or ``None`` for an unknown path.

    The shared implementation behind both :class:`ObsServer` and the
    ``repro serve`` daemon — the deprecation test for ``--serve-obs``
    pins that both spellings serve byte-identical ``/metrics`` because
    they both land here.
    """
    path = path.split("?", 1)[0]
    if path == "/metrics":
        # Exactly the exporter's output — byte-identical by contract.
        return (200, "text/plain; version=0.0.4; charset=utf-8",
                to_prometheus(registry()))
    if path == "/healthz":
        from repro.obs.console import journal_health
        if journal_path is None:
            verdict: dict[str, Any] = {"healthy": True,
                                       "reason": "no journal configured"}
        else:
            verdict = journal_health(journal_path,
                                     hung_after_s=hung_after_s)
        status = 200 if verdict.get("healthy") else 503
        return (status, "application/json",
                json.dumps(verdict, sort_keys=True) + "\n")
    if path == "/progress":
        from repro import api
        from repro.obs.console import journal_snapshot
        if journal_path is None:
            return (404, "application/json",
                    json.dumps({"error": "no journal configured"}) + "\n")
        try:
            snapshot = journal_snapshot(journal_path)
        except Exception as error:
            return (503, "application/json",
                    json.dumps({"error": str(error)}) + "\n")
        return (200, "application/json",
                api.to_json(api.status_answer(snapshot)) + "\n")
    return None


class ObsServer:
    """Serve /metrics, /healthz and /progress for one running sweep.

    ``registry`` is a :class:`MetricsRegistry` or a zero-argument callable
    returning one (resolved per request).  ``journal_path`` is optional:
    without it ``/healthz`` reports healthy-with-no-journal and
    ``/progress`` answers 404.  ``port=0`` binds an ephemeral port —
    read :attr:`port`/:attr:`url` after construction.
    """

    def __init__(self,
                 registry: MetricsRegistry | Callable[[], MetricsRegistry],
                 *,
                 journal_path: str | None = None,
                 hung_after_s: float = 30.0,
                 host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._registry = registry
        self.journal_path = journal_path
        self.hung_after_s = hung_after_s
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args: Any) -> None:
                pass  # a scrape every few seconds must not spam stderr

            def do_GET(self) -> None:  # noqa: N802 (stdlib handler name)
                try:
                    route = server._route(self.path)
                except Exception as error:  # defensive: a scrape must
                    route = (500, "text/plain; charset=utf-8",
                             f"internal error: {error}\n")  # never kill it
                status, content_type, body = route
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-obs-http", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------ properties
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # --------------------------------------------------------------- routing
    def _resolve_registry(self) -> MetricsRegistry:
        registry = self._registry
        return registry() if callable(registry) else registry

    def _route(self, path: str) -> tuple[int, str, str]:
        route = route_observability(path, self._resolve_registry,
                                    journal_path=self.journal_path,
                                    hung_after_s=self.hung_after_s)
        if route is not None:
            return route
        return (404, "text/plain; charset=utf-8",
                "unknown path; try /metrics, /healthz or /progress\n")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ObsServer", "route_observability"]
