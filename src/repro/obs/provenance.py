"""Verdict provenance: evidence-carrying audit trails for every analysis.

Metrics say how much, the event journal says what happened operationally —
this module records *why the analyzer concluded what it concluded*.  Every
verdict the pipeline emits ("this is a proxy", "slot X held logic Y",
"these selectors collide") is backed by concrete observations: which probe
calldata reached a forwarding ``DELEGATECALL``, which ``SLOAD`` matched
the delegation target, which ``getStorageAt`` reads fed each Algorithm 1
binary-search step, where each selector came from.  The trail captures
those observations as a causal tree so a disagreement with ground truth
(Table 2) can be audited read-only, without re-running the sweep.

* :class:`EvidenceTrail` — the recorder the pipeline threads through the
  hot path.  ``trail.note(kind, **detail)`` records one observation;
  ``with trail.begin(kind, **detail):`` opens a nested evidence section.
* :data:`NULL_TRAIL` — the shared no-op (``enabled=False``); the default
  everywhere, so the un-audited path pays one attribute check per hook
  (proved by the ``pipeline_audited`` bench workload).
* :class:`AuditDir` — per-contract JSONL evidence files (schema
  ``repro.evidence/1``) with the flight recorder's durability discipline:
  schema header first, one line per evidence section, written to a
  temporary file that is fsynced and atomically renamed — the same
  channel worker results ship over, so a SIGKILL can never leave a
  half-written evidence file under the final name.  Readers drop (and
  count) a truncated **final** line and refuse earlier corruption.
* :func:`render_trail` — the human-readable narrative behind
  ``repro explain``; :meth:`EvidenceTrail.digest` is the compact summary
  embedded in serialized analyses so checkpoints and merged parallel
  sweeps keep provenance.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: Version tag of the evidence file layout.
SCHEMA = "repro.evidence/1"

# --------------------------------------------------------- evidence taxonomy
# Pipeline sections (one per analysis stage).
SECTION_PROXY = "proxy_detection"
SECTION_LOGIC = "logic_recovery"
SECTION_COLLISIONS = "collision_scoring"

# Proxy detection (§4.1–§4.3).
PROXY_PREFILTER = "proxy.prefilter"       # §4.1 DELEGATECALL disassembly
PROXY_PROBE = "proxy.probe"               # one §4.2 emulation attempt
PROXY_FORWARD = "proxy.forward"           # the qualifying DELEGATECALL
PROXY_NO_FORWARD = "proxy.no-forward"     # clean negative / emulation error
PROXY_PATTERN = "proxy.pattern"           # §4.3 logic-location classification
PROXY_SLOAD = "proxy.sload"               # storage read observed in emulation
PROXY_INSTANCE_READ = "proxy.instance-read"  # dedup-hit per-instance re-read

# Dedup caches (§6.1): a verdict transferred instead of recomputed.
DEDUP_HIT = "dedup.hit"

# Algorithm 1 logic recovery (§4.3).
SEARCH_READ = "search.read"               # one slot read feeding the search
SEARCH_STEP = "search.step"               # one binary-partition decision
LOGIC_SOURCE = "logic.source"             # hardcoded vs storage-slot method
LOGIC_HISTORY = "logic.history"           # the recovered address history

# Collision scoring (§5.1/§5.2).
PAIR = "pair"                             # one proxy/logic code pair
FUNCTION_SELECTORS = "function.selectors"  # per-side selector provenance
FUNCTION_COLLISION = "function.collision"
STORAGE_PROFILE = "storage.profile"
STORAGE_COLLISION = "storage.collision"
STORAGE_VERIFY = "storage.verify"

# Attribution and mining.
RPC_READ = "rpc.read"                     # one archive-node read
MINING_ATTEMPT = "mining.attempt"         # §2.3 selector-mining progress
MINING_RESULT = "mining.result"

#: Every kind this version of the schema emits, for docs and validation.
EVIDENCE_KINDS = (
    SECTION_PROXY, SECTION_LOGIC, SECTION_COLLISIONS,
    PROXY_PREFILTER, PROXY_PROBE, PROXY_FORWARD, PROXY_NO_FORWARD,
    PROXY_PATTERN, PROXY_SLOAD, PROXY_INSTANCE_READ,
    DEDUP_HIT,
    SEARCH_READ, SEARCH_STEP, LOGIC_SOURCE, LOGIC_HISTORY,
    PAIR, FUNCTION_SELECTORS, FUNCTION_COLLISION,
    STORAGE_PROFILE, STORAGE_COLLISION, STORAGE_VERIFY,
    RPC_READ, MINING_ATTEMPT, MINING_RESULT,
)


@dataclass(slots=True)
class EvidenceNode:
    """One observation (leaf) or evidence section (subtree)."""

    kind: str
    detail: dict[str, Any] = field(default_factory=dict)
    children: list["EvidenceNode"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"kind": self.kind}
        if self.detail:
            record["detail"] = self.detail
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "EvidenceNode":
        return cls(
            kind=record.get("kind", "?"),
            detail=dict(record.get("detail", {})),
            children=[cls.from_dict(child)
                      for child in record.get("children", [])],
        )

    def walk(self) -> Iterator["EvidenceNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class EvidenceTrail:
    """Records the causal evidence tree of one contract's analysis.

    The pipeline opens one section per stage (``begin``) and detectors
    attach observations (``note``) to whatever section is currently open.
    The trail is single-analysis, single-thread state: each contract gets
    its own instance, so no locking is needed on the hot path.
    """

    enabled = True

    def __init__(self, address: bytes | None = None) -> None:
        self.address = address
        self._root = EvidenceNode(kind="analysis")
        self._stack: list[EvidenceNode] = [self._root]

    # -------------------------------------------------------------- recording
    def note(self, kind: str, /, **detail: Any) -> EvidenceNode:
        """Attach one observation to the currently open section.

        ``kind`` is positional-only so detail keys named ``kind`` (e.g. a
        storage collision's overlap kind) never clash with it.
        """
        node = EvidenceNode(kind=kind, detail=detail)
        self._stack[-1].children.append(node)
        return node

    @contextmanager
    def begin(self, kind: str, /, **detail: Any):
        """Open a nested evidence section for the duration of the block."""
        node = self.note(kind, **detail)
        self._stack.append(node)
        try:
            yield node
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------ reads
    @property
    def sections(self) -> list[EvidenceNode]:
        """The top-level evidence sections, in recording order."""
        return self._root.children

    def __len__(self) -> int:
        return sum(1 for _ in self._root.walk()) - 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "address": ("0x" + self.address.hex()
                        if self.address is not None else None),
            "evidence": [section.to_dict() for section in self.sections],
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "EvidenceTrail":
        rendered = record.get("address")
        address = (bytes.fromhex(rendered.removeprefix("0x"))
                   if rendered else None)
        trail = cls(address)
        trail._root.children.extend(
            EvidenceNode.from_dict(section)
            for section in record.get("evidence", []))
        return trail

    def digest(self) -> dict[str, Any]:
        """Compact summary that rides inside serialized analyses.

        Deterministic for a deterministic analysis (kinds sorted, counts
        exact), so parallel merges stay byte-identical to serial sweeps.
        """
        kinds: dict[str, int] = {}
        for node in self._root.walk():
            if node is self._root:
                continue
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        return {
            "schema": SCHEMA,
            "sections": [section.kind for section in self.sections],
            "kinds": dict(sorted(kinds.items())),
        }


class _NullContext:
    """Reusable ``with``-target so ``NULL_TRAIL.begin`` allocates nothing."""

    __slots__ = ("_node",)

    def __init__(self, node: EvidenceNode) -> None:
        self._node = node

    def __enter__(self) -> EvidenceNode:
        return self._node

    def __exit__(self, *exc_info) -> None:
        return None


class NullTrail(EvidenceTrail):
    """Records nothing; ``note``/``begin`` are constant-cost no-ops."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_node = EvidenceNode(kind="null")
        self._null_context = _NullContext(self._null_node)

    def note(self, kind: str, /, **detail: Any) -> EvidenceNode:
        return self._null_node

    def begin(self, kind: str, /, **detail: Any):
        return self._null_context


#: Shared no-op trail — the default everywhere evidence is optional.
NULL_TRAIL = NullTrail()


# ------------------------------------------------------------------ audit dir
def evidence_filename(address: bytes) -> str:
    """The per-contract evidence file name inside an audit directory."""
    return "0x" + address.hex() + ".evidence.jsonl"


class AuditDir:
    """A directory of per-contract JSONL evidence files.

    Layout per file: line 1 is the schema header (``repro.evidence/1``
    plus the contract address and writer pid), then one JSON line per
    top-level evidence section.  Files are written whole to a ``.tmp``
    sibling, flushed, fsynced, and atomically renamed into place — the
    same channel the supervisor ships worker results over — so readers
    (including a concurrent ``repro explain``) only ever see complete
    files under the final name.  Parallel workers write into the same
    directory without coordination: shards partition the address space,
    so each contract's file has exactly one writer.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            os.makedirs(path, exist_ok=True)
        except OSError as error:
            raise ConfigurationError(
                f"cannot create audit directory {path!r}: {error}") from None

    # -------------------------------------------------------------- write side
    def write(self, trail: EvidenceTrail) -> str:
        """Durably persist one contract's trail; returns the file path."""
        if trail.address is None:
            raise ConfigurationError(
                "cannot persist an evidence trail without an address")
        final = os.path.join(self.path, evidence_filename(trail.address))
        tmp = final + ".tmp"
        header = {"schema": SCHEMA, "address": "0x" + trail.address.hex(),
                  "pid": os.getpid()}
        with open(tmp, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(header, separators=(",", ":")) + "\n")
            for section in trail.sections:
                # ``default=repr``: a non-JSON detail value degrades to its
                # repr instead of killing a live audited sweep.
                stream.write(json.dumps(section.to_dict(),
                                        separators=(",", ":"),
                                        default=repr) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, final)
        return final

    # --------------------------------------------------------------- read side
    def addresses(self) -> list[bytes]:
        """Every contract with an evidence file, sorted."""
        found: list[bytes] = []
        for name in os.listdir(self.path):
            if not name.endswith(".evidence.jsonl"):
                continue
            stem = name.removesuffix(".evidence.jsonl")
            try:
                found.append(bytes.fromhex(stem.removeprefix("0x")))
            except ValueError:
                continue
        return sorted(found)

    def read(self, address: bytes) -> EvidenceTrail:
        """Load one contract's trail, tolerating a crash-truncated tail.

        Same contract as the event journal reader: a partial **final**
        line is dropped (the observation it described is lost, never
        corrupted); garbling anywhere earlier refuses loudly.
        """
        path = os.path.join(self.path, evidence_filename(address))
        try:
            with open(path, encoding="utf-8") as stream:
                lines = stream.read().splitlines()
        except OSError as error:
            raise ConfigurationError(
                f"no evidence for 0x{address.hex()} in {self.path!r} "
                f"({error})") from None
        if not lines or not lines[0].strip():
            raise ConfigurationError(
                f"evidence file {path!r} is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"evidence file {path!r} has an unreadable header "
                f"({error})") from None
        if not isinstance(header, dict) or header.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"evidence file {path!r} has schema "
                f"{header.get('schema') if isinstance(header, dict) else '?'!r}, "
                f"expected {SCHEMA!r}")
        trail = EvidenceTrail(address)
        last = len(lines) - 1
        for index, line in enumerate(lines[1:], start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == last:
                    continue     # crash-truncated tail: drop, keep the rest
                raise ConfigurationError(
                    f"evidence file {path!r} is corrupt at line {index + 1} "
                    f"(not the final line, so not a crash-truncation "
                    f"artifact)") from None
            trail._root.children.append(EvidenceNode.from_dict(record))
        return trail


# ------------------------------------------------------------------ rendering
_SECTION_TITLES = {
    SECTION_PROXY: "proxy detection (§4.1–§4.2)",
    SECTION_LOGIC: "logic recovery (§4.3, Algorithm 1)",
    SECTION_COLLISIONS: "collision scoring (§5)",
}


def _describe(node: EvidenceNode) -> str:
    """One narrative line for one evidence node."""
    d = node.detail
    kind = node.kind
    if kind in _SECTION_TITLES:
        return _SECTION_TITLES[kind]
    if kind == PROXY_PREFILTER:
        if d.get("outcome") == "no-code":
            return "prefilter: address has no code"
        has = d.get("delegatecall")
        return ("prefilter: DELEGATECALL present in bytecode" if has
                else "prefilter: no DELEGATECALL at any instruction boundary")
    if kind == PROXY_PROBE:
        return (f"probe {d.get('calldata', '?')} "
                f"({d.get('source', 'crafted')})")
    if kind == PROXY_FORWARD:
        return (f"forwarded calldata unmodified to {d.get('target', '?')} "
                f"via DELEGATECALL at pc {d.get('pc', '?')}")
    if kind == PROXY_NO_FORWARD:
        outcome = d.get("outcome", "?")
        if outcome == "emulation-error":
            return f"no forward: emulation failed ({d.get('error', '?')})"
        return f"no forward: {outcome}"
    if kind == PROXY_PATTERN:
        location = d.get("location", "?")
        if location == "storage":
            return (f"pattern: logic address read from storage slot "
                    f"{d.get('slot', '?')}" + (
                        f" ({d['standard']})" if d.get("standard") else ""))
        if location == "hardcoded":
            return "pattern: logic address hard-coded in bytecode (EIP-1167)"
        return f"pattern: {location}"
    if kind == PROXY_SLOAD:
        matched = " — matched the delegation target" if d.get("matched") else ""
        return f"SLOAD slot {d.get('slot', '?')} -> {d.get('value', '?')}{matched}"
    if kind == PROXY_INSTANCE_READ:
        return (f"instance slot {d.get('slot', '?')} re-read -> "
                f"logic {d.get('logic', '?')}")
    if kind == DEDUP_HIT:
        return (f"dedup: {d.get('cache', '?')} verdict reused from code hash "
                f"{d.get('code_hash', '?')}")
    if kind == SEARCH_READ:
        return f"read slot @ block {d.get('block', '?')} -> {d.get('value', '?')}"
    if kind == SEARCH_STEP:
        decision = d.get("decision", "?")
        span = f"[{d.get('low', '?')}, {d.get('high', '?')}]"
        if decision == "uniform":
            return f"blocks {span}: endpoints equal, range assumed constant"
        if decision == "split":
            return f"blocks {span}: endpoints differ, split at {d.get('mid', '?')}"
        if decision == "change-at":
            return (f"blocks {span}: change isolated at block "
                    f"{d.get('block', '?')} -> {d.get('value', '?')}")
        return f"blocks {span}: {decision}"
    if kind == LOGIC_SOURCE:
        return f"method: {d.get('method', '?')}"
    if kind == LOGIC_HISTORY:
        return (f"history: {d.get('addresses', '?')} logic address(es), "
                f"{d.get('changes', '?')} change point(s), "
                f"{d.get('api_calls', '?')} getStorageAt calls")
    if kind == PAIR:
        return f"proxy/logic pair vs {d.get('logic', '?')}"
    if kind == FUNCTION_SELECTORS:
        return (f"{d.get('side', '?')} selectors: {d.get('count', '?')} from "
                f"{d.get('mode', '?')} "
                f"({'verified source prototypes' if d.get('mode') == 'source' else 'bytecode dispatcher pattern'})")
    if kind == FUNCTION_COLLISION:
        protos = ""
        if d.get("proxy_prototype") or d.get("logic_prototype"):
            protos = (f" (proxy {d.get('proxy_prototype') or '?'} vs "
                      f"logic {d.get('logic_prototype') or '?'})")
        return f"selector {d.get('selector', '?')} collides{protos}"
    if kind == STORAGE_PROFILE:
        return (f"{d.get('side', '?')} profile: {d.get('slots', '?')} slot(s) "
                f"from {d.get('mode', '?')} mode")
    if kind == STORAGE_COLLISION:
        flags = [flag for flag in ("sensitive", "exploitable", "verified")
                 if d.get(flag)]
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (f"slot {d.get('slot', '?')}: proxy bytes "
                f"{d.get('proxy_range', '?')} vs logic bytes "
                f"{d.get('logic_range', '?')} ({d.get('kind', '?')}){suffix}")
    if kind == STORAGE_VERIFY:
        changed = d.get("changed")
        return (f"exploit via selector {d.get('selector', '?')}: sensitive "
                f"bytes {'changed — verified' if changed else 'unchanged'}")
    if kind == RPC_READ:
        where = d.get("slot")
        at = f" slot {where}" if where is not None else ""
        block = d.get("block")
        height = f" @ block {block}" if block is not None else ""
        return (f"{d.get('method', '?')} {d.get('address', '?')}{at}{height}"
                + (f" -> {d['value']}" if "value" in d else ""))
    if kind == MINING_ATTEMPT:
        return f"mining attempt {d.get('attempts', '?')}: {d.get('name', '?')}"
    if kind == MINING_RESULT:
        return (f"mined {d.get('name', '?')} -> selector "
                f"{d.get('selector', '?')} after {d.get('attempts', '?')} "
                f"attempt(s)")
    rendered = ", ".join(f"{key}={value}" for key, value in d.items())
    return f"{kind}" + (f": {rendered}" if rendered else "")


def render_trail(trail: EvidenceTrail) -> str:
    """The evidence tree as an indented human-readable narrative."""
    address = ("0x" + trail.address.hex()
               if trail.address is not None else "<unknown>")
    lines = [f"evidence for {address} ({SCHEMA})"]
    if not trail.sections:
        lines.append("  (no evidence recorded)")

    def emit(node: EvidenceNode, depth: int) -> None:
        lines.append("  " * depth + _describe(node))
        for child in node.children:
            emit(child, depth + 1)

    for section in trail.sections:
        emit(section, 1)
    return "\n".join(lines)


__all__ = [
    "AuditDir",
    "DEDUP_HIT",
    "EVIDENCE_KINDS",
    "EvidenceNode",
    "EvidenceTrail",
    "FUNCTION_COLLISION",
    "FUNCTION_SELECTORS",
    "LOGIC_HISTORY",
    "LOGIC_SOURCE",
    "MINING_ATTEMPT",
    "MINING_RESULT",
    "NULL_TRAIL",
    "NullTrail",
    "PAIR",
    "PROXY_FORWARD",
    "PROXY_INSTANCE_READ",
    "PROXY_NO_FORWARD",
    "PROXY_PATTERN",
    "PROXY_PREFILTER",
    "PROXY_PROBE",
    "PROXY_SLOAD",
    "RPC_READ",
    "SCHEMA",
    "SEARCH_READ",
    "SEARCH_STEP",
    "SECTION_COLLISIONS",
    "SECTION_LOGIC",
    "SECTION_PROXY",
    "STORAGE_COLLISION",
    "STORAGE_PROFILE",
    "STORAGE_VERIFY",
    "evidence_filename",
    "render_trail",
]
