"""Continuous benchmarking: deterministic workloads, trajectory files, gates.

The paper's scaling claims are throughput numbers — §6.1's per-stage
runtimes, ~26 ``getStorageAt`` calls per proxy, the dedup that turns years
of sweeping into 48 days — so the reproduction keeps a benchmarking spine
that every perf PR can cite.  Three layers, all dependency-free:

* **Workload suite** — :data:`WORKLOADS`: the landscape sweep at two/three
  scales, proxy-check only, Algorithm 1 logic recovery, function/storage
  collision scoring on the accuracy corpus, and §2.3 selector mining.
  Every workload runs on a fixed seed, with warmup plus N timed repeats.
* **Result schema** — :func:`run_suite` produces a schema-versioned
  payload (``repro.bench/1``) with robust timing stats (min / median /
  IQR / stddev) **and** the observability dimensions the registry already
  collects — per-stage span breakdown, ``rpc.calls`` by method, §6.1
  dedup hit rates, EVM opcode-class profile — so each row explains *where*
  the time went.  ``repro bench`` serializes it to ``BENCH_proxion.json``.
* **Regression gate** — :func:`compare_payloads` diffs two payloads with
  per-workload thresholds (fail > 25 % median regression, warn > 10 %,
  tolerant of zero/missing baselines); ``tools/check_bench_regression.py``
  wraps it for CI.

See ``docs/benchmarking.md`` for the JSON schema and how to read the
numbers.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer, clock

#: Version tag of the result payload layout.
SCHEMA = "repro.bench/1"

#: Default serialization target at the repo root.
DEFAULT_RESULT_FILE = "BENCH_proxion.json"

#: Median-regression thresholds (fractions of the baseline median).
FAIL_THRESHOLD = 0.25
WARN_THRESHOLD = 0.10

#: Per-workload *fail* threshold overrides.  Selector mining is a tight
#: hash loop whose wall time is the noisiest of the suite, so it gets more
#: headroom before the gate trips.
PER_WORKLOAD_FAIL: dict[str, float] = {
    "selector_mining": 0.50,
}

#: The three §6.1 dedup caches, mirrored from the pipeline.
_DEDUP_CACHES = ("proxy_check", "function_collision", "storage_collision")


# --------------------------------------------------------------------- config
@dataclass(slots=True)
class BenchConfig:
    """Knobs of one suite run (``--quick`` flips the reduced profile)."""

    quick: bool = False
    repeats: int | None = None     # None → 2 quick / 5 full
    warmup: int = 1
    seed: int = 2024
    only: tuple[str, ...] | None = None   # workload-name filter

    @property
    def effective_repeats(self) -> int:
        if self.repeats is not None:
            return max(1, self.repeats)
        return 2 if self.quick else 5

    def scale(self, quick_value: int, full_value: int) -> int:
        return quick_value if self.quick else full_value


# ------------------------------------------------------------------ workloads
@dataclass(frozen=True, slots=True)
class Workload:
    """One benchmarkable unit of the reproduction.

    ``setup`` builds the (reused) world once; ``run`` executes one timed
    repeat and returns the registry to harvest observability dimensions
    from, plus workload-specific metadata for the result row.
    """

    name: str
    description: str
    setup: Callable[[BenchConfig], Any]
    run: Callable[[Any, BenchConfig], tuple[MetricsRegistry, dict]]
    quick: bool = True             # included in --quick runs


#: Landscapes are deterministic for a (total, seed) pair — share them
#: across workloads so the suite pays generation once per scale.
_LANDSCAPE_CACHE: dict[tuple[int, int], Any] = {}


def _landscape(total: int, seed: int):
    key = (total, seed)
    world = _LANDSCAPE_CACHE.get(key)
    if world is None:
        from repro.corpus.generator import generate_landscape
        world = generate_landscape(total=total, seed=seed)
        _LANDSCAPE_CACHE[key] = world
    return world


def _sweep_workload(total_quick: int, total_full: int,
                    quick: bool = True) -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(total_quick, total_full), config.seed)

    def run(world, config: BenchConfig):
        from repro.core.pipeline import Proxion, ProxionOptions
        world.node.metrics.reset()
        proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset,
                          options=ProxionOptions(profile_evm=True))
        report = proxion.analyze_all()
        return world.node.metrics, {
            "contracts": len(report),
            "proxies": len(report.proxies()),
            "function_collision_pairs": report.function_collision_pairs(),
            "storage_collision_pairs": report.storage_collision_pairs(),
        }

    return Workload(
        name=f"sweep_{total_full}",
        description=f"full §7 pipeline sweep over a {total_full}-contract "
                    f"landscape ({total_quick} in --quick)",
        setup=setup, run=run, quick=quick)


def _proxy_check_workload() -> Workload:
    def setup(config: BenchConfig):
        world = _landscape(config.scale(50, 80), config.seed)
        return world, world.addresses()

    def run(context, config: BenchConfig):
        from repro.core.pipeline import Proxion, ProxionOptions
        world, addresses = context
        world.node.metrics.reset()
        proxion = Proxion(world.node, registry=world.registry, dataset=world.dataset,
                          options=ProxionOptions(profile_evm=True))
        proxies = sum(1 for address in addresses
                      if proxion.check_proxy(address).is_proxy)
        # analyze_all() normally flushes the EVM profile; checking only
        # proxy verdicts bypasses it, so flush here.
        proxion.evm_profiler.flush_to(world.node.metrics)
        return world.node.metrics, {
            "contracts": len(addresses),
            "proxies": proxies,
        }

    return Workload(
        name="proxy_check",
        description="two-step proxy detection only (§4.1–§4.2), with the "
                    "bytecode-hash dedup cache",
        setup=setup, run=run)


def _logic_recovery_workload() -> Workload:
    def setup(config: BenchConfig):
        from repro.core.proxy_detector import ProxyDetector
        world = _landscape(config.scale(50, 80), config.seed)
        detector = ProxyDetector(world.chain.state,
                                 world.chain.block_context())
        checks = []
        for address in world.true_proxies():
            check = detector.check(address)
            if check.is_proxy and check.logic_slot is not None:
                checks.append(check)
        return world, checks

    def run(context, config: BenchConfig):
        from repro.core.logic_finder import LogicFinder
        world, checks = context
        world.node.metrics.reset()
        tracer = SpanTracer(registry=world.node.metrics)
        finder = LogicFinder(world.node)
        histories = []
        for check in checks:
            with tracer.span("logic_history"):
                histories.append(finder.find(check))
        calls = [history.api_calls_used for history in histories]
        return world.node.metrics, {
            "storage_proxies": len(checks),
            "mean_getstorageat_calls":
                statistics.mean(calls) if calls else 0.0,
        }

    return Workload(
        name="logic_recovery",
        description="Algorithm 1 logic-history recovery (binary search over "
                    "the block range) for every storage proxy",
        setup=setup, run=run)


def _collision_accuracy_workload() -> Workload:
    def setup(config: BenchConfig):
        from repro.corpus.ground_truth import build_accuracy_corpus
        return build_accuracy_corpus(
            pairs_per_case=config.scale(3, 6), seed=config.seed)

    def run(corpus, config: BenchConfig):
        from repro.landscape.accuracy import table2
        registry = MetricsRegistry()
        tracer = SpanTracer(registry=registry)
        collisions = 0
        for methodology in ("union", "all"):
            with tracer.span("table2", methodology=methodology):
                scored = table2(corpus, methodology=methodology)
            collisions += sum(matrix.tp + matrix.fn
                              for tools in scored.values()
                              for tool, matrix in tools.items()
                              if tool == "Proxion")
        return registry, {
            "labelled_pairs": len(corpus.pairs),
            "proxion_positive_pairs": collisions,
        }

    return Workload(
        name="collision_accuracy",
        description="function + storage collision scoring (Table 2, both "
                    "methodologies) on the labelled accuracy corpus",
        setup=setup, run=run)


def _selector_mining_workload() -> Workload:
    def setup(config: BenchConfig):
        from repro.utils.abi import function_selector
        return function_selector("free_ether_withdrawal()")

    def run(target, config: BenchConfig):
        from repro.core.selector_miner import mine_selector
        registry = MetricsRegistry()
        tracer = SpanTracer(registry=registry)
        result = mine_selector(target, prefix_bits=12,
                               max_attempts=200_000, tracer=tracer)
        return registry, {
            "attempts": result.attempts,
            "found": result.found,
            "attempts_per_second": round(result.attempts_per_second),
        }

    return Workload(
        name="selector_mining",
        description="§2.3 selector-collision mining, 12-bit prefix against "
                    "free_ether_withdrawal()",
        setup=setup, run=run)


def _pipeline_faulty_workload() -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(50, 80), config.seed)

    def run(world, config: BenchConfig):
        from repro.chain.faults import FaultyNode, canned_plan
        from repro.chain.resilient import ResilientNode
        from repro.core.pipeline import Proxion, ProxionOptions
        world.node.metrics.reset()
        # A fresh FaultyNode per repeat resets its call counters, so every
        # repeat sees the identical deterministic fault schedule.
        plan = canned_plan("transient", seed=config.seed)
        node = ResilientNode(FaultyNode(world.node, plan),
                             seed=config.seed, sleep=None)
        proxion = Proxion(node, registry=world.registry, dataset=world.dataset,
                          options=ProxionOptions())
        report = proxion.analyze_all()
        registry = world.node.metrics
        retries = sum(int(counter.value) for counter
                      in registry.counters_named("resilience.retries").values())
        injected = sum(int(counter.value) for counter
                       in registry.counters_named("faults.injected").values())
        return registry, {
            "contracts": len(report),
            "quarantined": len(report.failures),
            "faults_injected": injected,
            "retries": retries,
        }

    return Workload(
        name="pipeline_faulty",
        description="the sweep_80 pipeline under the canned 'transient' "
                    "fault plan, absorbed by the resilient RPC layer "
                    "(retry/backoff overhead measurement)",
        setup=setup, run=run)


def _pipeline_parallel_workload(workers: int = 4) -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(120, 250), config.seed)

    def run(world, config: BenchConfig):
        import os

        from repro.core.pipeline import ProxionOptions
        from repro.parallel import SweepSpec, run_sharded_sweep

        spec = SweepSpec(total=config.scale(120, 250), seed=config.seed,
                         options=ProxionOptions(profile_evm=True))
        result = run_sharded_sweep(spec, workers=workers,
                                   strategy="codehash", world=world)
        # Wall-clock speedup is a property of the host (free cores, pool
        # start-up); the CPU critical path is the hardware-independent
        # number: total shard CPU over the slowest shard.
        return result.metrics, {
            "contracts": len(result.report),
            "workers": workers,
            "strategy": result.strategy,
            "host_cpus": os.cpu_count(),
            "sum_shard_cpu_s": round(result.sum_shard_cpu_s, 4),
            "max_shard_cpu_s": round(result.max_shard_cpu_s, 4),
            "critical_path_speedup": round(result.critical_path_speedup, 3),
        }

    return Workload(
        name="pipeline_parallel",
        description=f"the sweep_250 pipeline sharded across {workers} "
                    f"worker processes (codehash strategy, merged "
                    f"byte-identically; measures fan-out overhead and the "
                    f"CPU critical path)",
        setup=setup, run=run)


def _pipeline_supervised_workload(workers: int = 4) -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(120, 250), config.seed)

    def run(world, config: BenchConfig):
        from repro.core.pipeline import ProxionOptions
        from repro.parallel import (
            SupervisorConfig,
            SweepSpec,
            run_sharded_sweep,
        )

        # The windowed worker-crash plan kills each worker once mid-shard;
        # respawn-with-resume heals it.  The median-wall delta against
        # pipeline_parallel (same scale, crash-free) is the price of
        # losing and resurrecting every worker once — the supervisor's
        # self-healing overhead under fire.
        spec = SweepSpec(total=config.scale(120, 250), seed=config.seed,
                         options=ProxionOptions(profile_evm=True),
                         chaos="worker-crash", chaos_seed=config.seed)
        result = run_sharded_sweep(
            spec, workers=workers, strategy="codehash", world=world,
            supervise=SupervisorConfig(shard_timeout_s=30.0,
                                       max_shard_retries=2))
        return result.metrics, {
            "contracts": len(result.report),
            "quarantined": len(result.report.failures),
            "workers": workers,
            "respawns": result.respawns,
            "hung_kills": result.hung_kills,
            "poison_contracts": result.poison_contracts,
            "sum_shard_cpu_s": round(result.sum_shard_cpu_s, 4),
            "critical_path_speedup": round(result.critical_path_speedup, 3),
        }

    return Workload(
        name="pipeline_supervised",
        description=f"the sweep_250 pipeline across {workers} supervised "
                    f"workers with every worker crash-injected once "
                    f"mid-shard (worker-crash plan): measures the "
                    f"kill/respawn/resume self-healing overhead vs "
                    f"pipeline_parallel",
        setup=setup, run=run)


def _pipeline_supervised_events_workload(workers: int = 4) -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(120, 250), config.seed)

    def run(world, config: BenchConfig):
        import tempfile

        from repro.core.pipeline import ProxionOptions
        from repro.parallel import (
            SupervisorConfig,
            SweepSpec,
            run_sharded_sweep,
        )

        # pipeline_supervised with the flight recorder switched on: same
        # scale, same crash plan, plus the merged events journal (parent
        # narration, per-worker journals, cross-process ingestion).  The
        # median delta against pipeline_supervised is the recorder's
        # whole-sweep overhead — the acceptance bar is <5%.
        spec = SweepSpec(total=config.scale(120, 250), seed=config.seed,
                         options=ProxionOptions(profile_evm=True),
                         chaos="worker-crash", chaos_seed=config.seed)
        with tempfile.TemporaryDirectory(prefix="repro-bench-events-") as d:
            result = run_sharded_sweep(
                spec, workers=workers, strategy="codehash", world=world,
                supervise=SupervisorConfig(shard_timeout_s=30.0,
                                           max_shard_retries=2),
                events_path=os.path.join(d, "sweep.events.jsonl"))
            from repro.obs.events import read_journal
            journal_events = len(read_journal(
                os.path.join(d, "sweep.events.jsonl")).events)
        return result.metrics, {
            "contracts": len(result.report),
            "quarantined": len(result.report.failures),
            "workers": workers,
            "respawns": result.respawns,
            "journal_events": journal_events,
            "sum_shard_cpu_s": round(result.sum_shard_cpu_s, 4),
            "critical_path_speedup": round(result.critical_path_speedup, 3),
        }

    return Workload(
        name="pipeline_supervised_events",
        description=f"pipeline_supervised with the repro.events/1 flight "
                    f"recorder journaling the whole run across {workers} "
                    f"workers: the median delta against pipeline_supervised "
                    f"is the journal's overhead (<5% required)",
        setup=setup, run=run)


def _pipeline_audited_workload(workers: int = 4) -> Workload:
    def setup(config: BenchConfig):
        return _landscape(config.scale(120, 250), config.seed)

    def run(world, config: BenchConfig):
        import tempfile

        from repro.core.pipeline import ProxionOptions
        from repro.parallel import SweepSpec, run_sharded_sweep

        # pipeline_parallel with verdict provenance switched on: same
        # scale, crash-free, plus per-contract repro.evidence/1 trails
        # recorded in every worker and persisted to a shared audit
        # directory.  The median delta against pipeline_parallel is the
        # price of *full* evidence recording; the un-audited default path
        # (NULL_TRAIL) must stay within the regression gate's bar of the
        # committed pipeline_parallel baseline — that is what proves the
        # no-op trail really is free.
        spec = SweepSpec(total=config.scale(120, 250), seed=config.seed,
                         options=ProxionOptions(profile_evm=True))
        with tempfile.TemporaryDirectory(prefix="repro-bench-audit-") as d:
            audit_dir = os.path.join(d, "audit")
            result = run_sharded_sweep(spec, workers=workers,
                                       strategy="codehash", world=world,
                                       audit_dir=audit_dir)
            from repro.obs.provenance import AuditDir
            evidence_files = len(AuditDir(audit_dir).addresses())
        return result.metrics, {
            "contracts": len(result.report),
            "workers": workers,
            "evidence_files": evidence_files,
            "sum_shard_cpu_s": round(result.sum_shard_cpu_s, 4),
            "critical_path_speedup": round(result.critical_path_speedup, 3),
        }

    return Workload(
        name="pipeline_audited",
        description=f"pipeline_parallel with repro.evidence/1 verdict "
                    f"provenance recorded in all {workers} workers (one "
                    f"evidence file per contract): the median delta "
                    f"against pipeline_parallel bounds the audit overhead",
        setup=setup, run=run)


def _pipeline_incremental_workload() -> Workload:
    def setup(config: BenchConfig):
        import tempfile

        from repro.core.pipeline import Proxion
        from repro.store import attach_store

        # The "corpus before growth": the first half of the landscape,
        # swept once into a warm store.  Each timed repeat then re-sweeps
        # the full (2x grown) corpus incrementally from a pristine copy
        # of that store — the O(delta) claim under test.  One untimed
        # cold full sweep is clocked here for the warm/cold ratio.
        world = _landscape(config.scale(120, 250), config.seed)
        addresses = world.addresses()
        workdir = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        warm_path = os.path.join(workdir.name, "warm.store")
        with attach_store(warm_path) as binding:
            proxion = Proxion.from_chain(world.chain,
                                         registry=world.registry,
                                         dataset=world.dataset,
                                         store=binding)
            proxion.analyze_all(addresses[:len(addresses) // 2])
        start = clock()
        cold = Proxion.from_chain(world.chain, registry=world.registry,
                                  dataset=world.dataset)
        cold.analyze_all(addresses)
        cold_wall_s = clock() - start
        # The TemporaryDirectory object rides along so the warm store
        # outlives setup (it is deleted with the context).
        return world, workdir, warm_path, cold_wall_s

    def run(context, config: BenchConfig):
        import shutil

        from repro.core.pipeline import Proxion
        from repro.store import attach_store

        world, workdir, warm_path, cold_wall_s = context
        run_path = os.path.join(workdir.name, "run.store")
        for suffix in ("", "-wal", "-shm"):
            if os.path.exists(warm_path + suffix):
                shutil.copyfile(warm_path + suffix, run_path + suffix)
        start = clock()
        with attach_store(run_path, incremental=True) as binding:
            proxion = Proxion.from_chain(world.chain,
                                         registry=world.registry,
                                         dataset=world.dataset,
                                         store=binding)
            report = proxion.analyze_all()
        warm_wall_s = clock() - start
        counters = proxion.metrics.snapshot()["counters"]
        return proxion.metrics, {
            "contracts": len(report),
            "restored_contracts": counters.get(
                "pipeline.store_restored_contracts", 0),
            "emulated_code_hashes": counters.get(
                'dedup.misses{cache="proxy_check"}', 0),
            "cold_wall_s": round(cold_wall_s, 4),
            "warm_over_cold": (round(warm_wall_s / cold_wall_s, 3)
                               if cold_wall_s else None),
        }

    return Workload(
        name="pipeline_incremental",
        description="warm --store --incremental re-sweep of a 2x grown "
                    "corpus (first half already settled in the store) vs "
                    "the cold from-scratch sweep: the warm_over_cold "
                    "ratio is the O(delta) headline",
        setup=setup, run=run)


def _serve_queries_workload() -> Workload:
    def setup(config: BenchConfig):
        import tempfile

        from repro.core.pipeline import Proxion
        from repro.store import attach_store

        # A settled store fronted by the daemon: every benched query is
        # a point read through a WAL reader connection, the service
        # mode's hot path.
        world = _landscape(config.scale(60, 150), config.seed)
        workdir = tempfile.TemporaryDirectory(prefix="repro-bench-serve-")
        store_path = os.path.join(workdir.name, "serve.store")
        with attach_store(store_path) as binding:
            proxion = Proxion.from_chain(world.chain,
                                         registry=world.registry,
                                         dataset=world.dataset,
                                         store=binding)
            report = proxion.analyze_all()
        rendered = ["0x" + address.hex() for address in report.analyses]
        return world, workdir, store_path, rendered

    def run(context, config: BenchConfig):
        from http.client import HTTPConnection

        from repro.serve import ServeApp, ServeConfig

        world, workdir, store_path, rendered = context
        world.node.metrics.reset()
        queries = config.scale(200, 800)
        serve_config = ServeConfig(
            store_path=store_path,
            # The bench measures query latency, not the throttle: one
            # keep-alive client must never be rate limited here.
            rate_per_s=1e9, burst=queries + 1)
        latencies: list[float] = []
        start = clock()
        with ServeApp(serve_config, landscape=world) as app:
            connection = HTTPConnection("127.0.0.1", app.port, timeout=30)
            try:
                for index in range(queries):
                    address = rendered[index % len(rendered)]
                    began = clock()
                    connection.request("GET", f"/v1/contract/{address}")
                    response = connection.getresponse()
                    body = response.read()
                    latencies.append(clock() - began)
                    assert response.status == 200, body[:200]
            finally:
                connection.close()
        wall_s = clock() - start
        latencies.sort()

        def percentile(fraction: float) -> float:
            return latencies[min(len(latencies) - 1,
                                 int(fraction * len(latencies)))]

        return world.node.metrics, {
            "queries": queries,
            "contracts": len(rendered),
            "qps": round(queries / wall_s, 1) if wall_s else None,
            "p50_ms": round(percentile(0.50) * 1000, 3),
            "p99_ms": round(percentile(0.99) * 1000, 3),
        }

    return Workload(
        name="serve_queries",
        description="GET /v1/contract/ADDR against a settled store over "
                    "one keep-alive connection (800 queries, 200 in "
                    "--quick): p50/p99 latency and qps of the serve "
                    "daemon's hot path",
        setup=setup, run=run)


def _build_workloads() -> dict[str, Workload]:
    suite = [
        _sweep_workload(50, 80),
        _sweep_workload(120, 250),
        _sweep_workload(500, 500, quick=False),
        _pipeline_faulty_workload(),
        _pipeline_parallel_workload(),
        _pipeline_audited_workload(),
        _pipeline_incremental_workload(),
        _serve_queries_workload(),
        _pipeline_supervised_workload(),
        _pipeline_supervised_events_workload(),
        _proxy_check_workload(),
        _logic_recovery_workload(),
        _collision_accuracy_workload(),
        _selector_mining_workload(),
    ]
    return {workload.name: workload for workload in suite}


#: The registered suite, in execution order.
WORKLOADS: dict[str, Workload] = _build_workloads()


def select_workloads(config: BenchConfig) -> list[Workload]:
    """The workloads one config runs, honoring ``--quick`` and filters."""
    selected = []
    for workload in WORKLOADS.values():
        if config.quick and not workload.quick:
            continue
        if config.only is not None and workload.name not in config.only:
            continue
        selected.append(workload)
    if config.only is not None:
        unknown = set(config.only) - set(WORKLOADS)
        if unknown:
            raise KeyError(f"unknown workload(s): {', '.join(sorted(unknown))}"
                           f" (known: {', '.join(WORKLOADS)})")
    return selected


# ------------------------------------------------------------------- the run
@dataclass(slots=True)
class WorkloadResult:
    """Timings + observability dimensions of one benchmarked workload."""

    name: str
    description: str
    timings_s: list[float]
    dims: dict[str, Any]
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def stats(self) -> dict[str, float]:
        return timing_stats(self.timings_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "description": self.description,
            "repeats": len(self.timings_s),
            "timings_s": [round(t, 6) for t in self.timings_s],
            "stats": {k: round(v, 6) for k, v in self.stats.items()},
            "spans": self.dims.get("spans", {}),
            "rpc": self.dims.get("rpc", {}),
            "dedup": self.dims.get("dedup", {}),
            "evm": self.dims.get("evm", {}),
            "meta": self.meta,
        }


def timing_stats(timings: list[float]) -> dict[str, float]:
    """Robust summary stats: min/median plus IQR and stddev for spread."""
    if not timings:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0,
                "stddev": 0.0, "p25": 0.0, "p75": 0.0, "iqr": 0.0}
    ordered = sorted(timings)
    if len(ordered) >= 2:
        # statistics.quantiles needs n>=2; exclusive matches numpy default.
        quartiles = statistics.quantiles(ordered, n=4, method="inclusive")
        p25, median, p75 = quartiles
        stddev = statistics.stdev(ordered)
    else:
        p25 = median = p75 = ordered[0]
        stddev = 0.0
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": statistics.fmean(ordered),
        "median": median,
        "stddev": stddev,
        "p25": p25,
        "p75": p75,
        "iqr": p75 - p25,
    }


def _labels_dict(labels) -> dict[str, str]:
    return dict(labels)


def dims_from_registry(registry: MetricsRegistry) -> dict[str, Any]:
    """Harvest the explanatory dimensions of one repeat from a registry."""
    spans: dict[str, dict[str, float]] = {}
    for histogram in registry.iter_histograms():
        if histogram.name != "span.seconds" or not histogram.count:
            continue
        stage = _labels_dict(histogram.labels).get("name", "")
        spans[stage] = {
            "calls": histogram.count,
            "total_s": round(histogram.sum, 6),
            "mean_ms": round(histogram.mean * 1000, 4),
        }

    rpc = {
        _labels_dict(labels).get("method", ""): int(counter.value)
        for labels, counter in registry.counters_named("rpc.calls").items()
        if counter.value
    }

    dedup: dict[str, dict[str, Any]] = {}
    for cache in _DEDUP_CACHES:
        hits = int(registry.counter_value("dedup.hits", cache=cache))
        misses = int(registry.counter_value("dedup.misses", cache=cache))
        total = hits + misses
        dedup[cache] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else None,
        }

    evm = {
        "instructions": int(registry.counter_value("evm.instructions")),
        "base_gas": int(registry.counter_value("evm.base_gas")),
        "creates": int(registry.counter_value("evm.creates")),
        "logs": int(registry.counter_value("evm.logs")),
        "max_call_depth": int(registry.gauge("evm.max_call_depth").value),
        "opcode_classes": {
            _labels_dict(labels).get("class", ""): int(counter.value)
            for labels, counter
            in registry.counters_named("evm.opcodes").items()
            if counter.value
        },
    }
    return {"spans": spans, "rpc": rpc, "dedup": dedup, "evm": evm}


def run_workload(workload: Workload, config: BenchConfig) -> WorkloadResult:
    """Warmup + N timed repeats of one workload, on the shared obs clock."""
    context = workload.setup(config)
    timings: list[float] = []
    registry: MetricsRegistry | None = None
    meta: dict[str, Any] = {}
    for iteration in range(config.warmup + config.effective_repeats):
        start = clock()
        registry, meta = workload.run(context, config)
        elapsed = clock() - start
        if iteration >= config.warmup:
            timings.append(elapsed)
    assert registry is not None
    return WorkloadResult(
        name=workload.name,
        description=workload.description,
        timings_s=timings,
        dims=dims_from_registry(registry),
        meta=meta,
    )


def environment_meta(config: BenchConfig) -> dict[str, Any]:
    """Host / interpreter / git provenance of one suite run."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": socket.gethostname(),
        "git_commit": commit,
        "quick": config.quick,
        "repeats": config.effective_repeats,
        "warmup": config.warmup,
        "seed": config.seed,
        "created_unix": round(time.time(), 3),
        "argv": sys.argv[1:],
    }


def run_suite(config: BenchConfig | None = None,
              progress: Callable[[str], None] | None = None) -> dict[str, Any]:
    """Run the selected workloads; return the ``repro.bench/1`` payload."""
    config = config or BenchConfig()
    results: list[WorkloadResult] = []
    selected = select_workloads(config)
    for index, workload in enumerate(selected, start=1):
        if progress is not None:
            progress(f"[{index}/{len(selected)}] {workload.name}: "
                     f"{workload.description}")
        result = run_workload(workload, config)
        if progress is not None:
            stats = result.stats
            progress(f"    median {stats['median'] * 1000:.1f} ms "
                     f"(min {stats['min'] * 1000:.1f}, "
                     f"iqr {stats['iqr'] * 1000:.1f}) "
                     f"over {len(result.timings_s)} repeats")
        results.append(result)
    return {
        "schema": SCHEMA,
        "meta": environment_meta(config),
        "workloads": {result.name: result.to_dict() for result in results},
    }


# ------------------------------------------------------------- serialization
def write_payload(payload: dict[str, Any], path: str) -> None:
    """Serialize one payload; surfaces ``OSError`` with the target path."""
    try:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
    except OSError as error:
        raise OSError(f"cannot write benchmark results to {path!r}: "
                      f"{error}") from error


def load_payload(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as stream:
        return json.load(stream)


def validate_payload(payload: Any) -> list[str]:
    """All schema problems of one payload (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
    meta = payload.get("meta")
    if not isinstance(meta, dict) or "python" not in meta:
        problems.append("meta missing or lacks interpreter provenance")
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["no workloads recorded"]
    for name, row in workloads.items():
        if not isinstance(row, dict):
            problems.append(f"{name}: row is not an object")
            continue
        stats = row.get("stats", {})
        for key in ("min", "median", "stddev", "iqr"):
            if key not in stats:
                problems.append(f"{name}: stats missing {key!r}")
        if not row.get("timings_s"):
            problems.append(f"{name}: no timings recorded")
        for dimension in ("spans", "rpc", "dedup", "evm"):
            if dimension not in row:
                problems.append(f"{name}: missing {dimension!r} breakdown")
    return problems


# ----------------------------------------------------------------- comparator
@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One workload's baseline-vs-current verdict."""

    workload: str
    status: str                    # ok | improved | warn | fail | new |
    #                                missing | zero-baseline
    baseline_median: float | None
    current_median: float | None
    delta: float | None            # (current - baseline) / baseline

    def describe(self) -> str:
        if self.status == "new":
            return f"{self.workload}: new workload (no baseline) — ok"
        if self.status == "missing":
            return (f"{self.workload}: present in baseline only — "
                    f"was it removed?")
        if self.status == "zero-baseline":
            return (f"{self.workload}: baseline median is zero — "
                    f"cannot compare, skipping")
        assert self.delta is not None
        direction = "slower" if self.delta >= 0 else "faster"
        return (f"{self.workload}: {abs(self.delta):.1%} {direction} "
                f"(median {self.baseline_median * 1000:.2f} ms → "
                f"{self.current_median * 1000:.2f} ms) [{self.status}]")


@dataclass(slots=True)
class BenchComparison:
    """The full diff of two payloads, with the gate verdict."""

    rows: list[ComparisonRow]

    @property
    def failures(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.status == "fail"]

    @property
    def warnings(self) -> list[ComparisonRow]:
        return [row for row in self.rows
                if row.status in ("warn", "missing")]

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def exit_code(self) -> int:
        return 1 if self.failed else 0

    def render(self) -> str:
        lines = ["== bench regression gate =="]
        for row in self.rows:
            lines.append("  " + row.describe())
        if self.failed:
            lines.append(f"FAIL: {len(self.failures)} workload(s) regressed "
                         f"beyond the fail threshold")
        elif self.warnings:
            lines.append(f"WARN: {len(self.warnings)} workload(s) need "
                         f"attention (gate passes)")
        else:
            lines.append("OK: no regressions")
        return "\n".join(lines)


def _median_of(row: Any) -> float | None:
    if not isinstance(row, dict):
        return None
    median = row.get("stats", {}).get("median")
    return float(median) if isinstance(median, (int, float)) else None


def compare_payloads(baseline: Any, current: Any, *,
                     warn_threshold: float = WARN_THRESHOLD,
                     fail_threshold: float = FAIL_THRESHOLD,
                     per_workload_fail: dict[str, float] | None = None,
                     ) -> BenchComparison:
    """Diff two ``repro.bench/1`` payloads, tolerant of sparse baselines.

    A workload **fails** when its current median exceeds the baseline
    median by strictly more than its fail threshold (exactly at the
    threshold still only warns), **warns** above ``warn_threshold``, and is
    reported but never failed for missing/zero baselines — an empty
    baseline must not brick the gate on first adoption.
    """
    overrides = dict(PER_WORKLOAD_FAIL)
    overrides.update(per_workload_fail or {})
    baseline_rows = (baseline or {}).get("workloads", {}) \
        if isinstance(baseline, dict) else {}
    current_rows = (current or {}).get("workloads", {}) \
        if isinstance(current, dict) else {}

    rows: list[ComparisonRow] = []
    for name in sorted(set(baseline_rows) | set(current_rows)):
        base_median = _median_of(baseline_rows.get(name))
        cur_median = _median_of(current_rows.get(name))
        if cur_median is None:
            rows.append(ComparisonRow(name, "missing", base_median, None,
                                      None))
            continue
        if base_median is None:
            rows.append(ComparisonRow(name, "new", None, cur_median, None))
            continue
        if base_median <= 0:
            rows.append(ComparisonRow(name, "zero-baseline", base_median,
                                      cur_median, None))
            continue
        delta = (cur_median - base_median) / base_median
        # Overrides only ever grant extra headroom (noisy workloads); a
        # looser global threshold is never tightened back down by one.
        workload_fail = max(overrides.get(name, fail_threshold),
                            fail_threshold)
        if delta > workload_fail:
            status = "fail"
        elif delta > warn_threshold:
            status = "warn"
        elif delta < -warn_threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(ComparisonRow(name, status, base_median, cur_median,
                                  delta))
    return BenchComparison(rows=rows)
