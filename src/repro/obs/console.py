"""Read-only consumers of the flight recorder: status, tail, health.

These are the live ops views over a ``repro.events/1`` journal
(:mod:`repro.obs.events`) — everything here opens the journal read-only
and tolerates a sweep that is *still writing to it*, reusing the
checkpoint tail-tolerance rules: a crash- or race-truncated final line is
skipped, corruption anywhere earlier refuses loudly.

* :func:`journal_snapshot` folds the journal into a :class:`SweepStatus`
  — per-shard progress, heartbeat lag, respawn/bisection accounting, and
  a throughput-derived ETA — rendered by :func:`render_status` for
  ``repro status`` and serialized via :meth:`SweepStatus.to_dict` for the
  HTTP ``/progress`` endpoint;
* :func:`tail_journal` streams events as they land (``repro tail
  --follow``), holding its offset at the start of any incomplete line so
  a half-written event is delivered once, whole, on the next poll;
* :func:`journal_health` is the ``/healthz`` verdict: a finished sweep is
  healthy forever; a live one is healthy while the supervisor keeps
  emitting and no worker's heartbeat lag (latest tick lag plus the tick's
  own age) exceeds the threshold.

Lag math leans on the journal carrying *monotonic* timestamps comparable
across processes on one host: ``time.monotonic() - event.mono`` in the
reader is a true age, no wall-clock skew involved.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.obs.events import (
    CHECKPOINT_RESUME,
    Event,
    PIPELINE_QUARANTINE,
    SUPERVISOR_BISECT,
    SUPERVISOR_QUARANTINE,
    SUPERVISOR_TICK,
    SWEEP_END,
    SWEEP_START,
    WORKER_EXIT,
    WORKER_HUNG_KILL,
    WORKER_RESPAWN,
    WORKER_SPAWN,
    read_header,
    read_journal,
)


@dataclass(slots=True)
class ShardStatus:
    """Latest-known state of one shard (its root task plus any splits)."""

    shard: int
    total: int = 0               # contracts in the root task
    completed: int = 0           # high-water completed count
    state: str = "pending"       # pending | running | done | bisecting
    lag_s: float | None = None   # heartbeat lag at last tick (age-adjusted)
    respawns: int = 0
    hung_kills: int = 0
    bisections: int = 0
    quarantined: int = 0


@dataclass(slots=True)
class SweepStatus:
    """One point-in-time reading of a sweep's journal."""

    path: str
    started: bool = False
    finished: bool = False
    contracts: int = 0           # total contracts (from sweep.start)
    workers: int = 0
    completed: int = 0           # sum of shard high-water marks
    elapsed_s: float | None = None
    eta_s: float | None = None   # throughput-derived; None before data
    throughput_cps: float | None = None   # contracts per second
    analyses: int | None = None  # final counts, from sweep.end only
    failures: int | None = None
    respawns: int = 0
    hung_kills: int = 0
    bisections: int = 0
    quarantined: int = 0         # poison + pipeline quarantines
    resumed: int = 0             # contracts restored by checkpoint resume
    recovered_truncations: int = 0
    truncated_tail: int = 0      # journal lines dropped by the reader
    events: int = 0
    shards: dict[int, ShardStatus] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        record = {name: getattr(self, name)
                  for name in ("path", "started", "finished", "contracts",
                               "workers", "completed", "elapsed_s", "eta_s",
                               "throughput_cps", "analyses", "failures",
                               "respawns", "hung_kills",
                               "bisections", "quarantined", "resumed",
                               "recovered_truncations", "truncated_tail",
                               "events")}
        record["shards"] = {
            str(index): {
                "total": shard.total,
                "completed": shard.completed,
                "state": shard.state,
                "lag_s": shard.lag_s,
                "respawns": shard.respawns,
                "hung_kills": shard.hung_kills,
                "bisections": shard.bisections,
                "quarantined": shard.quarantined,
            }
            for index, shard in sorted(self.shards.items())
        }
        return record


def _shard_of(status: SweepStatus, event: Event) -> ShardStatus | None:
    if event.shard is None:
        return None
    shard = status.shards.get(event.shard)
    if shard is None:
        shard = ShardStatus(shard=event.shard)
        status.shards[event.shard] = shard
    return shard


def journal_snapshot(path: str, now_mono: float | None = None) -> SweepStatus:
    """Fold a journal (possibly still being written) into a status."""
    loaded = read_journal(path)
    now = time.monotonic() if now_mono is None else now_mono
    status = SweepStatus(path=path, truncated_tail=loaded.truncated_tail,
                         events=len(loaded.events))

    start_mono: float | None = None
    for event in loaded.ordered():
        shard = _shard_of(status, event)
        if event.kind == SWEEP_START:
            status.started = True
            start_mono = event.mono
            status.contracts = int(event.attrs.get("contracts", 0))
            status.workers = int(event.attrs.get("workers", 0))
        elif event.kind == SWEEP_END:
            status.finished = True
            if "analyses" in event.attrs:
                status.analyses = int(event.attrs["analyses"])
                status.failures = int(event.attrs.get("failures", 0))
            for entry in status.shards.values():
                entry.state = "done"
                entry.lag_s = None
        elif event.kind == WORKER_SPAWN and shard is not None:
            if int(event.attrs.get("depth", 0)) == 0:
                shard.total = int(event.attrs.get("total", shard.total))
            shard.state = "running"
        elif event.kind == SUPERVISOR_TICK and shard is not None:
            completed = int(event.attrs.get("completed", 0))
            if completed > shard.completed:
                shard.completed = completed
            shard.lag_s = (float(event.attrs.get("lag_s", 0.0))
                           + max(0.0, now - event.mono))
        elif event.kind == WORKER_EXIT and shard is not None:
            if event.attrs.get("clean"):
                shard.state = "done"
                shard.lag_s = None
                completed = int(event.attrs.get("completed", shard.total))
                if completed > shard.completed:
                    shard.completed = completed
        elif event.kind == WORKER_RESPAWN and shard is not None:
            shard.respawns += 1
            status.respawns += 1
            shard.state = "running"
        elif event.kind == WORKER_HUNG_KILL and shard is not None:
            shard.hung_kills += 1
            status.hung_kills += 1
        elif event.kind == SUPERVISOR_BISECT and shard is not None:
            shard.bisections += 1
            status.bisections += 1
            shard.state = "bisecting"
        elif event.kind in (SUPERVISOR_QUARANTINE, PIPELINE_QUARANTINE):
            status.quarantined += 1
            if shard is not None:
                shard.quarantined += 1
        elif event.kind == CHECKPOINT_RESUME:
            status.resumed += int(event.attrs.get("restored", 0))
            status.recovered_truncations += int(
                event.attrs.get("recovered_truncations", 0))

    status.completed = sum(shard.completed
                           for shard in status.shards.values())
    if start_mono is not None:
        status.elapsed_s = max(0.0, now - start_mono)
        if not status.finished and status.elapsed_s > 0 and status.completed:
            status.throughput_cps = status.completed / status.elapsed_s
            remaining = max(0, status.contracts - status.completed
                            - status.quarantined)
            status.eta_s = remaining / status.throughput_cps
    return status


# ---------------------------------------------------------------- rendering
def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "n/a"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def render_status(status: SweepStatus) -> str:
    """The human block ``repro status`` prints."""
    if status.finished:
        # The merged report's own accounting beats per-shard high-water
        # marks (bisected sub-tasks recount from their own subsets).
        lines = [f"sweep finished — {status.analyses} analyzed, "
                 f"{status.failures} failed of {status.contracts} "
                 f"contracts across {status.workers} shard(s)"]
    else:
        phase = "running" if status.started else "starting"
        lines = [f"sweep {phase} — {status.completed}/{status.contracts} "
                 f"contracts across {status.workers} shard(s)"]
    lines.append(
        f"  elapsed {_fmt_duration(status.elapsed_s)}"
        + (f", eta {_fmt_duration(status.eta_s)}"
           if status.eta_s is not None else "")
        + (f", {status.throughput_cps:.1f} contracts/s"
           if status.throughput_cps is not None else ""))
    lines.append(f"  {status.respawns} respawns, {status.hung_kills} hung "
                 f"kills, {status.bisections} bisections, "
                 f"{status.quarantined} quarantined"
                 + (f", {status.resumed} restored from checkpoint"
                    if status.resumed else ""))
    if status.truncated_tail:
        lines.append(f"  ({status.truncated_tail} in-flight journal line(s) "
                     f"skipped)")
    if status.shards:
        lines.append(f"  {'shard':>5s} {'state':10s} {'progress':>12s} "
                     f"{'lag':>8s} {'respawns':>8s} {'quar':>5s}")
        for index, shard in sorted(status.shards.items()):
            progress = (f"{shard.completed}/{shard.total}"
                        if shard.total else str(shard.completed))
            lag = f"{shard.lag_s:.1f}s" if shard.lag_s is not None else "-"
            lines.append(f"  {index:>5d} {shard.state:10s} {progress:>12s} "
                         f"{lag:>8s} {shard.respawns:>8d} "
                         f"{shard.quarantined:>5d}")
    return "\n".join(lines)


def format_event(event: Event) -> str:
    """One human line per event, for ``repro tail``."""
    clock = time.strftime("%H:%M:%S", time.localtime(event.ts))
    millis = int((event.ts % 1) * 1000)
    origin = f"pid {event.pid}"
    if event.shard is not None:
        origin += f" shard {event.shard}"
    rendered = " ".join(f"{key}={value}"
                        for key, value in event.attrs.items())
    return (f"{clock}.{millis:03d} [{origin}] {event.kind}"
            + (f" {rendered}" if rendered else ""))


# ------------------------------------------------------------------- tailing
def tail_journal(path: str, *, follow: bool = False,
                 poll_s: float = 0.25,
                 sleep=time.sleep) -> Iterator[Event]:
    """Yield journal events in file order; with ``follow``, keep watching.

    The offset only ever advances past *complete* lines: a half-written
    final line (the writer is mid-append, or died there) is left for the
    next poll, so following delivers every event exactly once and whole.
    Following ends when the journal records ``sweep.end``; a one-shot
    (non-follow) read ends at end-of-file, skipping a dangling partial
    line the way the checkpoint reader does.
    """
    read_header(path)  # validate schema before streaming
    with open(path, encoding="utf-8") as stream:
        stream.readline()  # the (validated) header
        offset = stream.tell()
        while True:
            stream.seek(offset)
            line = stream.readline()
            if not line:
                if not follow:
                    return
                sleep(poll_s)
                continue
            if not line.endswith("\n"):
                # Incomplete final line: in-progress append or crash tail.
                if not follow:
                    return
                sleep(poll_s)
                continue
            offset = stream.tell()
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                raise ConfigurationError(
                    f"event journal {path!r} has a corrupt complete line "
                    f"at byte offset {offset}") from None
            event = Event.from_dict(record)
            yield event
            if follow and event.kind == SWEEP_END:
                return


# -------------------------------------------------------------------- health
def journal_health(path: str, *, hung_after_s: float = 30.0,
                   now_mono: float | None = None) -> dict[str, Any]:
    """The ``/healthz`` verdict for one journal.

    Healthy iff the sweep finished, or it is live and neither the
    supervisor nor any worker looks wedged: supervisor staleness is the
    age of the newest event, worker staleness is each shard's last tick
    lag plus that tick's own age (both ages are true monotonic deltas).
    """
    now = time.monotonic() if now_mono is None else now_mono
    try:
        loaded = read_journal(path)
    except ConfigurationError as error:
        return {"healthy": False, "reason": str(error)}
    events = loaded.ordered()
    if not events:
        return {"healthy": False, "reason": "journal has no events yet"}
    if any(event.kind == SWEEP_END for event in events):
        return {"healthy": True, "reason": "sweep finished"}

    supervisor_lag = max(0.0, now - events[-1].mono)
    worker_lag = 0.0
    last_tick: dict[int, Event] = {}
    done: set[int] = set()
    for event in events:
        if event.kind == SUPERVISOR_TICK and event.shard is not None:
            last_tick[event.shard] = event
        elif (event.kind == WORKER_EXIT and event.shard is not None
              and event.attrs.get("clean")):
            done.add(event.shard)
    for shard, tick in last_tick.items():
        if shard in done:
            continue
        lag = float(tick.attrs.get("lag_s", 0.0)) + max(0.0, now - tick.mono)
        worker_lag = max(worker_lag, lag)

    max_lag = max(supervisor_lag, worker_lag)
    healthy = max_lag <= hung_after_s
    return {
        "healthy": healthy,
        "reason": ("live" if healthy
                   else f"max heartbeat lag {max_lag:.2f}s exceeds "
                        f"{hung_after_s}s"),
        "supervisor_lag_s": round(supervisor_lag, 3),
        "max_worker_lag_s": round(worker_lag, 3),
        "hung_after_s": hung_after_s,
    }


__all__ = [
    "ShardStatus",
    "SweepStatus",
    "format_event",
    "journal_health",
    "journal_snapshot",
    "render_status",
    "tail_journal",
]
