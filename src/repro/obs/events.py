"""The sweep flight recorder: a structured operational event journal.

Metrics answer "how much"; the journal answers "what happened, when, in
which process".  A §6.1-scale supervised sweep is a multi-process,
multi-day run, and its operational narrative — workers spawned, killed,
respawned, shards bisected, contracts quarantined, breakers tripping —
must be reconstructible *while the sweep is running* and after any crash.
This module is that narrative's storage layer:

* :class:`Event` — one typed operational event, carrying **both** clocks
  (wall ``ts`` for humans, monotonic ``mono`` for ordering — comparable
  across processes on one host since ``CLOCK_MONOTONIC`` is system-wide),
  plus pid/shard provenance and a per-writer sequence number;
* :class:`EventRecorder` — the emit surface components hold
  (``recorder.emit(WORKER_SPAWN, shard=3, attempt=1)``); hands events to
  its sinks; :data:`NULL_RECORDER` is the shared no-op for
  overhead-critical runs (emit collapses to a constant return);
* :class:`EventJournal` — the durable JSONL sink, schema-versioned
  ``repro.events/1`` with the same kill-9 discipline as
  ``repro.checkpoint/1``: the header line is fsynced so a readable file is
  never headerless, every event line is flushed immediately, and readers
  drop (and count) a crash-truncated **final** line while refusing
  corruption anywhere earlier;
* :func:`read_journal` / :func:`total_order` — the read side: load one
  journal tail-tolerantly, and order events from many writers into the
  single merged timeline (``(mono, pid, seq)`` — within one writer this
  is exactly emission order).

Event attributes are serialized with ``default=repr``: a live sweep must
never die because someone attached a non-JSON value to an event (or a
span — :class:`~repro.obs.spans.JsonLinesSink` shares the rule).

The supervisor (:mod:`repro.parallel.supervisor`) writes the parent
journal and folds each worker's private journal into it when the worker
exits — over the same atomic-file channel as results, so a SIGKILL can
never corrupt the merged file.  ``repro status`` / ``repro tail`` and the
HTTP exporter (:mod:`repro.obs.http`) are the read-only consumers; the
taxonomy is catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from repro.errors import ConfigurationError

#: Version tag of the journal file layout.
SCHEMA = "repro.events/1"

# ------------------------------------------------------------ event taxonomy
# Supervisor lifecycle (parent process).
SWEEP_START = "sweep.start"            # supervised sweep begins
SWEEP_END = "sweep.end"                # supervised sweep merged and done
WORKER_SPAWN = "worker.spawn"          # a worker process launched
WORKER_EXIT = "worker.exit"            # a worker process observed dead
WORKER_RESPAWN = "worker.respawn"      # dead/hung worker re-queued (resume)
WORKER_HUNG_KILL = "worker.hung-kill"  # heartbeat-stale worker killed
SUPERVISOR_TICK = "supervisor.tick"    # throttled per-shard progress/lag
SUPERVISOR_BISECT = "supervisor.bisect"            # poison shard split
SUPERVISOR_SALVAGE = "supervisor.salvage"          # checkpoint prefix recovered
SUPERVISOR_QUARANTINE = "supervisor.quarantine"    # poison contract isolated

# Pipeline (per worker, or the serial sweep).
PIPELINE_START = "pipeline.start"          # analyze_all over N addresses
PIPELINE_END = "pipeline.end"              # analyze_all returned
PIPELINE_QUARANTINE = "pipeline.quarantine"  # one contract quarantined

# Checkpoint resume (restored counts, recovered truncations).
CHECKPOINT_RESUME = "checkpoint.resume"

# Resilient RPC layer.
BREAKER_OPEN = "breaker.open"
BREAKER_HALF_OPEN = "breaker.half-open"
BREAKER_CLOSE = "breaker.close"
RETRY_EXHAUSTED = "retry.exhausted"

# Chain following: the monitor rolled facts back to a common ancestor.
CHAIN_REORG = "chain.reorg"

# Multi-endpoint RPC: the failover node switched primaries.
ENDPOINT_FAILOVER = "endpoint.failover"

#: Every kind this version of the schema emits, for docs and validation.
EVENT_KINDS = (
    SWEEP_START, SWEEP_END,
    WORKER_SPAWN, WORKER_EXIT, WORKER_RESPAWN, WORKER_HUNG_KILL,
    SUPERVISOR_TICK, SUPERVISOR_BISECT, SUPERVISOR_SALVAGE,
    SUPERVISOR_QUARANTINE,
    PIPELINE_START, PIPELINE_END, PIPELINE_QUARANTINE,
    CHECKPOINT_RESUME,
    BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSE, RETRY_EXHAUSTED,
    CHAIN_REORG, ENDPOINT_FAILOVER,
)


@dataclass(slots=True)
class Event:
    """One operational event with full provenance.

    ``ts`` is wall-clock (``time.time``) for display; ``mono`` is the
    monotonic clock (``time.monotonic``) used for ordering and lag math —
    on Linux it is system-wide, so events from the parent and its workers
    share one timeline.  ``seq`` restores a total order between events of
    one writer that land on the same monotonic reading.
    """

    kind: str
    ts: float
    mono: float
    pid: int
    seq: int
    shard: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "kind": self.kind,
            "ts": round(self.ts, 6),
            "mono": round(self.mono, 6),
            "pid": self.pid,
            "seq": self.seq,
        }
        if self.shard is not None:
            record["shard"] = self.shard
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Event":
        return cls(
            kind=record.get("kind", "?"),
            ts=float(record.get("ts", 0.0)),
            mono=float(record.get("mono", 0.0)),
            pid=int(record.get("pid", 0)),
            seq=int(record.get("seq", 0)),
            shard=record.get("shard"),
            attrs=dict(record.get("attrs", {})),
        )

    def order_key(self) -> tuple[float, int, int]:
        return (self.mono, self.pid, self.seq)


def total_order(events: Iterable[Event]) -> list[Event]:
    """Merge events from any number of writers into one timeline.

    Sorted by ``(mono, pid, seq)``: monotonic time first (shared across
    processes on one host), then pid and per-writer sequence as stable
    tie-breakers.  For a single writer this is exactly emission order.
    """
    return sorted(events, key=Event.order_key)


class EventJournal:
    """Append-only JSONL sink with the ``repro.checkpoint/1`` durability
    rules: fsynced header, one flushed line per event, crash-truncated
    tails recoverable on read.

    Build with :meth:`create` (fresh file, truncates) or :meth:`append_to`
    (continue an existing journal — the parent re-opening its own file, or
    tests).  ``append_record`` takes a raw dict, which is how the
    supervisor re-emits a worker's events verbatim into the merged
    journal without re-stamping their provenance.
    """

    def __init__(self, path: str, stream: IO[str]) -> None:
        self.path = path
        self._stream = stream
        self._lock = threading.Lock()

    # ----------------------------------------------------------- constructors
    @classmethod
    def create(cls, path: str) -> "EventJournal":
        """Start a fresh journal (truncates), header flushed **and** fsynced
        so a concurrent/post-crash reader can never see a headerless file."""
        stream = open(path, "w", encoding="utf-8")
        header = {"schema": SCHEMA, "created_unix": round(time.time(), 6),
                  "pid": os.getpid()}
        stream.write(json.dumps(header, separators=(",", ":")) + "\n")
        stream.flush()
        os.fsync(stream.fileno())
        return cls(path, stream)

    @classmethod
    def append_to(cls, path: str) -> "EventJournal":
        """Re-open an existing journal for appending (header verified)."""
        read_header(path)
        return cls(path, open(path, "a", encoding="utf-8"))

    # -------------------------------------------------------------- recording
    def append_record(self, record: dict[str, Any]) -> None:
        # ``default=repr`` — a non-JSON attribute value must never crash a
        # live sweep; it degrades to its repr in the journal.
        line = json.dumps(record, separators=(",", ":"), default=repr)
        with self._lock:
            self._stream.write(line + "\n")
            # One flush per event: a kill -9 loses at most the event being
            # written, and a concurrent reader sees every finished line.
            self._stream.flush()

    def on_event(self, event: Event) -> None:
        self.append_record(event.to_dict())

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventRecorder:
    """The emit surface: stamps provenance, fans out to sinks.

    ``shard`` (optional) is the default shard stamped on every event this
    recorder emits — workers carry their shard identity here so call
    sites never repeat it.  Sinks need one method, ``on_event(event)``
    (an :class:`EventJournal`, a list-like test sink, ...).
    """

    enabled = True

    def __init__(self, sinks: tuple = (), shard: int | None = None) -> None:
        self._sinks = list(sinks)
        self._shard = shard
        self._seq = 0
        self._lock = threading.Lock()

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def emit(self, kind: str, shard: int | None = None,
             **attrs: Any) -> Event:
        with self._lock:
            seq = self._seq
            self._seq += 1
        event = Event(kind=kind, ts=time.time(), mono=time.monotonic(),
                      pid=os.getpid(), seq=seq,
                      shard=self._shard if shard is None else shard,
                      attrs=attrs)
        for sink in self._sinks:
            sink.on_event(event)
        return event


class NullEventRecorder(EventRecorder):
    """Records nothing; ``emit`` is a constant-cost no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_event = Event(kind="null", ts=0.0, mono=0.0, pid=0, seq=0)

    def emit(self, kind: str, shard: int | None = None,
             **attrs: Any) -> Event:
        return self._null_event


#: Shared no-op recorder — the default everywhere events are optional.
NULL_RECORDER = NullEventRecorder()


# ------------------------------------------------------------------ read side
@dataclass(slots=True)
class JournalRead:
    """One journal's parsed content plus its recovery accounting."""

    path: str
    header: dict[str, Any]
    events: list[Event]
    truncated_tail: int = 0          # dropped crash-mid-write final lines

    def ordered(self) -> list[Event]:
        return total_order(self.events)


def read_header(path: str) -> dict[str, Any]:
    """Validate and return a journal's header line."""
    try:
        with open(path, encoding="utf-8") as stream:
            first = stream.readline()
    except OSError as error:
        raise ConfigurationError(
            f"cannot read event journal {path!r}: {error}") from None
    if not first.strip():
        raise ConfigurationError(
            f"event journal {path!r} is empty (no header)")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"event journal {path!r} has an unreadable header "
            f"({error})") from None
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"event journal {path!r} has schema "
            f"{header.get('schema') if isinstance(header, dict) else '?'!r}, "
            f"expected {SCHEMA!r}")
    return header


def read_journal(path: str) -> JournalRead:
    """Load one journal, tolerating exactly what a crash can leave behind.

    A partial/garbled **final** line is dropped and counted in
    ``truncated_tail`` (the event it described is lost, never corrupted);
    garbling anywhere earlier is real corruption and refuses loudly —
    the same contract as ``repro.checkpoint/1``, which makes the journal
    safe to read while a sweep is still appending to it.
    """
    header = read_header(path)
    with open(path, encoding="utf-8") as stream:
        lines = stream.read().splitlines()
    events: list[Event] = []
    truncated = 0
    last = len(lines) - 1
    for index, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == last:
                truncated += 1
                continue
            raise ConfigurationError(
                f"event journal {path!r} is corrupt at line {index + 1} "
                f"(not the final line, so not a crash-truncation "
                f"artifact)") from None
        events.append(Event.from_dict(record))
    return JournalRead(path=path, header=header, events=events,
                       truncated_tail=truncated)


__all__ = [
    "BREAKER_CLOSE",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CHAIN_REORG",
    "CHECKPOINT_RESUME",
    "ENDPOINT_FAILOVER",
    "EVENT_KINDS",
    "Event",
    "EventJournal",
    "EventRecorder",
    "JournalRead",
    "NULL_RECORDER",
    "NullEventRecorder",
    "PIPELINE_END",
    "PIPELINE_QUARANTINE",
    "PIPELINE_START",
    "RETRY_EXHAUSTED",
    "SCHEMA",
    "SUPERVISOR_BISECT",
    "SUPERVISOR_QUARANTINE",
    "SUPERVISOR_SALVAGE",
    "SUPERVISOR_TICK",
    "SWEEP_END",
    "SWEEP_START",
    "WORKER_EXIT",
    "WORKER_HUNG_KILL",
    "WORKER_RESPAWN",
    "WORKER_SPAWN",
    "read_header",
    "read_journal",
    "total_order",
]
