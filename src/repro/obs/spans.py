"""Span-based tracing: nested wall-clock timing with attributes and sinks.

Usage::

    tracer = SpanTracer(registry=metrics, sinks=(ring,))
    with tracer.span("proxy_check", address="0x...") as span:
        ...
        span.set(verdict="proxy")

Every finished span carries its wall time (one shared ``perf_counter``
clock for the whole repo), nesting depth, parent name, and key/value
attributes.  Finished spans flow to the configured sinks —
:class:`RingBufferSink` keeps the last N in memory, :class:`JsonLinesSink`
appends one JSON object per line — and, when a registry is attached, each
span also feeds a ``span.seconds{name=...}`` histogram so exporters see
per-stage totals without replaying the sinks.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Iterator

from repro.obs.registry import MetricsRegistry

clock = time.perf_counter  # the one timing clock all repro timings share


@dataclass(slots=True)
class Span:
    """One timed, attributed region of work."""

    name: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) key/value attributes."""
        self.attributes.update(attributes)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else clock()) - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attributes": dict(self.attributes),
        }


class RingBufferSink:
    """Keeps the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        self._spans: deque[Span] = deque(maxlen=capacity)

    def on_span(self, span: Span) -> None:
        self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    def named(self, name: str) -> list[Span]:
        return [span for span in self._spans if span.name == name]

    def clear(self) -> None:
        self._spans.clear()


class JsonLinesSink:
    """Appends each finished span as one JSON object per line.

    Accepts a path (opened lazily, append mode) or any writable file-like
    object (not closed by this sink).  Span attributes are serialized
    with ``default=repr``: a caller attaching a non-JSON value (an
    address, an exception, a dataclass) degrades to its repr in the
    trace — it must never crash a live sweep mid-flight.
    """

    def __init__(self, target: str | IO[str]) -> None:
        self._path = target if isinstance(target, str) else None
        self._stream: IO[str] | None = None if isinstance(target, str) else target
        self._owns_stream = isinstance(target, str)

    def on_span(self, span: Span) -> None:
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "a", encoding="utf-8")
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True,
                                      default=repr) + "\n")

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None


class SpanTracer:
    """Creates nested spans and routes finished ones to sinks/registry."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 sinks: tuple = ()) -> None:
        self._registry = registry
        self._sinks = list(sinks)
        self._stack: list[Span] = []

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            start=clock(),
            depth=len(self._stack),
            parent=parent.name if parent is not None else None,
            attributes=dict(attributes),
        )
        self._stack.append(record)
        try:
            yield record
        finally:
            record.end = clock()
            self._stack.pop()
            for sink in self._sinks:
                sink.on_span(record)
            if self._registry is not None:
                self._registry.histogram(
                    "span.seconds", name=name).observe(record.duration)

    def timed(self, name: str, **attributes: Any):
        """Alias for :meth:`span` — reads better around pure timings."""
        return self.span(name, **attributes)


class NullSpanTracer(SpanTracer):
    """Zero-cost tracer: one shared dummy span, no sinks, no registry."""

    def __init__(self) -> None:
        super().__init__()
        self._dummy = _NullSpan(name="null", start=0.0)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        yield self._dummy


class _NullSpan(Span):
    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass


#: Shared no-op tracer.
NULL_TRACER = NullSpanTracer()
