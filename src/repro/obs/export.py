"""Exporters: Prometheus text format, JSON snapshot, human summary tables.

Three audiences for the same :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`to_prometheus` — the standard text exposition format (metric
  names sanitized to ``[a-zA-Z0-9_]``, histograms in cumulative ``le``
  form), for scraping a long-running monitor;
* :func:`to_json` / ``registry.snapshot()`` — machine-readable dump,
  embedded in ``survey --json --metrics`` output and consumed by CI;
* :func:`survey_metrics_summary` — the ``--metrics`` table printed by the
  CLI, which reproduces the §6.1 "getStorageAt calls per proxy" figure
  directly from the registry.

:func:`bench_summary` renders a ``repro.bench/1`` payload (see
:mod:`repro.obs.bench`) as the table ``repro bench`` prints.
"""

from __future__ import annotations

import json
import re

from repro.obs.registry import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Raw (dotted) metric name → ``# HELP`` description.  One sentence each,
#: keyed before sanitization so the table reads like the registry call
#: sites; names missing here export without a HELP line rather than with
#: an invented one.
METRIC_HELP: dict[str, str] = {
    "chain.endpoint_health":
        "Per-endpoint success ratio observed by the failover node "
        "(1.0 = every call served).",
    "chain.failover_switches":
        "Times the failover node switched serving endpoints, per cause.",
    "dedup.hits": "Dedup cache hits per cache (6.1 bytecode dedup).",
    "dedup.misses": "Dedup cache misses per cache (6.1 bytecode dedup).",
    "evm.base_gas": "Base gas consumed by profiled EVM instructions.",
    "evm.creates": "CREATE/CREATE2 operations observed during emulation.",
    "evm.instructions": "EVM instructions executed under profiling.",
    "evm.logs": "LOG* operations observed during emulation.",
    "evm.max_call_depth": "High-water call depth reached during emulation.",
    "evm.opcodes": "Executed EVM instructions per opcode class.",
    "faults.injected": "Faults injected by the chaos layer, per kind and "
                       "RPC method.",
    "logic_recovery.getstorageat_calls":
        "getStorageAt calls spent recovering logic histories "
        "(Algorithm 1; paper 6.1 reports ~26 per proxy).",
    "logic_recovery.storage_proxies":
        "Storage-slot proxies whose logic history Algorithm 1 recovered.",
    "monitor.alerts": "Live-monitor alerts raised, per kind.",
    "monitor.blocks_scanned": "Blocks scanned by the live monitor.",
    "monitor.poll_lag": "Blocks the live monitor trails the chain head by.",
    "monitor.reorgs":
        "Chain reorganizations the live monitor detected and rolled "
        "back through.",
    "obs.histogram_bound_mismatches":
        "Registry merges that overflowed a histogram with mismatched "
        "bucket bounds into the +Inf bucket.",
    "parallel.bisections":
        "Poison-shard splits performed by the sweep supervisor.",
    "parallel.heartbeat_lag_seconds":
        "High-water staleness of any worker heartbeat.",
    "parallel.hung_kills": "Workers killed for heartbeat staleness.",
    "parallel.poison_contracts":
        "Contracts quarantined by poison-shard bisection.",
    "parallel.respawns": "Dead or hung workers relaunched with resume.",
    "pipeline.quarantined":
        "Contracts quarantined by the sweep instead of aborting it, "
        "per cause.",
    "pipeline.resumed_contracts":
        "Contracts restored from a checkpoint instead of re-analyzed.",
    "pipeline.resumed_skips": "Dead addresses restored from a checkpoint.",
    "pipeline.store_restored_contracts":
        "Contracts restored from the durable store instead of re-analyzed "
        "(survey --store --incremental).",
    "pipeline.store_restored_skips":
        "Dead addresses restored from the durable store.",
    "proxy_check.emulation_failures":
        "4.2 proxy-check emulation failures, per cause.",
    "resilience.backoff_seconds":
        "Total backoff waited before retries (virtual or real), per "
        "RPC method.",
    "resilience.breaker_state":
        "Circuit state per RPC method (0 closed, 1 half-open, 2 open).",
    "resilience.breaker_transitions":
        "Circuit-breaker state changes, per RPC method and target state.",
    "resilience.circuit_open_rejections":
        "Calls rejected without an RPC while a circuit was open.",
    "resilience.deadline_exceeded":
        "Calls that exhausted their retry budget or deadline.",
    "resilience.retries": "Transient RPC failures retried, per method.",
    "rpc.calls": "Archive-node RPC calls issued, per method.",
    "serve.follower_polls":
        "Chain polls by the serve daemon's follower thread.",
    "serve.queries":
        "Point queries answered by the serve daemon, per result "
        "(hit = from the store, fresh = analyzed on miss).",
    "serve.query_seconds": "Serve daemon query latency.",
    "serve.queue_depth": "Requests waiting in the admission queue.",
    "serve.shed":
        "Requests shed by admission control (503), per reason.",
    "serve.throttled": "Requests refused by the rate limiter (429).",
    "rpc.emulation_failures":
        "eth_call emulations that terminated abnormally, per cause.",
    "rpc.latency_seconds": "Archive-node RPC latency, per method.",
    "span.seconds": "Wall-clock duration of pipeline stages, per span name.",
    "store.invalidated_instances":
        "Stored per-address rows discarded because the address's bytecode "
        "changed since they were committed.",
    "store.reorg_invalidations":
        "Stored per-address rows discarded because their deployment was "
        "orphaned by a chain reorg (hash-keyed facts survive).",
    "store.write_errors":
        "Store writes that failed and switched the binding to in-memory "
        "operation (run `repro store fsck` afterwards).",
}


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, raw_name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            help_text = METRIC_HELP.get(raw_name)
            if help_text is not None:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.iter_counters():
        name = prefix + _prom_name(counter.name)
        declare(name, counter.name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} "
                     f"{_fmt(counter.value)}")
    for gauge in registry.iter_gauges():
        name = prefix + _prom_name(gauge.name)
        declare(name, gauge.name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {_fmt(gauge.value)}")
    for histogram in registry.iter_histograms():
        name = prefix + _prom_name(histogram.name)
        declare(name, histogram.name, "histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            le_label = 'le="%s"' % _fmt(bound)
            lines.append(
                f"{name}_bucket{_prom_labels(histogram.labels, le_label)} "
                f"{cumulative}")
        lines.append(f"{name}_sum{_prom_labels(histogram.labels)} "
                     f"{repr(histogram.sum)}")
        lines.append(f"{name}_count{_prom_labels(histogram.labels)} "
                     f"{histogram.count}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON string."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


# ------------------------------------------------------------- summary table
def _label_value(labels, key: str) -> str:
    for label_key, value in labels:
        if label_key == key:
            return value
    return ""


def _hit_rate(hits: float, misses: float) -> str:
    total = hits + misses
    if not total:
        return "n/a"
    return f"{hits / total:.1%}"


def survey_metrics_summary(registry: MetricsRegistry) -> str:
    """The human-readable ``--metrics`` block for survey/accuracy runs."""
    lines: list[str] = ["", "== observability (repro.obs) =="]

    # Per-stage wall time from the span histograms.
    span_rows = [h for h in registry.iter_histograms()
                 if h.name == "span.seconds" and h.count]
    if span_rows:
        lines.append("\nper-stage wall time (spans):")
        lines.append(f"  {'stage':28s} {'calls':>8s} {'total s':>10s} "
                     f"{'mean ms':>10s}")
        for histogram in sorted(span_rows,
                                key=lambda h: h.sum, reverse=True):
            stage = _label_value(histogram.labels, "name")
            lines.append(f"  {stage:28s} {histogram.count:>8d} "
                         f"{histogram.sum:>10.3f} "
                         f"{histogram.mean * 1000:>10.3f}")

    # Per-RPC-method counts and latency.
    rpc_counts = registry.counters_named("rpc.calls")
    if rpc_counts:
        lines.append("\nRPC usage (per method):")
        lines.append(f"  {'method':36s} {'calls':>8s} {'mean µs':>10s}")
        for labels, counter in sorted(rpc_counts.items(),
                                      key=lambda kv: -kv[1].value):
            method = _label_value(labels, "method")
            latency = registry.histogram("rpc.latency_seconds", method=method)
            lines.append(f"  {method:36s} {int(counter.value):>8d} "
                         f"{latency.mean * 1e6:>10.2f}")

    # Dedup cache effectiveness (§6.1), for all three caches.
    lines.append("\ndedup caches (§6.1):")
    for cache in ("proxy_check", "function_collision", "storage_collision"):
        hits = registry.counter_value("dedup.hits", cache=cache)
        misses = registry.counter_value("dedup.misses", cache=cache)
        lines.append(f"  {cache:20s} hits={int(hits):<7d} "
                     f"misses={int(misses):<7d} "
                     f"hit rate={_hit_rate(hits, misses)}")

    # The §6.1 headline: getStorageAt calls per storage proxy.
    recovery_calls = registry.counter_value("logic_recovery.getstorageat_calls")
    storage_proxies = registry.counter_value("logic_recovery.storage_proxies")
    if storage_proxies:
        per_proxy = recovery_calls / storage_proxies
        lines.append(
            f"\ngetStorageAt calls per proxy: {per_proxy:.1f} "
            f"({int(recovery_calls)} calls / {int(storage_proxies)} storage "
            f"proxies; paper §6.1: ~26)")
    else:
        lines.append("\ngetStorageAt calls per proxy: n/a "
                     "(no storage proxies recovered)")

    # EVM profile, when profiling was enabled.
    instructions = registry.counter_value("evm.instructions")
    if instructions:
        lines.append(f"\nEVM profile: {int(instructions)} instructions, "
                     f"base gas {int(registry.counter_value('evm.base_gas'))}, "
                     f"max call depth "
                     f"{int(registry.gauge('evm.max_call_depth').value)}")
        classes = registry.counters_named("evm.opcodes")
        top = sorted(classes.items(), key=lambda kv: -kv[1].value)[:6]
        for labels, counter in top:
            lines.append(f"  {_label_value(labels, 'class'):16s} "
                         f"{int(counter.value):>10d}")

    # Emulation failure causes, when any were recorded.
    failures = registry.counters_named("proxy_check.emulation_failures")
    if failures:
        lines.append("\nemulation failures by cause:")
        for labels, counter in sorted(failures.items(),
                                      key=lambda kv: -kv[1].value):
            lines.append(f"  {_label_value(labels, 'cause'):28s} "
                         f"{int(counter.value):>6d}")

    # Fault-injection / resilience counters, when a chaos run happened.
    injected = registry.counters_named("faults.injected")
    if injected:
        total_injected = sum(int(c.value) for c in injected.values())
        lines.append(f"\nfault injection: {total_injected} faults injected")
        for labels, counter in sorted(injected.items(),
                                      key=lambda kv: -kv[1].value):
            lines.append(f"  {_label_value(labels, 'kind'):12s} "
                         f"{_label_value(labels, 'method'):36s} "
                         f"{int(counter.value):>6d}")
    retries = registry.counters_named("resilience.retries")
    if retries:
        total_retries = sum(int(c.value) for c in retries.values())
        backoff = sum(c.value for c in registry.counters_named(
            "resilience.backoff_seconds").values())
        deadline = sum(int(c.value) for c in registry.counters_named(
            "resilience.deadline_exceeded").values())
        rejected = sum(int(c.value) for c in registry.counters_named(
            "resilience.circuit_open_rejections").values())
        lines.append(f"\nresilience: {total_retries} retries, "
                     f"{backoff:.3f}s backoff (virtual), "
                     f"{deadline} deadline-exceeded, "
                     f"{rejected} circuit-open rejections")
    quarantined = registry.counters_named("pipeline.quarantined")
    if quarantined:
        lines.append("\nquarantined contracts by cause:")
        for labels, counter in sorted(quarantined.items(),
                                      key=lambda kv: -kv[1].value):
            lines.append(f"  {_label_value(labels, 'cause'):28s} "
                         f"{int(counter.value):>6d}")

    # Monitor counters, when a monitor ran in this process.
    blocks_scanned = registry.counter_value("monitor.blocks_scanned")
    if blocks_scanned:
        lines.append(f"\nmonitor: {int(blocks_scanned)} blocks scanned, "
                     f"poll lag "
                     f"{int(registry.gauge('monitor.poll_lag').value)} blocks")
        for labels, counter in sorted(
                registry.counters_named("monitor.alerts").items()):
            lines.append(f"  alerts[{_label_value(labels, 'kind')}]: "
                         f"{int(counter.value)}")

    return "\n".join(lines)


# ------------------------------------------------------------ bench summary
def bench_summary(payload: dict) -> str:
    """Human rendering of a ``repro.bench/1`` payload (``repro bench``)."""
    meta = payload.get("meta", {})
    lines = [
        "",
        f"== repro bench ({payload.get('schema', '?')}) ==",
        f"python {meta.get('python', '?')} on {meta.get('platform', '?')}; "
        f"commit {meta.get('git_commit') or 'n/a'}; "
        f"{meta.get('repeats', '?')} repeats"
        f"{' (quick)' if meta.get('quick') else ''}",
        "",
        f"  {'workload':20s} {'median ms':>10s} {'iqr ms':>8s} "
        f"{'stddev ms':>10s} {'rpc':>7s} {'dedup':>6s} {'evm instr':>10s}",
    ]
    for name, row in payload.get("workloads", {}).items():
        stats = row.get("stats", {})
        rpc_total = sum(row.get("rpc", {}).values())
        hit_rates = [cache.get("hit_rate")
                     for cache in row.get("dedup", {}).values()
                     if cache.get("hit_rate") is not None]
        dedup = (f"{sum(hit_rates) / len(hit_rates):.0%}"
                 if hit_rates else "n/a")
        instructions = row.get("evm", {}).get("instructions", 0)
        lines.append(
            f"  {name:20s} {stats.get('median', 0) * 1000:>10.2f} "
            f"{stats.get('iqr', 0) * 1000:>8.2f} "
            f"{stats.get('stddev', 0) * 1000:>10.2f} "
            f"{rpc_total:>7d} {dedup:>6s} {instructions:>10d}")

        # The dominant pipeline stages, so a row explains itself.
        spans = row.get("spans", {})
        top = sorted(spans.items(),
                     key=lambda kv: -kv[1].get("total_s", 0))[:3]
        if top:
            detail = ", ".join(f"{stage} {info.get('total_s', 0):.3f}s"
                               for stage, info in top)
            lines.append(f"  {'':20s} └─ {detail}")
    return "\n".join(lines)
