"""Opt-in EVM execution profiling, built on the interpreter's tracer hooks.

:class:`ProfilingTracer` rides along any emulation (it composes with the
detection tracers through :class:`~repro.evm.tracer.CombinedTracer`) and
accumulates, in plain local state:

* instruction counts per *opcode class* (arithmetic, storage, call, ...),
* base gas consumed (sum of per-opcode ``base_gas`` — the monotone lower
  bound of the simplified gas model; dynamic surcharges are not replayed),
* the maximum call depth reached,
* CREATE and LOG event counts.

Accumulating locally and flushing once (``flush_to(registry)``) keeps the
per-instruction cost to a dict add, which is why the profiler is safe to
enable on full sweeps (``ProxionOptions(profile_evm=True)``).

:class:`FlameProfiler` extends this with *attributed* cost: self-cost
(instructions and base gas) per call-frame stack, where each frame is
labelled by code address and function selector.  Its collapsed-stack
output (``frameA;frameB;frameC <count>``) is the input format of
``flamegraph.pl`` and every speedscope-style viewer — ``repro bench
--flame FILE`` / ``repro survey --flame FILE`` write it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import IO

from repro.evm import opcodes as op
from repro.evm.tracer import CallEvent, CreateEvent, LogEvent, NullTracer
from repro.obs.registry import MetricsRegistry

#: Opcode-value ranges → class names (ranges are inclusive).
_CLASS_RANGES: tuple[tuple[int, int, str], ...] = (
    (op.STOP, op.SIGNEXTEND, "arithmetic"),
    (op.LT, op.SAR, "compare-bitwise"),
    (op.KECCAK256, op.KECCAK256, "keccak"),
    (op.ADDRESS, op.EXTCODEHASH, "environment"),
    (op.BLOCKHASH, op.BASEFEE, "block"),
    (op.POP, op.POP, "stack"),
    (op.MLOAD, op.MSTORE8, "memory"),
    (op.SLOAD, op.SSTORE, "storage"),
    (op.JUMP, op.JUMPDEST, "flow"),
    (0x5F, 0x7F, "push"),
    (0x80, 0x8F, "dup"),
    (0x90, 0x9F, "swap"),
    (op.LOG0, op.LOG4, "log"),
    (op.CREATE, op.CREATE, "create"),
    (op.CREATE2, op.CREATE2, "create"),
)

_CALL_FAMILY = frozenset((op.CALL, op.CALLCODE, op.DELEGATECALL,
                          op.STATICCALL))
_HALT_FAMILY = frozenset((op.STOP, op.RETURN, op.REVERT, op.SELFDESTRUCT,
                          op.INVALID))


def opcode_class(value: int) -> str:
    """The coarse profiling class of one opcode byte."""
    # CALL/RETURN interleave numerically (0xF0..0xFF); resolve exactly first.
    if value in _CALL_FAMILY:
        return "call"
    if value in _HALT_FAMILY:
        return "halt"
    for low, high, name in _CLASS_RANGES:
        if low <= value <= high:
            return name
    return "other"


#: Precomputed byte → class table so the hot hook is one list index.
_CLASS_TABLE: tuple[str, ...] = tuple(opcode_class(v) for v in range(256))
_BASE_GAS_TABLE: tuple[int, ...] = tuple(
    op.OPCODES[v].base_gas if v in op.OPCODES else 0 for v in range(256))


@dataclass
class ProfilingTracer(NullTracer):
    """Accumulates execution-shape statistics across emulations."""

    opcode_counts: dict[str, int] = field(default_factory=dict)
    instructions: int = 0
    base_gas: int = 0
    max_call_depth: int = 0
    creates: int = 0
    logs: int = 0

    def on_instruction(self, frame, pc: int, opcode_value: int) -> None:
        self.instructions += 1
        self.base_gas += _BASE_GAS_TABLE[opcode_value]
        klass = _CLASS_TABLE[opcode_value]
        counts = self.opcode_counts
        counts[klass] = counts.get(klass, 0) + 1

    def on_call(self, event: CallEvent) -> None:
        # The sub-frame created by this event runs at ``depth + 1``.
        if event.depth + 1 > self.max_call_depth:
            self.max_call_depth = event.depth + 1

    def on_create(self, event: CreateEvent) -> None:
        self.creates += 1
        if event.depth + 1 > self.max_call_depth:
            self.max_call_depth = event.depth + 1

    def on_log(self, event: LogEvent) -> None:
        self.logs += 1

    # ----------------------------------------------------------------- flush
    def flush_to(self, registry: MetricsRegistry) -> None:
        """Export the accumulated profile into ``registry`` and zero it."""
        for klass, count in self.opcode_counts.items():
            registry.counter("evm.opcodes", **{"class": klass}).inc(count)
        registry.counter("evm.instructions").inc(self.instructions)
        registry.counter("evm.base_gas").inc(self.base_gas)
        registry.counter("evm.creates").inc(self.creates)
        registry.counter("evm.logs").inc(self.logs)
        registry.gauge("evm.max_call_depth").max(self.max_call_depth)
        self.opcode_counts = {}
        self.instructions = 0
        self.base_gas = 0
        self.creates = 0
        self.logs = 0
        # max_call_depth is a lifetime high-water mark; keep it.


# ------------------------------------------------------------------- flames
def frame_label(frame) -> str:
    """``0x<code-addr-prefix>:<selector>`` — one flame-stack frame name.

    The first eight hex chars of the code address identify the contract
    (the landscape's deterministic addresses never collide on that
    prefix); the selector tells *which function's* dispatch path ran.
    Calls with short calldata are the receive/fallback path.
    """
    address = frame.code_address.hex()[:8]
    calldata = frame.calldata
    if len(calldata) >= 4:
        return f"0x{address}:0x{calldata[:4].hex()}"
    return f"0x{address}:fallback"


@dataclass
class FlameProfiler(ProfilingTracer):
    """Attributes EVM self-cost along the call-frame + selector stack.

    On top of the aggregate :class:`ProfilingTracer` counters, every
    instruction's cost is charged to the *current* frame stack — the
    ``DELEGATECALL`` chain the paper's §4.2 emulation observes — so a
    flame graph shows which proxy→logic dispatch burned the time.  Costs
    are *self* costs; the collapsed-stack format makes them inclusive by
    prefix, which is exactly what ``flamegraph.pl`` expects.

    The per-instruction hook stays cheap: the stack key is rebuilt only
    when the frame stack actually changes (call/return), and the hot path
    is two integer adds on a cached accumulator.
    """

    #: stack key → [instructions, base_gas] self-cost accumulators.
    stack_costs: dict[tuple[str, ...], list[int]] = field(
        default_factory=dict)
    _labels: list[str] = field(default_factory=list)
    # Holds strong references so a freed sibling frame can never alias the
    # current one by object identity.
    _frames: list[object] = field(default_factory=list)
    _current: list[int] | None = None

    def on_instruction(self, frame, pc: int, opcode_value: int) -> None:
        super().on_instruction(frame, pc, opcode_value)
        depth = frame.depth
        labels = self._labels
        # Sync our label stack with the interpreter's frame stack: returns
        # pop (shorter stack), calls push, and a sibling call at the same
        # depth replaces the top label (frame identity changed).
        if (len(labels) != depth + 1
                or self._frames[depth] is not frame):
            del labels[depth:]
            del self._frames[depth:]
            if len(labels) < depth:
                # Entered mid-flight (profiler attached below the root):
                # pad so the key still has one entry per depth.
                missing = depth - len(labels)
                labels.extend(["(unattributed)"] * missing)
                self._frames.extend([None] * missing)
            labels.append(frame_label(frame))
            self._frames.append(frame)
            key = tuple(labels)
            current = self.stack_costs.get(key)
            if current is None:
                current = [0, 0]
                self.stack_costs[key] = current
            self._current = current
        cost = self._current
        assert cost is not None
        cost[0] += 1
        cost[1] += _BASE_GAS_TABLE[opcode_value]

    # ----------------------------------------------------------- export
    def collapsed(self, weight: str = "gas") -> list[str]:
        """Collapsed-stack lines: ``a;b;c <count>`` (flamegraph.pl input).

        ``weight`` selects the sample unit: ``"gas"`` (base gas, the
        closest thing to on-chain cost) or ``"instructions"``.
        """
        if weight not in ("gas", "instructions"):
            raise ValueError(f"unknown flame weight: {weight!r}")
        index = 1 if weight == "gas" else 0
        lines = []
        for key in sorted(self.stack_costs):
            value = self.stack_costs[key][index]
            if value:
                lines.append(f"{';'.join(key)} {value}")
        return lines

    def write_collapsed(self, target: str | IO[str],
                        weight: str = "gas") -> None:
        """Write :meth:`collapsed` output to a path or stream."""
        text = "\n".join(self.collapsed(weight=weight)) + "\n"
        if isinstance(target, str):
            try:
                with open(target, "w", encoding="utf-8") as stream:
                    stream.write(text)
            except OSError as error:
                raise OSError(f"cannot write flame profile to {target!r}: "
                              f"{error}") from error
        else:
            target.write(text)
