"""``repro.obs`` — the unified observability layer.

Dependency-free metrics + tracing for the whole reproduction:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms
  behind :class:`MetricsRegistry` (with :data:`NULL_REGISTRY` to opt out);
* :mod:`repro.obs.spans` — nested wall-clock spans with attribute capture,
  ring-buffer and JSON-lines sinks;
* :mod:`repro.obs.evmprof` — opt-in EVM execution profiling via tracer
  hooks, including flame-graph attribution (:class:`FlameProfiler`);
* :mod:`repro.obs.bench` — the continuous-benchmarking harness behind
  ``repro bench``: deterministic workloads, ``repro.bench/1`` result
  payloads, and the median-regression comparator;
* :mod:`repro.obs.export` — Prometheus text, JSON snapshot, and the
  human-readable ``--metrics`` / bench summaries;
* :mod:`repro.obs.events` — the sweep flight recorder: a schema-versioned
  (``repro.events/1``) operational event journal with crash-safe JSONL
  sinks and cross-process total ordering;
* :mod:`repro.obs.console` — read-only live views over a journal
  (``repro status`` / ``repro tail`` / the ``/healthz`` verdict);
* :mod:`repro.obs.http` — the stdlib HTTP exporter behind
  ``survey --serve-obs``: ``/metrics``, ``/healthz``, ``/progress``;
* :mod:`repro.obs.provenance` — verdict provenance: per-contract
  ``repro.evidence/1`` causal evidence trees recorded by audited sweeps
  (``survey --audit``) and rendered by ``repro explain``.

See ``docs/observability.md`` for the metric-name catalogue, the event
taxonomy, and ``docs/benchmarking.md`` for the bench workloads and schema.
"""

from repro.obs.bench import (
    BenchComparison,
    BenchConfig,
    WORKLOADS,
    compare_payloads,
    run_suite,
    validate_payload,
)
from repro.obs.console import (
    SweepStatus,
    format_event,
    journal_health,
    journal_snapshot,
    render_status,
    tail_journal,
)
from repro.obs.events import (
    Event,
    EventJournal,
    EventRecorder,
    NULL_RECORDER,
    read_journal,
    total_order,
)
from repro.obs.evmprof import FlameProfiler, ProfilingTracer, opcode_class
from repro.obs.provenance import (
    AuditDir,
    EvidenceNode,
    EvidenceTrail,
    NULL_TRAIL,
    NullTrail,
    evidence_filename,
    render_trail,
)
from repro.obs.http import ObsServer
from repro.obs.export import (
    bench_summary,
    survey_metrics_summary,
    to_json,
    to_prometheus,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_registry,
    series_name,
)
from repro.obs.spans import (
    JsonLinesSink,
    NULL_TRACER,
    NullSpanTracer,
    RingBufferSink,
    Span,
    SpanTracer,
)

__all__ = [
    "AuditDir",
    "BenchComparison",
    "BenchConfig",
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventJournal",
    "EventRecorder",
    "EvidenceNode",
    "EvidenceTrail",
    "FlameProfiler",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NULL_TRAIL",
    "NullRegistry",
    "NullSpanTracer",
    "NullTrail",
    "ObsServer",
    "ProfilingTracer",
    "RingBufferSink",
    "Span",
    "SpanTracer",
    "SweepStatus",
    "WORKLOADS",
    "bench_summary",
    "compare_payloads",
    "default_registry",
    "evidence_filename",
    "format_event",
    "journal_health",
    "journal_snapshot",
    "opcode_class",
    "read_journal",
    "render_status",
    "render_trail",
    "run_suite",
    "series_name",
    "survey_metrics_summary",
    "tail_journal",
    "to_json",
    "to_prometheus",
    "total_order",
    "validate_payload",
]
