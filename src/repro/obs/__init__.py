"""``repro.obs`` — the unified observability layer.

Dependency-free metrics + tracing for the whole reproduction:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms
  behind :class:`MetricsRegistry` (with :data:`NULL_REGISTRY` to opt out);
* :mod:`repro.obs.spans` — nested wall-clock spans with attribute capture,
  ring-buffer and JSON-lines sinks;
* :mod:`repro.obs.evmprof` — opt-in EVM execution profiling via tracer
  hooks, including flame-graph attribution (:class:`FlameProfiler`);
* :mod:`repro.obs.bench` — the continuous-benchmarking harness behind
  ``repro bench``: deterministic workloads, ``repro.bench/1`` result
  payloads, and the median-regression comparator;
* :mod:`repro.obs.export` — Prometheus text, JSON snapshot, and the
  human-readable ``--metrics`` / bench summaries.

See ``docs/observability.md`` for the metric-name catalogue and
``docs/benchmarking.md`` for the bench workloads and schema.
"""

from repro.obs.bench import (
    BenchComparison,
    BenchConfig,
    WORKLOADS,
    compare_payloads,
    run_suite,
    validate_payload,
)
from repro.obs.evmprof import FlameProfiler, ProfilingTracer, opcode_class
from repro.obs.export import (
    bench_summary,
    survey_metrics_summary,
    to_json,
    to_prometheus,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_registry,
    series_name,
)
from repro.obs.spans import (
    JsonLinesSink,
    NULL_TRACER,
    NullSpanTracer,
    RingBufferSink,
    Span,
    SpanTracer,
)

__all__ = [
    "BenchComparison",
    "BenchConfig",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlameProfiler",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullSpanTracer",
    "ProfilingTracer",
    "RingBufferSink",
    "Span",
    "SpanTracer",
    "WORKLOADS",
    "bench_summary",
    "compare_payloads",
    "default_registry",
    "opcode_class",
    "run_suite",
    "series_name",
    "survey_metrics_summary",
    "to_json",
    "to_prometheus",
    "validate_payload",
]
