"""``repro.obs`` — the unified observability layer.

Dependency-free metrics + tracing for the whole reproduction:

* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket histograms
  behind :class:`MetricsRegistry` (with :data:`NULL_REGISTRY` to opt out);
* :mod:`repro.obs.spans` — nested wall-clock spans with attribute capture,
  ring-buffer and JSON-lines sinks;
* :mod:`repro.obs.evmprof` — opt-in EVM execution profiling via tracer
  hooks;
* :mod:`repro.obs.export` — Prometheus text, JSON snapshot, and the
  human-readable ``--metrics`` summary.

See ``docs/observability.md`` for the metric-name catalogue.
"""

from repro.obs.evmprof import ProfilingTracer, opcode_class
from repro.obs.export import (
    survey_metrics_summary,
    to_json,
    to_prometheus,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    default_registry,
    series_name,
)
from repro.obs.spans import (
    JsonLinesSink,
    NULL_TRACER,
    NullSpanTracer,
    RingBufferSink,
    Span,
    SpanTracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullSpanTracer",
    "ProfilingTracer",
    "RingBufferSink",
    "Span",
    "SpanTracer",
    "default_registry",
    "opcode_class",
    "series_name",
    "survey_metrics_summary",
    "to_json",
    "to_prometheus",
]
