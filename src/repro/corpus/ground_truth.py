"""Curated, labelled collision corpus for the Table 2 accuracy study.

§6.3 evaluates detectors on the (all-source) Smart Contract Sanctuary
dataset, with manually established ground truth.  This module builds the
equivalent: proxy/logic pairs covering every case class the paper's
accuracy discussion names —

* **storage-positive**: Audius-style mismatched layouts (Listing 2);
* **storage-padding traps**: renamed variables with identical slots/types —
  the false-positive class USCHunt trips over;
* **storage-negative**: layout-compatible pairs;
* **function-positive**: honeypots (Listing 1) and Wyvern-style
  inheritance collisions;
* **function-negative**: disjoint selector sets.

Every contract gets verified source (the §6.3 setting), with a controlled
fraction carrying an unsupported compiler version to reproduce USCHunt's
compile halts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import (
    ContractSource,
    SourceRegistry,
    StorageVariableDecl,
)
from repro.chain.node import ArchiveNode
from repro.corpus import profiles
from repro.lang import stdlib
from repro.lang.ast import (
    Const,
    Contract,
    DelegateCallEncoded,
    DelegateForwardCalldata,
    Fallback,
    Function,
    Load,
    Param,
    Return,
    Store,
    StoreAt,
    VarDecl,
)
from repro.lang.compiler import compile_contract
from repro.lang.source import contract_source_of
from repro.utils.abi import encode_call
from repro.utils.hexutil import address_to_word
from repro.utils.keccak import keccak256

ETHER = 10 ** 18


@dataclass(frozen=True, slots=True)
class LabelledPair:
    """One proxy/logic pair with its manually assigned labels."""

    proxy: bytes
    logic: bytes
    case: str                       # e.g. "storage-positive"
    storage_collision: bool
    function_collision: bool


@dataclass(slots=True)
class AccuracyCorpus:
    """The labelled pair set plus the world it lives in."""

    chain: Blockchain
    node: ArchiveNode
    registry: SourceRegistry
    dataset: ContractDataset
    pairs: list[LabelledPair] = field(default_factory=list)

    def storage_positive_pairs(self) -> list[LabelledPair]:
        return [p for p in self.pairs if p.storage_collision]

    def function_positive_pairs(self) -> list[LabelledPair]:
        return [p for p in self.pairs if p.function_collision]


def _renamed_logic(name: str, variable_names: tuple[str, str]) -> Contract:
    """A logic contract layout-compatible with storage_proxy but with
    different variable *names* (the padding/rename FP trap)."""
    first, second = variable_names
    return Contract(
        name=name,
        variables=(
            VarDecl(first, "address"),
            VarDecl(second, "address"),
            VarDecl("counter", "uint256"),
        ),
        functions=(
            Function(name="currentManager", body=(Return(Load(first)),)),
            Function(name="bump",
                     body=(Store("counter", Const(1)),)),
        ),
    )


def _shifted_logic(name: str) -> Contract:
    """A logic contract whose layout genuinely mismatches storage_proxy:
    a uint256 lands on the proxy's owner-address slot."""
    return Contract(
        name=name,
        variables=(
            VarDecl("totalDeposits", "uint256"),   # slot 0 vs owner:address
            VarDecl("manager", "address"),         # slot 1 vs logic:address
        ),
        functions=(
            Function(name="recordDeposit",
                     body=(Store("totalDeposits", Const(12345)),)),
            Function(name="managerOf", body=(Return(Load("manager")),)),
        ),
    )


def _disjoint_logic(name: str) -> Contract:
    """Function-negative logic: selectors disjoint from every proxy."""
    return Contract(
        name=name,
        functions=(
            Function(name="ping", body=(Return(Const(1)),)),
            Function(name="echoValue",
                     params=(("v", "uint256"),),
                     body=(Return(Const(7)),)),
        ),
    )


def _colliding_proxy(name: str, logic: bytes, owner: bytes) -> Contract:
    """Function-positive proxy: shares ``ping()`` with _colliding_logic.

    The implementation address hides under the non-standard name
    ``router_box`` — syntactic (Slither/USCHunt-style) proxy recognition
    misses it, while ProxioN's emulation does not care about names.
    """
    return Contract(
        name=name,
        variables=(
            VarDecl("box_owner", "address"),
            VarDecl("router_box", "address"),
        ),
        functions=(
            Function(name="ping", body=(Return(Const(0)),)),
        ),
        fallback=Fallback(body=(DelegateForwardCalldata(Load("router_box")),)),
        constructor=(
            Store("box_owner", Const(address_to_word(owner))),
            Store("router_box", Const(address_to_word(logic))),
        ),
    )


def _raw_writer_logic(name: str) -> Contract:
    """Storage-positive-hard logic: an unstructured-storage write whose
    slot comes from calldata.  It can clobber any proxy slot (a genuine
    collision), but the slot is symbolic to every bytecode analyzer — the
    honest false-negative class for ProxioN and CRUSH alike."""
    return Contract(
        name=name,
        functions=(
            Function(
                name="writeRaw",
                params=(("slot", "uint256"), ("value", "uint256")),
                body=(StoreAt(Param(0, "uint256"), Param(1, "uint256")),),
            ),
        ),
    )


def _mismatched_library(name: str) -> Contract:
    """A delegatecall *library* whose accumulator occupies slot 0 — where
    its callers keep an address.  Real overlap, but not a proxy pair."""
    return Contract(
        name=name,
        variables=(VarDecl("sum", "uint256"),),
        functions=(
            Function(
                name="libraryAdd",
                params=(("amount", "uint256"),),
                body=(Store("sum", Param(0, "uint256")),),
            ),
        ),
    )


def _library_client(name: str, library: bytes) -> Contract:
    """Library caller: delegatecalls with re-encoded args, not in fallback."""
    return Contract(
        name=name,
        variables=(
            VarDecl("manager", "address"),
            VarDecl("total", "uint256"),
        ),
        functions=(
            Function(
                name="accumulate",
                params=(("amount", "uint256"),),
                body=(
                    DelegateCallEncoded(
                        Const(address_to_word(library)),
                        "libraryAdd(uint256)",
                        (Param(0, "uint256"),),
                    ),
                ),
            ),
            Function(name="managerOf", body=(Return(Load("manager")),)),
        ),
    )


def _colliding_logic(name: str) -> Contract:
    return Contract(
        name=name,
        functions=(
            Function(name="ping", body=(Return(Const(1)),)),
            Function(name="withdrawAll", body=(Return(Const(2)),)),
        ),
    )


def _emuerr_logic(name: str) -> Contract:
    """Logic of the emulation-error pair: collides on both axes with the
    claimed proxy source (``ping()`` selector; uint256 over the owner)."""
    return Contract(
        name=name,
        variables=(VarDecl("totalDeposits", "uint256"),),
        functions=(
            Function(name="ping", body=(Return(Const(1)),)),
            Function(name="recordDeposit",
                     body=(Store("totalDeposits", Const(99)),)),
        ),
    )


#: Runtime that defeats emulation: an unassigned opcode (0x2f) executes
#: before the DELEGATECALL byte is ever reached.  The §4.1 prefilter passes
#: (the 0xf4 byte is at an instruction boundary), the §4.2 emulation halts —
#: the paper's "runtime errors when emulating" miss class (§6.3).
EMUERR_PROXY_RUNTIME = bytes([0x2F, 0xF4, 0x00])


class AccuracyCorpusBuilder:
    """Deploys the labelled pair families."""

    def __init__(self, pairs_per_case: int = 6, seed: int = 7,
                 unsupported_compiler_share: float | None = None) -> None:
        self.pairs_per_case = pairs_per_case
        self.rng = random.Random(seed)
        self.unsupported_compiler_share = (
            profiles.UNSUPPORTED_COMPILER_SHARE
            if unsupported_compiler_share is None
            else unsupported_compiler_share)
        self._counter = 0

    def _eoa(self, tag: str) -> bytes:
        self._counter += 1
        return keccak256(f"gt:{tag}:{self._counter}".encode())[12:]

    def build(self) -> AccuracyCorpus:
        chain = Blockchain()
        corpus = AccuracyCorpus(
            chain=chain,
            node=ArchiveNode(chain),
            registry=SourceRegistry(),
            dataset=ContractDataset(),
        )
        self._deployer = self._eoa("deployer")
        chain.fund(self._deployer, 10 ** 6 * ETHER)
        chain.advance_to_block(chain.first_block_of_year(2021))

        for index in range(self.pairs_per_case):
            self._storage_positive(corpus, index)
            self._storage_padding_trap(corpus, index)
            self._storage_negative(corpus, index)
            self._function_positive(corpus, index)
            self._function_negative(corpus, index)
            self._storage_positive_hard(corpus, index)
            self._library_trap(corpus, index)
            if index % 5 == 4 or (self.pairs_per_case < 5 and index == 0):
                self._emulation_error_pair(corpus, index)
        return corpus

    def _emulation_error_pair(self, corpus: AccuracyCorpus, index: int) -> None:
        """A genuine double collision ProxioN loses to an emulation error.

        The deployed runtime executes an unassigned opcode before its
        delegatecall, so the §4.2 emulation halts and the pipeline never
        reaches the collision detectors.  Source-based USCHunt still sees
        the declared layout/prototypes and scores the pair — the mechanism
        behind ProxioN's (small) Table 2 false-negative counts.
        """
        receipt = corpus.chain.deploy(
            self._deployer, stdlib.raw_deploy_init(EMUERR_PROXY_RUNTIME))
        proxy = receipt.created_address
        corpus.dataset.add(proxy, receipt.block_number, self._deployer)
        logic = self._deploy(corpus, _emuerr_logic(f"EmuErrLogic{index}"))
        # The verified source claims an ordinary storage proxy with ping();
        # the (obfuscated) deployed bytecode does not emulate cleanly.
        claimed = ContractSource(
            contract_name=f"ObfuscatedProxy{index}",
            function_prototypes=("ping()",),
            storage_variables=(
                StorageVariableDecl("owner", "address"),
                StorageVariableDecl("logic", "address"),
            ),
            text=("contract ObfuscatedProxy { address private owner; "
                  "address private logic; function ping() public {} "
                  "fallback() external { logic.delegatecall(msg.data); } }"),
        )
        corpus.registry.verify(proxy, claimed, EMUERR_PROXY_RUNTIME)
        corpus.pairs.append(LabelledPair(
            proxy, logic, "emulation-error-pair",
            storage_collision=True, function_collision=True))

    def _poke_fallback(self, corpus: AccuracyCorpus, proxy: bytes) -> None:
        """Exercise the fallback so tx-history tools (CRUSH) see the pair."""
        user = self._eoa("user")
        corpus.chain.fund(user, ETHER)
        corpus.chain.transact(user, proxy, bytes.fromhex("0badf00d") + b"\x00" * 32)

    # ------------------------------------------------------------- plumbing
    def _deploy(self, corpus: AccuracyCorpus, contract: Contract) -> bytes:
        compiled = compile_contract(contract)
        receipt = corpus.chain.deploy(self._deployer, compiled.init_code)
        if not receipt.success:
            raise RuntimeError(f"ground-truth deploy failed: {receipt.error}")
        address = receipt.created_address
        corpus.dataset.add(address, receipt.block_number, self._deployer)
        source = contract_source_of(contract)
        if self.rng.random() < self.unsupported_compiler_share:
            source = ContractSource(
                contract_name=source.contract_name,
                function_prototypes=source.function_prototypes,
                storage_variables=source.storage_variables,
                text=source.text,
                compiler_version=profiles.UNSUPPORTED_COMPILER,
            )
        corpus.registry.verify(address, source, compiled.runtime_code)
        return address

    # ---------------------------------------------------------- case classes
    def _storage_positive(self, corpus: AccuracyCorpus, index: int) -> None:
        owner = self._eoa("owner")
        if index % 2 == 0:
            logic = self._deploy(corpus, stdlib.audius_logic(
                f"InitLogic{index}"))
            proxy = self._deploy(corpus, stdlib.audius_proxy(
                f"GovProxy{index}", logic, owner))
        else:
            logic = self._deploy(corpus, _shifted_logic(f"ShiftLogic{index}"))
            proxy = self._deploy(corpus, stdlib.storage_proxy(
                f"ShiftProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "storage-positive",
            storage_collision=True, function_collision=False))
        self._poke_fallback(corpus, proxy)

    def _storage_positive_hard(self, corpus: AccuracyCorpus, index: int) -> None:
        """Collision via a computed (symbolic) slot — misses expected."""
        owner = self._eoa("owner")
        logic = self._deploy(corpus, _raw_writer_logic(f"RawWriter{index}"))
        proxy = self._deploy(corpus, stdlib.storage_proxy(
            f"RawProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "storage-positive-hard",
            storage_collision=True, function_collision=False))
        self._poke_fallback(corpus, proxy)

    def _library_trap(self, corpus: AccuracyCorpus, index: int) -> None:
        """Library pair: real slot overlap, but not a proxy/logic pair.

        CRUSH mines the delegatecall from history and charges it as a
        storage collision (Table 2's FP mechanism); ProxioN excludes the
        contract at the proxy-identification stage.
        """
        library = self._deploy(corpus, _mismatched_library(f"AccLib{index}"))
        client = self._deploy(corpus, _library_client(
            f"LibClient{index}", library))
        corpus.pairs.append(LabelledPair(
            client, library, "library-trap",
            storage_collision=False, function_collision=False))
        user = self._eoa("user")
        corpus.chain.fund(user, ETHER)
        corpus.chain.transact(user, client,
                              encode_call("accumulate(uint256)", [5]))

    def _storage_padding_trap(self, corpus: AccuracyCorpus, index: int) -> None:
        owner = self._eoa("owner")
        logic = self._deploy(corpus, _renamed_logic(
            f"RenamedLogic{index}", ("padding_a", "implAddress")))
        proxy = self._deploy(corpus, stdlib.storage_proxy(
            f"PadProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "storage-padding-trap",
            storage_collision=False, function_collision=False))
        self._poke_fallback(corpus, proxy)

    def _storage_negative(self, corpus: AccuracyCorpus, index: int) -> None:
        owner = self._eoa("owner")
        logic = self._deploy(corpus, _renamed_logic(
            f"CompatLogic{index}", ("owner", "logic")))
        proxy = self._deploy(corpus, stdlib.storage_proxy(
            f"PlainProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "storage-negative",
            storage_collision=False, function_collision=False))
        self._poke_fallback(corpus, proxy)

    def _function_positive(self, corpus: AccuracyCorpus, index: int) -> None:
        owner = self._eoa("owner")
        if index % 2 == 0:
            logic = self._deploy(corpus, stdlib.honeypot_logic(
                f"Generous{index}"))
            proxy = self._deploy(corpus, stdlib.honeypot_proxy(
                f"Pot{index}", logic, owner))
        else:
            logic = self._deploy(corpus, _colliding_logic(f"PingLogic{index}"))
            proxy = self._deploy(corpus, _colliding_proxy(
                f"PingProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "function-positive",
            storage_collision=False, function_collision=True))
        self._poke_fallback(corpus, proxy)

    def _function_negative(self, corpus: AccuracyCorpus, index: int) -> None:
        owner = self._eoa("owner")
        logic = self._deploy(corpus, _disjoint_logic(f"Disjoint{index}"))
        proxy = self._deploy(corpus, stdlib.storage_proxy(
            f"CleanProxy{index}", logic, owner))
        corpus.pairs.append(LabelledPair(
            proxy, logic, "function-negative",
            storage_collision=False, function_collision=False))
        self._poke_fallback(corpus, proxy)


def build_accuracy_corpus(pairs_per_case: int = 6,
                          seed: int = 7) -> AccuracyCorpus:
    """Convenience wrapper around :class:`AccuracyCorpusBuilder`."""
    return AccuracyCorpusBuilder(pairs_per_case=pairs_per_case,
                                 seed=seed).build()
