"""Paper-calibrated landscape distributions.

The constants here encode the *measured* mainnet shapes the paper reports,
so that scaled-down synthetic populations reproduce the same proportions:

* Figure 2 — yearly growth and source/transaction availability quadrants
  (≈18% with source, ≈53% with transactions, 36M alive by Oct 2023);
* Table 4 — proxy standards mix (EIP-1167 89.05%, EIP-1967 1.00%,
  EIP-1822 0.12%, Others 9.83%);
* Figure 5 — duplicate skew (19.6M proxies collapse to 96,420 unique
  bytecodes; the top clone families exceed a million copies);
* Figure 6 — upgrade rarity (99.7% of proxies never upgrade; upgraded ones
  average 1.32 logic contracts);
* Table 3 — collision incidence concentrated in 2021–2022 clone families.
"""

from __future__ import annotations

from dataclasses import dataclass

# Mainnet totals the synthetic landscape is scaled from.
MAINNET_ALIVE_CONTRACTS = 36_000_000
MAINNET_PROXY_SHARE = 0.542
MAINNET_SOURCE_SHARE = 0.18
MAINNET_TX_SHARE = 0.53

#: Share of all 2015–2023 deployments falling in each year (Figure 2's
#: cumulative curve, differenced).  Post-2020 dominates, with 2022–2023
#: deployments >93% proxies.
YEARLY_DEPLOY_SHARE: dict[int, float] = {
    2015: 0.002,
    2016: 0.008,
    2017: 0.025,
    2018: 0.040,
    2019: 0.045,
    2020: 0.080,
    2021: 0.230,
    2022: 0.320,
    2023: 0.250,
}


@dataclass(frozen=True, slots=True)
class YearProfile:
    """Population mix for one deployment year.

    Fractions are of that year's deployments; the remainder after all the
    proxy classes is plain non-proxy contracts.
    """

    minimal_clone: float        # EIP-1167 clones of popular targets
    minimal_unique: float       # EIP-1167 pointing at bespoke logic
    eip1967: float
    eip1822: float
    custom_storage: float       # non-standard storage proxies ("Others")
    transparent: float
    diamond: float
    library_user: float         # DELEGATECALL but not a proxy
    honeypot_pair: float        # Listing-1 function-collision pairs
    audius_pair: float          # Listing-2 storage-collision pairs
    source_share: float         # fraction of deployments with verified source
    tx_share: float             # fraction receiving post-deploy transactions
    wyvern_clone: float = 0.0   # OwnableDelegateProxy-style colliding clones

    @property
    def proxy_share(self) -> float:
        return (self.minimal_clone + self.minimal_unique + self.eip1967
                + self.eip1822 + self.custom_storage + self.transparent
                + self.honeypot_pair + self.audius_pair + self.wyvern_clone)


#: Per-year mixes.  Pre-2018 ("demand era"): delegatecall experiments and
#: library use.  2018–2020 ("standardization era"): EIPs land, stable
#: growth.  2021+ ("mainstream era"): clone factories dominate.
YEAR_PROFILES: dict[int, YearProfile] = {
    2015: YearProfile(0.00, 0.02, 0.00, 0.00, 0.08, 0.00, 0.00, 0.30,
                      0.000, 0.000, source_share=0.30, tx_share=0.70),
    2016: YearProfile(0.00, 0.04, 0.00, 0.00, 0.10, 0.00, 0.00, 0.25,
                      0.000, 0.000, source_share=0.30, tx_share=0.70),
    2017: YearProfile(0.05, 0.08, 0.00, 0.00, 0.12, 0.00, 0.00, 0.20,
                      0.005, 0.000, source_share=0.28, tx_share=0.68),
    2018: YearProfile(0.15, 0.08, 0.02, 0.01, 0.12, 0.02, 0.00, 0.15,
                      0.010, 0.003, source_share=0.25, tx_share=0.65),
    2019: YearProfile(0.22, 0.08, 0.03, 0.01, 0.10, 0.03, 0.01, 0.12,
                      0.012, 0.004, source_share=0.25, tx_share=0.62),
    2020: YearProfile(0.35, 0.07, 0.04, 0.01, 0.09, 0.04, 0.01, 0.08,
                      0.015, 0.004, source_share=0.22, tx_share=0.60),
    2021: YearProfile(0.60, 0.05, 0.04, 0.01, 0.04, 0.02, 0.01, 0.04,
                      0.020, 0.006, source_share=0.18, tx_share=0.55,
                      wyvern_clone=0.08),
    2022: YearProfile(0.72, 0.04, 0.03, 0.00, 0.03, 0.01, 0.01, 0.02,
                      0.018, 0.008, source_share=0.14, tx_share=0.48,
                      wyvern_clone=0.08),
    2023: YearProfile(0.82, 0.03, 0.02, 0.00, 0.03, 0.01, 0.01, 0.02,
                      0.008, 0.004, source_share=0.12, tx_share=0.42,
                      wyvern_clone=0.01),
}

#: Figure 5 duplicate skew: number of distinct popular clone targets and
#: the Zipf-like exponent splitting clone mass among them.  Three families
#: take the overwhelming share (CoinTool_App, XENTorrent,
#: OwnableDelegateProxy on mainnet).
POPULAR_CLONE_FAMILIES = 6
CLONE_ZIPF_EXPONENT = 1.6

#: Figure 6 upgrade process: P(an upgradeable proxy ever upgrades) and the
#: geometric tail for how many times (mean ≈ 1.32 logics including the
#: first).
UPGRADE_PROBABILITY = 0.003
UPGRADE_GEOMETRIC_P = 0.75   # mean 1/(1-0.25) = 1.33 upgrades per upgrader
MAX_UPGRADES = 80

#: §6.3: the ground-truth accuracy corpus is all-source (Sanctuary-like).
SUPPORTED_COMPILER = "v0.8.21"
UNSUPPORTED_COMPILER = "v0.4.11"   # triggers USCHunt's compile halt
#: Fraction of verified sources carrying an unsupported compiler version
#: (USCHunt halts on ~30% of the Sanctuary dataset, §6.2).
UNSUPPORTED_COMPILER_SHARE = 0.30
