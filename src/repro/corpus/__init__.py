"""Synthetic landscape + ground-truth corpora with paper-calibrated shapes."""

from repro.corpus.generator import (
    ContractTruth,
    Landscape,
    LandscapeGenerator,
    generate_landscape,
)
from repro.corpus.ground_truth import (
    AccuracyCorpus,
    AccuracyCorpusBuilder,
    LabelledPair,
    build_accuracy_corpus,
)
from repro.corpus import profiles

__all__ = [
    "AccuracyCorpus",
    "AccuracyCorpusBuilder",
    "ContractTruth",
    "LabelledPair",
    "Landscape",
    "LandscapeGenerator",
    "build_accuracy_corpus",
    "generate_landscape",
    "profiles",
]
