"""Synthetic Ethereum landscape generation.

Deploys scaled-down contract populations onto the simulated chain with the
paper's measured distributions (see :mod:`repro.corpus.profiles`): yearly
growth, proxy-standard mix, clone skew, source/transaction availability
quadrants, collision incidence and upgrade rarity.  Every deployment is
labelled with ground truth so the benches can score detectors.

Generation is fully deterministic for a given (total, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain
from repro.chain.dataset import ContractDataset
from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.corpus import profiles
from repro.lang import stdlib
from repro.lang.ast import (
    BinOp,
    Contract,
    Function,
    Load,
    Param,
    Return,
    Store,
    VarDecl,
)
from repro.lang.compiler import compile_contract
from repro.utils.abi import encode_call
from repro.utils.keccak import keccak256

ETHER = 10 ** 18


@dataclass(slots=True)
class ContractTruth:
    """Ground-truth label for one deployed contract."""

    address: bytes
    kind: str
    deploy_year: int
    is_proxy: bool = False
    standard: str | None = None          # "EIP-1167" | "EIP-1822" | ...
    logic_addresses: list[bytes] = field(default_factory=list)
    has_source: bool = False
    expect_function_collision: bool = False
    expect_storage_collision: bool = False
    storage_exploitable: bool = False
    upgrade_count: int = 0


@dataclass(slots=True)
class Landscape:
    """A generated world: chain + metadata + ground truth."""

    chain: Blockchain
    node: ArchiveNode
    registry: SourceRegistry
    dataset: ContractDataset
    truths: dict[bytes, ContractTruth] = field(default_factory=dict)
    clone_family_targets: list[bytes] = field(default_factory=list)

    def addresses(self) -> list[bytes]:
        return list(self.truths)

    def truth(self, address: bytes) -> ContractTruth:
        return self.truths[address]

    def true_proxies(self) -> set[bytes]:
        return {a for a, t in self.truths.items() if t.is_proxy}

    def contracts_of_kind(self, kind: str) -> list[bytes]:
        return [a for a, t in self.truths.items() if t.kind == kind]


class LandscapeGenerator:
    """Builds a :class:`Landscape` of ``total`` contracts."""

    def __init__(self, total: int = 600, seed: int = 42,
                 years: tuple[int, ...] = tuple(range(2015, 2024)),
                 upgrade_probability: float | None = None,
                 chain_profile=None) -> None:
        self.total = total
        self.rng = random.Random(seed)
        self.chain_profile = chain_profile
        if chain_profile is not None:
            # Chains younger than Ethereum have no pre-genesis deployments.
            import datetime as _dt
            genesis_year = _dt.datetime.fromtimestamp(
                chain_profile.genesis_timestamp, tz=_dt.timezone.utc).year
            years = tuple(year for year in years if year >= genesis_year)
        self.years = years
        self.upgrade_probability = (
            profiles.UPGRADE_PROBABILITY if upgrade_probability is None
            else upgrade_probability)
        self._name_counter = 0

    # --------------------------------------------------------------- helpers
    def _eoa(self, tag: str) -> bytes:
        return keccak256(f"eoa:{tag}:{self.rng.random()}".encode())[12:]

    def _fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def _deploy(self, landscape: Landscape, init_code: bytes,
                deployer: bytes | None = None) -> bytes:
        deployer = deployer or self._default_deployer
        receipt = landscape.chain.deploy(deployer, init_code)
        if not receipt.success:
            raise RuntimeError(f"corpus deployment failed: {receipt.error}")
        address = receipt.created_address
        landscape.dataset.add(address, receipt.block_number, deployer)
        return address

    def _register_source(self, landscape: Landscape, address: bytes,
                         contract: Contract, runtime_code: bytes,
                         truth: ContractTruth) -> None:
        # Verification goes through the full Etherscan path: render the
        # Solidity-style text, then run the §5.1 source parser over it.
        from repro.chain.source_parser import parse_source_text
        from repro.lang.source import render_source

        compiler_version = (
            profiles.UNSUPPORTED_COMPILER
            if self.rng.random() < profiles.UNSUPPORTED_COMPILER_SHARE
            else profiles.SUPPORTED_COMPILER)
        source = parse_source_text(render_source(contract),
                                   compiler_version=compiler_version)
        landscape.registry.verify(address, source, runtime_code)
        truth.has_source = True

    # ------------------------------------------------------------ generation
    def generate(self) -> Landscape:
        chain = Blockchain(profile=self.chain_profile)
        landscape = Landscape(
            chain=chain,
            node=ArchiveNode(chain),
            registry=SourceRegistry(),
            dataset=ContractDataset(),
        )
        self._default_deployer = self._eoa("deployer")
        chain.fund(self._default_deployer, 10 ** 9 * ETHER)

        self._deploy_clone_families(landscape)
        upgrade_candidates: list[tuple[bytes, str]] = []

        for year in self.years:
            chain.advance_to_block(chain.first_block_of_year(year))
            profile = profiles.YEAR_PROFILES[year]
            count = max(1, round(self.total * profiles.YEARLY_DEPLOY_SHARE[year]))
            plan = self._year_plan(profile, count)
            for kind in plan:
                address = self._deploy_kind(landscape, kind, year, profile)
                if address is not None and kind in ("eip1967", "custom_storage",
                                                    "transparent"):
                    upgrade_candidates.append((address, kind))

        self._run_upgrades(landscape, upgrade_candidates)
        return landscape

    def _year_plan(self, profile: profiles.YearProfile, count: int) -> list[str]:
        """Materialize the year's fraction mix into a shuffled kind list."""
        plan: list[str] = []
        fractions = [
            ("minimal_clone", profile.minimal_clone),
            ("wyvern_clone", profile.wyvern_clone),
            ("minimal_unique", profile.minimal_unique),
            ("eip1967", profile.eip1967),
            ("eip1822", profile.eip1822),
            ("custom_storage", profile.custom_storage),
            ("transparent", profile.transparent),
            ("diamond", profile.diamond),
            ("library_user", profile.library_user),
            ("honeypot_pair", profile.honeypot_pair),
            ("audius_pair", profile.audius_pair),
        ]
        for kind, fraction in fractions:
            plan.extend([kind] * round(count * fraction))
        while len(plan) < count:
            roll = self.rng.random()
            if roll < 0.015:
                plan.append("weird")     # §6.2's emulation-failure class
            elif roll < 0.10:
                plan.append("timelock")  # block-dependent (§8.1 divergence)
            elif roll < 0.17:
                plan.append("airdrop")   # loop-heavy distributor
            else:
                plan.append("wallet" if roll < 0.57 else "token")
        self.rng.shuffle(plan)
        return plan[:count]

    # ------------------------------------------------------- clone families
    def _deploy_clone_families(self, landscape: Landscape) -> None:
        """Deploy the popular logic contracts minimal clones will point at.

        These model CoinTool_App / XENTorrent-style factories: a handful of
        targets absorbing the vast majority of clone deployments (Fig. 5).
        They land right after genesis so every later year can reference
        them without moving the clock.
        """
        first_year = self.years[0]
        for index in range(profiles.POPULAR_CLONE_FAMILIES):
            contract = self._make_app_logic(f"PopularApp{index}")
            compiled = compile_contract(contract)
            address = self._deploy(landscape, compiled.init_code)
            truth = ContractTruth(address=address, kind="popular_logic",
                                  deploy_year=first_year)
            landscape.truths[address] = truth
            self._register_source(landscape, address, contract,
                                  compiled.runtime_code, truth)
            landscape.clone_family_targets.append(address)
        # The Wyvern-style logic all wyvern clones share.
        wyvern = stdlib.wyvern_logic()
        compiled = compile_contract(wyvern)
        address = self._deploy(landscape, compiled.init_code)
        truth = ContractTruth(address=address, kind="wyvern_logic",
                              deploy_year=first_year)
        landscape.truths[address] = truth
        self._register_source(landscape, address, wyvern,
                              compiled.runtime_code, truth)
        self._wyvern_logic_address = address

    def _pick_clone_family(self) -> bytes:
        """Zipf-skewed family choice (top families dominate, Fig. 5)."""
        weights = [1.0 / ((rank + 1) ** profiles.CLONE_ZIPF_EXPONENT)
                   for rank in range(profiles.POPULAR_CLONE_FAMILIES)]
        return self.rng.choices(self._clone_targets, weights=weights, k=1)[0]

    # ---------------------------------------------------------- deployments
    def _deploy_kind(self, landscape: Landscape, kind: str, year: int,
                     profile: profiles.YearProfile) -> bytes | None:
        self._clone_targets = landscape.clone_family_targets
        owner = self._eoa(f"owner:{year}")
        landscape.chain.fund(owner, 100 * ETHER)

        if kind == "minimal_clone":
            target = self._pick_clone_family()
            address = self._deploy(landscape,
                                   stdlib.minimal_proxy_init(target))
            truth = ContractTruth(address, kind, year, is_proxy=True,
                                  standard="EIP-1167",
                                  logic_addresses=[target])
            landscape.truths[address] = truth
            self._maybe_transact(landscape, address, truth, profile, owner)
            return address

        if kind == "wyvern_clone":
            contract = stdlib.ownable_delegate_proxy(
                "OwnableDelegateProxy", self._wyvern_logic_address, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "Others", [self._wyvern_logic_address],
                                      profile, owner,
                                      expect_function_collision=True)

        if kind == "minimal_unique":
            logic = self._deploy_fresh_logic(landscape, year, profile)
            address = self._deploy(landscape, stdlib.minimal_proxy_init(logic))
            truth = ContractTruth(address, kind, year, is_proxy=True,
                                  standard="EIP-1167",
                                  logic_addresses=[logic])
            landscape.truths[address] = truth
            self._maybe_transact(landscape, address, truth, profile, owner)
            return address

        if kind == "eip1967":
            logic = self._deploy_fresh_logic(landscape, year, profile)
            contract = stdlib.eip1967_proxy(
                self._fresh_name("ERC1967Proxy"), logic, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "EIP-1967", [logic], profile, owner)

        if kind == "eip1822":
            logic_contract = stdlib.uups_logic(self._fresh_name("UUPSLogic"))
            logic_compiled = compile_contract(logic_contract)
            logic = self._deploy(landscape, logic_compiled.init_code)
            landscape.truths[logic] = ContractTruth(logic, "uups_logic", year)
            contract = stdlib.eip1822_proxy(
                self._fresh_name("UUPSProxy"), logic)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "EIP-1822", [logic], profile, owner)

        if kind == "custom_storage":
            logic = self._deploy_fresh_logic(landscape, year, profile)
            contract = stdlib.storage_proxy(
                self._fresh_name("Proxy"), logic, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "Others", [logic], profile, owner)

        if kind == "transparent":
            logic = self._deploy_fresh_logic(landscape, year, profile)
            contract = stdlib.transparent_proxy(
                self._fresh_name("TransparentProxy"), logic, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "EIP-1967", [logic], profile, owner)

        if kind == "diamond":
            contract = stdlib.diamond_proxy(self._fresh_name("Diamond"), owner)
            compiled = compile_contract(contract)
            address = self._deploy(landscape, compiled.init_code)
            facet = self._deploy_fresh_logic(landscape, year, profile)
            truth = ContractTruth(address, kind, year, is_proxy=True,
                                  standard="Others",
                                  logic_addresses=[facet])
            landscape.truths[address] = truth
            # Register a facet and exercise it so the §8.2 extension has
            # transaction selectors to mine.
            selector = int.from_bytes(encode_call("totalStored()")[:4], "big")
            landscape.chain.transact(owner, address, encode_call(
                "registerFacet(uint32,address)", [selector, facet]))
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, address, contract,
                                      compiled.runtime_code, truth)
            if self.rng.random() < profile.tx_share:
                landscape.chain.transact(
                    self._eoa("user"), address, encode_call("totalStored()"))
            return address

        if kind == "library_user":
            library = self._library_address(landscape, year)
            contract = stdlib.library_user(
                self._fresh_name("VaultWithLib"), library)
            compiled = compile_contract(contract)
            address = self._deploy(landscape, compiled.init_code)
            truth = ContractTruth(address, kind, year, is_proxy=False)
            landscape.truths[address] = truth
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, address, contract,
                                      compiled.runtime_code, truth)
            if self.rng.random() < profile.tx_share:
                # The library delegatecall lands in the history — the
                # CRUSH/Etherscan false-positive trap.
                landscape.chain.transact(
                    self._eoa("user"), address,
                    encode_call("addViaLibrary(uint256)", [3]))
            return address

        if kind == "honeypot_pair":
            logic_contract = stdlib.honeypot_logic(
                self._fresh_name("GenerousLogic"))
            logic_compiled = compile_contract(logic_contract)
            logic = self._deploy(landscape, logic_compiled.init_code)
            logic_truth = ContractTruth(logic, "honeypot_logic", year)
            landscape.truths[logic] = logic_truth
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, logic, logic_contract,
                                      logic_compiled.runtime_code, logic_truth)
            contract = stdlib.honeypot_proxy(
                self._fresh_name("Honeypot"), logic, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "Others", [logic], profile, owner,
                                      expect_function_collision=True)

        if kind == "audius_pair":
            logic_contract = stdlib.audius_logic(
                self._fresh_name("InitializableLogic"))
            logic_compiled = compile_contract(logic_contract)
            logic = self._deploy(landscape, logic_compiled.init_code)
            logic_truth = ContractTruth(logic, "audius_logic", year)
            landscape.truths[logic] = logic_truth
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, logic, logic_contract,
                                      logic_compiled.runtime_code, logic_truth)
            contract = stdlib.audius_proxy(
                self._fresh_name("GovernanceProxy"), logic, owner)
            return self._finish_proxy(landscape, contract, kind, year,
                                      "Others", [logic], profile, owner,
                                      expect_storage_collision=True,
                                      storage_exploitable=True)

        if kind == "weird":
            # Pathological bytecode: survives the prefilter, fails emulation.
            address = self._deploy(landscape, stdlib.raw_deploy_init(
                stdlib.WEIRD_DELEGATECALL_RUNTIME))
            landscape.truths[address] = ContractTruth(address, kind, year)
            return address

        if kind == "airdrop":
            contract = stdlib.batch_airdrop(self._fresh_name("Airdrop"), owner)
            compiled = compile_contract(contract)
            address = self._deploy(landscape, compiled.init_code)
            truth = ContractTruth(address, kind, year)
            landscape.truths[address] = truth
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, address, contract,
                                      compiled.runtime_code, truth)
            if self.rng.random() < profile.tx_share:
                landscape.chain.transact(
                    owner, address,
                    encode_call("distribute(uint256,uint256)", [25, 3]))
            return address

        if kind == "timelock":
            contract = stdlib.timelock_vault(
                self._fresh_name("TimelockVault"), owner)
            compiled = compile_contract(contract)
            address = self._deploy(landscape, compiled.init_code)
            truth = ContractTruth(address, kind, year)
            landscape.truths[address] = truth
            if self.rng.random() < profile.source_share:
                self._register_source(landscape, address, contract,
                                      compiled.runtime_code, truth)
            if self.rng.random() < profile.tx_share:
                # Lock, then (usually) a premature withdrawal attempt whose
                # outcome is block-height-dependent — replaying it later
                # diverges, the §8.1 class.
                landscape.chain.transact(owner, address,
                                         encode_call("lockUntilDelay()"))
                landscape.chain.transact(owner, address,
                                         encode_call("withdrawAll()"))
            return address

        # Plain non-proxies.  A slice compiles with the Vyper-style
        # dispatcher so the extractors never overfit to one compiler.
        if kind == "wallet":
            contract = stdlib.simple_wallet(self._fresh_name("Wallet"), owner)
        else:
            contract = stdlib.simple_token(self._fresh_name("Token"), owner)
        style = "vyper" if self.rng.random() < 0.2 else "solc"
        compiled = compile_contract(contract, dispatcher_style=style)
        address = self._deploy(landscape, compiled.init_code)
        truth = ContractTruth(address, kind, year)
        landscape.truths[address] = truth
        if self.rng.random() < profile.source_share:
            self._register_source(landscape, address, contract,
                                  compiled.runtime_code, truth)
        if self.rng.random() < profile.tx_share:
            user = self._eoa("user")
            landscape.chain.fund(user, ETHER)
            landscape.chain.transact(user, address, encode_call("deposit()")
                                     if kind == "wallet"
                                     else encode_call("balanceOf(address)",
                                                      [user]))
        return address

    def _finish_proxy(self, landscape: Landscape, contract: Contract,
                      kind: str, year: int, standard: str,
                      logic_addresses: list[bytes],
                      profile: profiles.YearProfile, owner: bytes,
                      expect_function_collision: bool = False,
                      expect_storage_collision: bool = False,
                      storage_exploitable: bool = False) -> bytes:
        compiled = compile_contract(contract)
        address = self._deploy(landscape, compiled.init_code)
        truth = ContractTruth(
            address, kind, year, is_proxy=True, standard=standard,
            logic_addresses=list(logic_addresses),
            expect_function_collision=expect_function_collision,
            expect_storage_collision=expect_storage_collision,
            storage_exploitable=storage_exploitable,
        )
        landscape.truths[address] = truth
        if self.rng.random() < profile.source_share:
            self._register_source(landscape, address, contract,
                                  compiled.runtime_code, truth)
        self._maybe_transact(landscape, address, truth, profile, owner)
        return address

    def _maybe_transact(self, landscape: Landscape, address: bytes,
                        truth: ContractTruth, profile: profiles.YearProfile,
                        owner: bytes) -> None:
        if self.rng.random() >= profile.tx_share:
            return
        user = self._eoa("user")
        landscape.chain.fund(user, ETHER)
        # Hitting an unknown selector exercises the fallback delegation,
        # leaving the DELEGATECALL trace tx-history tools depend on.
        landscape.chain.transact(user, address,
                                 bytes.fromhex("f00dbabe") + b"\x00" * 32)

    # ----------------------------------------------------------- fresh logic
    def _make_app_logic(self, name: str) -> Contract:
        """A benign app logic contract with a distinctive function set.

        The layout mirrors the proxy convention (owner, implementation,
        then app state) so pairing it with a storage proxy is
        layout-compatible — deliberate collisions come only from the
        labelled honeypot/audius families.
        """
        suffix = self._fresh_name("v")
        return Contract(
            name=name,
            variables=(
                VarDecl("owner", "address"),
                VarDecl("implementationSlot", "address"),
                VarDecl("total", "uint256"),
            ),
            functions=(
                Function(name=f"mint_{suffix}",
                         params=(("amount", "uint256"),),
                         body=(Store("total", BinOp("+", Load("total"),
                                                    Param(0, "uint256"))),)),
                Function(name=f"total_{suffix}",
                         body=(Return(Load("total")),)),
                Function(name="ownerOf", body=(Return(Load("owner")),)),
            ),
        )

    def _deploy_fresh_logic(self, landscape: Landscape, year: int,
                            profile: profiles.YearProfile) -> bytes:
        # A slice of logic deployments are byte-identical clones of two
        # shared templates — the paper's Fig. 5b outliers (two logic
        # contracts with >10k duplicates each, source-available and hence
        # trivially cloneable).
        if self.rng.random() < 0.25:
            template_index = 0 if self.rng.random() < 0.7 else 1
            if not hasattr(self, "_logic_templates"):
                self._logic_templates = [
                    self._make_app_logic(f"SharedLogicTemplate{i}")
                    for i in range(2)]
            contract = self._logic_templates[template_index]
            kind = "shared_logic_clone"
        else:
            contract = self._make_app_logic(self._fresh_name("AppLogic"))
            kind = "app_logic"
        compiled = compile_contract(contract)
        address = self._deploy(landscape, compiled.init_code)
        truth = ContractTruth(address, kind, year)
        landscape.truths[address] = truth
        if self.rng.random() < profile.source_share:
            self._register_source(landscape, address, contract,
                                  compiled.runtime_code, truth)
        return address

    def _library_address(self, landscape: Landscape, year: int) -> bytes:
        if not hasattr(self, "_library"):
            contract = stdlib.math_library("SafeOpsLib")
            compiled = compile_contract(contract)
            self._library = self._deploy(landscape, compiled.init_code)
            landscape.truths[self._library] = ContractTruth(
                self._library, "library", year)
        return self._library

    # -------------------------------------------------------------- upgrades
    def _run_upgrades(self, landscape: Landscape,
                      candidates: list[tuple[bytes, str]]) -> None:
        """Fig. 6's upgrade process: rare, and mostly a single upgrade."""
        chain = landscape.chain
        chain.advance_to_block(chain.first_block_of_year(2023) + 1000)
        for address, kind in candidates:
            if self.rng.random() >= self.upgrade_probability:
                continue
            upgrades = 1
            while (self.rng.random() > profiles.UPGRADE_GEOMETRIC_P
                   and upgrades < profiles.MAX_UPGRADES):
                upgrades += 1
            truth = landscape.truths[address]
            selector = ("upgradeTo(address)" if kind in ("eip1967", "transparent")
                        else "setImplementation(address)")
            for _ in range(upgrades):
                new_logic = self._deploy_fresh_logic(
                    landscape, 2023, profiles.YEAR_PROFILES[2023])
                sender = self._owner_of(landscape, address, kind)
                receipt = chain.transact(
                    sender, address, encode_call(selector, [new_logic]))
                if receipt.success:
                    truth.logic_addresses.append(new_logic)
                    truth.upgrade_count += 1

    @staticmethod
    def _owner_of(landscape: Landscape, address: bytes, kind: str) -> bytes:
        """Recover the admin EOA able to upgrade the proxy."""
        from repro.lang.storage_layout import EIP1967_ADMIN_SLOT

        state = landscape.chain.state
        if kind in ("eip1967", "transparent"):
            word = state.get_storage(address, EIP1967_ADMIN_SLOT)
        else:
            word = state.get_storage(address, 0)
        return (word & ((1 << 160) - 1)).to_bytes(20, "big")


def generate_landscape(total: int = 600, seed: int = 42,
                       upgrade_probability: float | None = None,
                       chain_profile=None) -> Landscape:
    """Convenience wrapper around :class:`LandscapeGenerator`."""
    return LandscapeGenerator(
        total=total, seed=seed,
        upgrade_probability=upgrade_probability,
        chain_profile=chain_profile).generate()
