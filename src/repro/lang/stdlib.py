"""Standard contract patterns (the building blocks of the landscape).

Each factory returns a :class:`~repro.lang.ast.Contract` AST — or, for the
EIP-1167 minimal proxy, the exact standardized bytecode — covering every
population the paper analyzes:

* the proxy standards of Table 4 (EIP-1167 minimal, EIP-1967, EIP-1822,
  non-standard storage proxies),
* transparent proxies (OpenZeppelin's collision mitigation, §3.1),
* diamond proxies (EIP-2535 — the pattern §8.1 admits ProxioN misses),
* library-call contracts (the CRUSH/Etherscan false-positive class),
* the Listing-1 honeypot pair (function collision) and the Listing-2
  Audius-style pair (storage collision),
* plain non-proxy contracts (wallets, tokens, call-forwarders).
"""

from __future__ import annotations

from repro.lang.ast import (
    BinOp,
    BlockNumber,
    LoopIndex,
    Repeat,
    CallForwardCalldata,
    CallValue,
    Caller,
    Const,
    Contract,
    DelegateCallEncoded,
    DelegateForwardCalldata,
    Emit,
    Fallback,
    FixedSlotVar,
    Function,
    If,
    Load,
    MapLoad,
    MapStore,
    Not,
    Param,
    Require,
    Return,
    RevertStmt,
    Selector,
    SendEther,
    SelfBalance,
    Store,
    VarDecl,
)
from repro.lang.storage_layout import (
    EIP1822_PROXIABLE_SLOT,
    EIP1967_ADMIN_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
)
from repro.utils.hexutil import address_to_word

ETHER = 10 ** 18

# ----------------------------------------------------------- EIP-1167 bytes
_MINIMAL_PROXY_PREFIX = bytes.fromhex("363d3d373d3d3d363d73")
_MINIMAL_PROXY_SUFFIX = bytes.fromhex("5af43d82803e903d91602b57fd5bf3")
_MINIMAL_INIT_PREFIX = bytes.fromhex("3d602d80600a3d3981f3")


def minimal_proxy_runtime(logic: bytes) -> bytes:
    """The exact EIP-1167 runtime bytecode for ``logic`` (45 bytes)."""
    if len(logic) != 20:
        raise ValueError("logic must be a 20-byte address")
    return _MINIMAL_PROXY_PREFIX + logic + _MINIMAL_PROXY_SUFFIX


def minimal_proxy_init(logic: bytes) -> bytes:
    """The exact EIP-1167 init bytecode deploying the minimal proxy."""
    return _MINIMAL_INIT_PREFIX + minimal_proxy_runtime(logic)


def raw_deploy_init(runtime: bytes) -> bytes:
    """Generic init code returning an arbitrary runtime blob (PUSH2 widths)."""
    if len(runtime) > 0xFFFF:
        raise ValueError("runtime too large")
    stub = bytes([
        0x61, *len(runtime).to_bytes(2, "big"),   # PUSH2 len
        0x61, 0x00, 0x0F,                         # PUSH2 offset (15)
        0x60, 0x00,                               # PUSH1 0
        0x39,                                     # CODECOPY
        0x61, *len(runtime).to_bytes(2, "big"),   # PUSH2 len
        0x60, 0x00,                               # PUSH1 0
        0xF3,                                     # RETURN
    ])
    assert len(stub) == 15
    return stub + runtime


#: Pathological runtime: passes the DELEGATECALL prefilter but underflows
#: the stack immediately — the §6.2 "emulation failure" class (~1.2%).
WEIRD_DELEGATECALL_RUNTIME = bytes([0xF4, 0x00])


def extract_minimal_proxy_target(runtime: bytes) -> bytes | None:
    """If ``runtime`` is an EIP-1167 clone, return its hard-coded logic."""
    if (len(runtime) == 45
            and runtime.startswith(_MINIMAL_PROXY_PREFIX)
            and runtime.endswith(_MINIMAL_PROXY_SUFFIX)):
        return runtime[len(_MINIMAL_PROXY_PREFIX):len(_MINIMAL_PROXY_PREFIX) + 20]
    return None


# ------------------------------------------------------------ proxy patterns
def eip1967_proxy(name: str, logic: bytes, admin: bytes,
                  extra_functions: tuple[Function, ...] = ()) -> Contract:
    """An EIP-1967 proxy: implementation + admin in hash-derived slots."""
    return Contract(
        name=name,
        fixed_slot_vars=(
            FixedSlotVar("implementation", "address", EIP1967_IMPLEMENTATION_SLOT),
            FixedSlotVar("admin", "address", EIP1967_ADMIN_SLOT),
        ),
        functions=(
            Function(
                name="upgradeTo",
                params=(("newImplementation", "address"),),
                body=(
                    Require(BinOp("==", Caller(), Load("admin"))),
                    Store("implementation", Param(0, "address")),
                    # The EIP-1967 Upgraded(address) event.
                    Emit("Upgraded(address)", (Param(0, "address"),)),
                ),
            ),
        ) + extra_functions,
        fallback=Fallback(body=(DelegateForwardCalldata(Load("implementation")),)),
        constructor=(
            Store("implementation", Const(address_to_word(logic))),
            Store("admin", Const(address_to_word(admin))),
        ),
    )


def eip1822_proxy(name: str, logic: bytes) -> Contract:
    """An EIP-1822 (UUPS) proxy: logic address in keccak256("PROXIABLE")."""
    return Contract(
        name=name,
        fixed_slot_vars=(
            FixedSlotVar("proxiable", "address", EIP1822_PROXIABLE_SLOT),
        ),
        fallback=Fallback(body=(DelegateForwardCalldata(Load("proxiable")),)),
        constructor=(Store("proxiable", Const(address_to_word(logic))),),
    )


def uups_logic(name: str, extra_functions: tuple[Function, ...] = ()) -> Contract:
    """A logic contract for EIP-1822: carries updateCodeAddress()."""
    return Contract(
        name=name,
        fixed_slot_vars=(
            FixedSlotVar("proxiable", "address", EIP1822_PROXIABLE_SLOT),
        ),
        functions=(
            Function(
                name="updateCodeAddress",
                params=(("newAddress", "address"),),
                body=(Store("proxiable", Param(0, "address")),),
            ),
        ) + extra_functions,
    )


def storage_proxy(name: str, logic: bytes, owner: bytes,
                  extra_functions: tuple[Function, ...] = (),
                  extra_variables: tuple[VarDecl, ...] = ()) -> Contract:
    """A non-standard ("Others" in Table 4) proxy with the logic address in a
    plain storage variable, guarded by an owner — the Listing-2 proxy shape."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("logic", "address"),
        ) + extra_variables,
        functions=(
            Function(
                name="setImplementation",
                params=(("impl", "address"),),
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    Store("logic", Param(0, "address")),
                ),
            ),
        ) + extra_functions,
        fallback=Fallback(body=(DelegateForwardCalldata(Load("logic")),)),
        constructor=(
            Store("owner", Const(address_to_word(owner))),
            Store("logic", Const(address_to_word(logic))),
        ),
    )


def transparent_proxy(name: str, logic: bytes, admin: bytes) -> Contract:
    """OpenZeppelin's transparent pattern: the admin never reaches the
    fallback delegation, so function collisions cannot trigger for them."""
    return Contract(
        name=name,
        fixed_slot_vars=(
            FixedSlotVar("implementation", "address", EIP1967_IMPLEMENTATION_SLOT),
            FixedSlotVar("admin", "address", EIP1967_ADMIN_SLOT),
        ),
        functions=(
            Function(
                name="upgradeTo",
                params=(("newImplementation", "address"),),
                body=(
                    Require(BinOp("==", Caller(), Load("admin"))),
                    Store("implementation", Param(0, "address")),
                ),
            ),
            Function(
                name="admin",
                body=(
                    Require(BinOp("==", Caller(), Load("admin"))),
                    Return(Load("admin")),
                ),
            ),
        ),
        fallback=Fallback(body=(
            If(
                BinOp("==", Caller(), Load("admin")),
                then_body=(RevertStmt(),),
                else_body=(DelegateForwardCalldata(Load("implementation")),),
            ),
        )),
        constructor=(
            Store("implementation", Const(address_to_word(logic))),
            Store("admin", Const(address_to_word(admin))),
        ),
    )


def diamond_proxy(name: str, owner: bytes) -> Contract:
    """An EIP-2535 diamond: fallback delegates to the facet registered for
    the incoming selector; unregistered selectors revert.

    Random-selector emulation therefore never observes the delegatecall —
    the §8.1 limitation reproduced faithfully.
    """
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("facets", "mapping(uint32=>address)"),
        ),
        functions=(
            Function(
                name="registerFacet",
                params=(("selector", "uint32"), ("facet", "address")),
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    MapStore("facets", Param(0, "uint32"), Param(1, "address")),
                ),
            ),
        ),
        fallback=Fallback(body=(
            If(
                BinOp("==", MapLoad("facets", Selector()), Const(0)),
                then_body=(RevertStmt(),),
                else_body=(
                    DelegateForwardCalldata(MapLoad("facets", Selector())),
                ),
            ),
        )),
        constructor=(Store("owner", Const(address_to_word(owner))),),
    )


def ownable_delegate_proxy(name: str, logic: bytes, owner: bytes) -> Contract:
    """The Wyvern-protocol ``OwnableDelegateProxy`` shape (§7.2).

    Proxy and logic both expose ``proxyType()``, ``implementation()`` and
    ``upgradeabilityOwner()`` (a contract-inheritance artifact), producing
    the function-collision family that accounts for 98.7% of all function
    collisions on mainnet — cloned verbatim across millions of addresses.
    """
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("logic", "address"),
        ),
        functions=(
            Function(name="proxyType", body=(Return(Const(2)),)),
            Function(name="implementation", body=(Return(Load("logic")),)),
            Function(name="upgradeabilityOwner", body=(Return(Load("owner")),)),
        ),
        fallback=Fallback(body=(DelegateForwardCalldata(Load("logic")),)),
        constructor=(
            Store("owner", Const(address_to_word(owner))),
            Store("logic", Const(address_to_word(logic))),
        ),
    )


def wyvern_logic(name: str = "AuthenticatedProxyLogic") -> Contract:
    """The logic side of the Wyvern pair: inherits the same upgradeability
    interface (hence the collisions) plus its own user functionality."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("logic", "address"),
            VarDecl("revoked", "bool"),
        ),
        functions=(
            Function(name="proxyType", body=(Return(Const(2)),)),
            Function(name="implementation", body=(Return(Load("logic")),)),
            Function(name="upgradeabilityOwner", body=(Return(Load("owner")),)),
            Function(
                name="setRevoked",
                params=(("revoke", "bool"),),
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    Store("revoked", Param(0, "bool")),
                ),
            ),
        ),
    )


# ------------------------------------------------- non-proxy / trap patterns
def library_user(name: str, library: bytes) -> Contract:
    """Uses DELEGATECALL as an external *library call* — not in the fallback
    and with re-encoded arguments.  ProxioN must not call this a proxy;
    opcode-presence and tx-history tools (Etherscan, CRUSH) will (§6.2)."""
    return Contract(
        name=name,
        variables=(VarDecl("total", "uint256"),),
        functions=(
            Function(
                name="addViaLibrary",
                params=(("amount", "uint256"),),
                body=(
                    DelegateCallEncoded(
                        Const(address_to_word(library)),
                        "libraryAdd(uint256)",
                        (Param(0, "uint256"),),
                    ),
                ),
            ),
            Function(
                name="totalStored",
                body=(Return(Load("total")),),
            ),
        ),
    )


def math_library(name: str = "SafeMathLib") -> Contract:
    """The library contract the library_user delegatecalls into."""
    return Contract(
        name=name,
        variables=(VarDecl("total", "uint256"),),
        functions=(
            Function(
                name="libraryAdd",
                params=(("amount", "uint256"),),
                body=(Store("total", BinOp("+", Load("total"), Param(0, "uint256"))),),
            ),
        ),
    )


def call_forwarder(name: str, target: bytes) -> Contract:
    """Forwards calldata with CALL (not DELEGATECALL) — never a proxy."""
    return Contract(
        name=name,
        variables=(VarDecl("target", "address"),),
        fallback=Fallback(body=(CallForwardCalldata(Load("target")),)),
        constructor=(Store("target", Const(address_to_word(target))),),
    )


def simple_wallet(name: str, owner: bytes) -> Contract:
    """A plain value-holding wallet; no delegatecall anywhere."""
    return Contract(
        name=name,
        variables=(VarDecl("owner", "address"),),
        functions=(
            Function(
                name="withdraw",
                params=(("amount", "uint256"),),
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    SendEther(Caller(), Param(0, "uint256")),
                ),
            ),
            Function(name="deposit", body=(Return(CallValue()),)),
            Function(name="ownerOf", body=(Return(Load("owner")),)),
        ),
        constructor=(Store("owner", Const(address_to_word(owner))),),
    )


def batch_airdrop(name: str, owner: bytes) -> Contract:
    """A loop-heavy distributor: credits ``n`` sequential beneficiary slots
    per call.  Loops are everyday EVM reality; the analyzers must neither
    hang on them (instruction/step budgets) nor lose the storage accesses
    inside them."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("credits", "mapping(uint256=>uint256)"),
            VarDecl("rounds", "uint256"),
        ),
        functions=(
            Function(
                name="distribute",
                params=(("n", "uint256"), ("amount", "uint256")),
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    Repeat(Param(0, "uint256"), (
                        MapStore("credits", LoopIndex(),
                                 BinOp("+", MapLoad("credits", LoopIndex()),
                                       Param(1, "uint256"))),
                    )),
                    Store("rounds", BinOp("+", Load("rounds"), Const(1))),
                ),
            ),
            Function(
                name="creditOf",
                params=(("slot", "uint256"),),
                body=(Return(MapLoad("credits", Param(0, "uint256"))),),
            ),
        ),
        constructor=(Store("owner", Const(address_to_word(owner))),),
    )


def timelock_vault(name: str, owner: bytes, unlock_delay: int = 10 ** 6) -> Contract:
    """A block-height-gated vault — the class of contracts whose behaviour
    genuinely depends on *when* they execute (§8.1's divergence source)."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("unlockBlock", "uint256"),
        ),
        functions=(
            Function(
                name="lockUntilDelay",
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    Store("unlockBlock",
                          BinOp("+", BlockNumber(), Const(unlock_delay))),
                ),
            ),
            Function(
                name="withdrawAll",
                body=(
                    Require(BinOp("==", Caller(), Load("owner"))),
                    Require(BinOp(">=", BlockNumber(), Load("unlockBlock"))),
                    SendEther(Caller(), SelfBalance()),
                ),
            ),
            Function(name="currentBlock", body=(Return(BlockNumber()),)),
            Function(name="unlocksAt", body=(Return(Load("unlockBlock")),)),
        ),
        constructor=(Store("owner", Const(address_to_word(owner))),),
    )


def simple_token(name: str, initial_holder: bytes, supply: int = 10 ** 24) -> Contract:
    """A miniature ERC-20-ish token (mapping-based balances)."""
    return Contract(
        name=name,
        variables=(
            VarDecl("totalSupply", "uint256"),
            VarDecl("balances", "mapping(address=>uint256)"),
        ),
        functions=(
            Function(
                name="transfer",
                params=(("to", "address"), ("amount", "uint256")),
                body=(
                    Require(BinOp(
                        "<=", Param(1, "uint256"),
                        MapLoad("balances", Caller()))),
                    MapStore("balances", Caller(),
                             BinOp("-", MapLoad("balances", Caller()),
                                   Param(1, "uint256"))),
                    MapStore("balances", Param(0, "address"),
                             BinOp("+", MapLoad("balances", Param(0, "address")),
                                   Param(1, "uint256"))),
                    Emit("Transfer(address,address,uint256)",
                         (Caller(), Param(0, "address"), Param(1, "uint256"))),
                    Return(Const(1)),
                ),
            ),
            Function(
                name="balanceOf",
                params=(("account", "address"),),
                body=(Return(MapLoad("balances", Param(0, "address"))),),
            ),
        ),
        constructor=(
            Store("totalSupply", Const(supply)),
            MapStore("balances", Const(address_to_word(initial_holder)),
                     Const(supply)),
        ),
    )


# --------------------------------------------------- Listing 1: the honeypot
def honeypot_proxy(name: str, logic: bytes, owner: bytes) -> Contract:
    """Listing 1's proxy: ``impl_LUsXCWD2AKCc()`` collides with the logic's
    ``free_ether_withdrawal()`` (both hash to 0xdf4a3106) and steals the
    caller's funds instead of paying out."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),
            VarDecl("logic", "address"),
        ),
        functions=(
            Function(
                name="impl_LUsXCWD2AKCc",
                body=(
                    # The scam body: siphon the caller's deposit to the owner.
                    SendEther(Load("owner"), CallValue()),
                ),
            ),
        ),
        fallback=Fallback(body=(DelegateForwardCalldata(Load("logic")),)),
        constructor=(
            Store("owner", Const(address_to_word(owner))),
            Store("logic", Const(address_to_word(logic))),
        ),
    )


def honeypot_logic(name: str = "GenerousLogic") -> Contract:
    """Listing 1's logic: the attractive function nobody can ever reach."""
    return Contract(
        name=name,
        functions=(
            Function(
                name="free_ether_withdrawal",
                body=(SendEther(Caller(), Const(10 * ETHER)),),
            ),
        ),
    )


# ------------------------------------------- Listing 2: the Audius collision
def audius_proxy(name: str, logic: bytes, owner: bytes) -> Contract:
    """Listing 2's proxy: ``owner`` (20 bytes) occupies slot 0."""
    return Contract(
        name=name,
        variables=(
            VarDecl("owner", "address"),   # slot 0, offset 0
            VarDecl("logic", "address"),   # slot 1 (20 + 20 > 32)
        ),
        fallback=Fallback(body=(DelegateForwardCalldata(Load("logic")),)),
        constructor=(
            Store("owner", Const(address_to_word(owner))),
            Store("logic", Const(address_to_word(logic))),
        ),
    )


def audius_logic(name: str = "AudiusLogic") -> Contract:
    """Listing 2's logic: ``initialized``/``initializing`` bools pack into
    slot 0 — colliding with the proxy's ``owner`` address.

    ``owner`` models the inherited governance layout of the real Audius
    contracts: it also resolves to slot 0 (a fixed-slot variable here), so
    the ``owner = msg.sender`` write at the end of ``initialize()``
    immediately clobbers both freshly-written flag bytes with address bytes.
    Any realistic address has non-zero low bytes, so ``initializing`` reads
    true forever and ``initialize()`` can be replayed to take over
    ownership — the Audius exploit (§2.3)."""
    return Contract(
        name=name,
        variables=(
            VarDecl("initialized", "bool"),    # slot 0, offset 0
            VarDecl("initializing", "bool"),   # slot 0, offset 1
        ),
        fixed_slot_vars=(
            FixedSlotVar("owner", "address", 0),  # inherited: also slot 0
        ),
        functions=(
            Function(
                name="initialize",
                body=(
                    Require(BinOp("or", Load("initializing"),
                                  Not(Load("initialized")))),
                    Store("initialized", Const(1)),
                    Store("initializing", Const(0)),
                    Store("owner", Caller()),
                ),
            ),
            Function(
                name="governanceAddress",
                body=(Return(Load("owner")),),
            ),
        ),
    )
