"""Mini contract language: types, storage layout, compiler, patterns."""

from repro.lang import ast, stdlib
from repro.lang.asm import Assembler
from repro.lang.compiler import CompileError, compile_contract, compile_runtime
from repro.lang.source import contract_source_of, render_source
from repro.lang.storage_layout import (
    DIAMOND_STORAGE_SLOT,
    EIP1822_PROXIABLE_SLOT,
    EIP1967_ADMIN_SLOT,
    EIP1967_IMPLEMENTATION_SLOT,
    SlotAssignment,
    StorageLayout,
    compute_layout,
    mapping_element_slot,
)
from repro.lang.types import MappingType, ValueType, parse_type, types_compatible

__all__ = [
    "Assembler",
    "CompileError",
    "DIAMOND_STORAGE_SLOT",
    "EIP1822_PROXIABLE_SLOT",
    "EIP1967_ADMIN_SLOT",
    "EIP1967_IMPLEMENTATION_SLOT",
    "MappingType",
    "SlotAssignment",
    "StorageLayout",
    "ValueType",
    "ast",
    "compile_contract",
    "compile_runtime",
    "compute_layout",
    "contract_source_of",
    "mapping_element_slot",
    "parse_type",
    "render_source",
    "stdlib",
    "types_compatible",
]
