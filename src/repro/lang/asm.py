"""A tiny EVM assembler with labels.

The compiler drives this builder: emit opcodes and pushes, mark label
positions, reference labels before they are defined, and let ``assemble()``
resolve every reference in a second pass.  Label references always occupy a
``PUSH2`` (two-byte immediate), matching what solc emits for jump targets in
contracts under 64 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm import opcodes as op


@dataclass(slots=True)
class _LabelRef:
    label: str
    patch_offset: int  # position of the 2 immediate bytes within the program


class Assembler:
    """Accumulates bytecode; resolves label references on assemble()."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._labels: dict[str, int] = {}
        self._refs: list[_LabelRef] = []

    # ------------------------------------------------------------- emission
    def emit(self, opcode_value: int) -> "Assembler":
        self._bytes.append(opcode_value)
        return self

    def push(self, value: int) -> "Assembler":
        """PUSH the minimal-width encoding of ``value`` (PUSH1..PUSH32)."""
        if value < 0:
            raise ValueError("cannot push a negative literal")
        width = max(1, (value.bit_length() + 7) // 8)
        if width > 32:
            raise ValueError(f"literal too wide: {value:#x}")
        self._bytes.append(op.PUSH0 + width)
        self._bytes.extend(value.to_bytes(width, "big"))
        return self

    def push_bytes(self, data: bytes) -> "Assembler":
        """PUSH raw bytes at their exact width (e.g. a PUSH4 selector or a
        PUSH20 hard-coded address, preserving leading zeros)."""
        if not 1 <= len(data) <= 32:
            raise ValueError(f"push width out of range: {len(data)}")
        self._bytes.append(op.PUSH0 + len(data))
        self._bytes.extend(data)
        return self

    def label(self, name: str) -> "Assembler":
        """Define ``name`` here and emit the JUMPDEST."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name}")
        self._labels[name] = len(self._bytes)
        self._bytes.append(op.JUMPDEST)
        return self

    def push_label(self, name: str) -> "Assembler":
        """PUSH2 <label offset> (patched at assemble time)."""
        self._bytes.append(op.PUSH0 + 2)
        self._refs.append(_LabelRef(name, len(self._bytes)))
        self._bytes.extend(b"\x00\x00")
        return self

    def jump(self, name: str) -> "Assembler":
        return self.push_label(name).emit(op.JUMP)

    def jumpi(self, name: str) -> "Assembler":
        return self.push_label(name).emit(op.JUMPI)

    def raw(self, data: bytes) -> "Assembler":
        """Splice pre-assembled bytes (no label adjustment — append only)."""
        self._bytes.extend(data)
        return self

    @property
    def size(self) -> int:
        return len(self._bytes)

    # ------------------------------------------------------------- assembly
    def assemble(self) -> bytes:
        program = bytearray(self._bytes)
        for ref in self._refs:
            if ref.label not in self._labels:
                raise ValueError(f"undefined label: {ref.label}")
            target = self._labels[ref.label]
            if target > 0xFFFF:
                raise ValueError(f"label {ref.label} beyond PUSH2 range")
            program[ref.patch_offset:ref.patch_offset + 2] = target.to_bytes(2, "big")
        return bytes(program)
