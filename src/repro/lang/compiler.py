"""Compiler from the mini language to solc-idiomatic EVM bytecode.

The emitted runtime follows the canonical Solidity shape the paper's
bytecode analyses key on:

* the free-memory-pointer prologue (``PUSH1 0x80 PUSH1 0x40 MSTORE``),
* the selector dispatcher — ``CALLDATALOAD``/``SHR`` then a chain of
  ``DUP1 PUSH4 <selector> EQ PUSH2 <dest> JUMPI`` comparisons (Listing 3),
* a fallback label reached when no selector matches,
* packed storage access (shift + mask read-modify-write for sub-word
  variables), and Solidity mapping addressing via ``KECCAK256``,
* init code that writes constructor state and ``CODECOPY``-returns the
  runtime, and a metadata trailer behind an ``INVALID`` byte, providing the
  arbitrary-data-after-PUSH4 noise that §3.1 warns naive selector scanners
  about.
"""

from __future__ import annotations

from repro.evm import opcodes as op
from repro.lang import ast
from repro.lang.asm import Assembler
from repro.lang.storage_layout import (
    SlotAssignment,
    StorageLayout,
    compute_layout,
)
from repro.lang.types import SLOT_BYTES, parse_type
from repro.utils.hexutil import WORD_MASK
from repro.utils.keccak import keccak256

_COMMUTATIVE = {"+": op.ADD, "*": op.MUL, "&": op.AND, "|": op.OR,
                "^": op.XOR, "==": op.EQ}
_NONCOMMUTATIVE = {"-": op.SUB, "/": op.DIV, "%": op.MOD,
                   "<": op.LT, ">": op.GT}


class CompileError(Exception):
    """Raised for malformed contract definitions."""


class _FunctionCompiler:
    """Compiles statements/expressions of one function body."""

    def __init__(self, assembler: Assembler, layout: StorageLayout,
                 label_prefix: str) -> None:
        self.asm = assembler
        self.layout = layout
        self._label_prefix = label_prefix
        self._label_counter = 0

    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self._label_prefix}_{hint}_{self._label_counter}"

    # ------------------------------------------------------------ statements
    def compile_body(self, body: tuple[ast.Stmt, ...]) -> None:
        for statement in body:
            self.compile_statement(statement)

    def compile_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Store):
            self._compile_store(statement)
        elif isinstance(statement, ast.StoreAt):
            self.compile_expression(statement.value)
            self.compile_expression(statement.slot)
            self.asm.emit(op.SSTORE)
        elif isinstance(statement, ast.MapStore):
            self._compile_map_store(statement)
        elif isinstance(statement, ast.Require):
            self._compile_require(statement)
        elif isinstance(statement, ast.Return):
            self._compile_return(statement)
        elif isinstance(statement, ast.RevertStmt):
            self.asm.push(0).push(0).emit(op.REVERT)
        elif isinstance(statement, ast.If):
            self._compile_if(statement)
        elif isinstance(statement, ast.Repeat):
            self._compile_repeat(statement)
        elif isinstance(statement, ast.Emit):
            self._compile_emit(statement)
        elif isinstance(statement, ast.SendEther):
            self._compile_send_ether(statement)
        elif isinstance(statement, ast.DelegateForwardCalldata):
            self._compile_forward(statement.target, delegate=True)
        elif isinstance(statement, ast.CallForwardCalldata):
            self._compile_forward(statement.target, delegate=False)
        elif isinstance(statement, ast.DelegateCallEncoded):
            self._compile_encoded_call(statement.target, statement.prototype,
                                       statement.args, delegate=True)
        elif isinstance(statement, ast.CallEncoded):
            self._compile_encoded_call(statement.target, statement.prototype,
                                       statement.args, delegate=False,
                                       value=statement.value)
        else:
            raise CompileError(f"unknown statement: {statement!r}")

    def _compile_store(self, statement: ast.Store) -> None:
        assignment = self._assignment(statement.var)
        self.compile_expression(statement.value)
        if assignment.size == SLOT_BYTES:
            self.asm.push(assignment.slot).emit(op.SSTORE)
            return
        # Packed sub-word write: mask the value, clear the target byte
        # range in the current slot word, OR the shifted value in.
        self.asm.push(assignment.mask).emit(op.AND)
        if assignment.bit_shift:
            self.asm.push(assignment.bit_shift).emit(op.SHL)
        self.asm.push(assignment.slot).emit(op.SLOAD)
        self.asm.push((assignment.mask << assignment.bit_shift) ^ WORD_MASK)
        self.asm.emit(op.AND)
        self.asm.emit(op.OR)
        self.asm.push(assignment.slot).emit(op.SSTORE)

    def _compile_map_store(self, statement: ast.MapStore) -> None:
        assignment = self._assignment(statement.var)
        if not assignment.is_mapping:
            raise CompileError(f"{statement.var} is not a mapping")
        self._compile_mapping_slot(statement.key, assignment)
        self.compile_expression(statement.value)
        self.asm.emit(op.SWAP1).emit(op.SSTORE)

    def _compile_require(self, statement: ast.Require) -> None:
        ok_label = self._fresh_label("require_ok")
        self.compile_expression(statement.condition)
        self.asm.jumpi(ok_label)
        self.asm.push(0).push(0).emit(op.REVERT)
        self.asm.label(ok_label)

    def _compile_return(self, statement: ast.Return) -> None:
        if statement.value is None:
            self.asm.emit(op.STOP)
            return
        self.compile_expression(statement.value)
        self.asm.push(0).emit(op.MSTORE)
        self.asm.push(32).push(0).emit(op.RETURN)

    def _compile_if(self, statement: ast.If) -> None:
        then_label = self._fresh_label("then")
        end_label = self._fresh_label("endif")
        self.compile_expression(statement.condition)
        self.asm.jumpi(then_label)
        self.compile_body(statement.else_body)
        self.asm.jump(end_label)
        self.asm.label(then_label)
        self.compile_body(statement.then_body)
        self.asm.label(end_label)

    # Scratch memory word for the Repeat loop counter: clear of the
    # mapping-hash scratch (0x00–0x3f) and the free-memory pointer (0x40).
    _LOOP_COUNTER_SLOT = 0x60

    def _compile_repeat(self, statement: ast.Repeat) -> None:
        start_label = self._fresh_label("loop")
        end_label = self._fresh_label("loop_end")
        # i = 0
        self.asm.push(0).push(self._LOOP_COUNTER_SLOT).emit(op.MSTORE)
        self.asm.label(start_label)
        # while i < count
        self.compile_expression(statement.count)
        self.asm.push(self._LOOP_COUNTER_SLOT).emit(op.MLOAD)
        self.asm.emit(op.LT)          # i < count (i on top)
        self.asm.emit(op.ISZERO)
        self.asm.jumpi(end_label)
        for inner in statement.body:
            self.compile_statement(inner)
        # i += 1
        self.asm.push(self._LOOP_COUNTER_SLOT).emit(op.MLOAD)
        self.asm.push(1).emit(op.ADD)
        self.asm.push(self._LOOP_COUNTER_SLOT).emit(op.MSTORE)
        self.asm.jump(start_label)
        self.asm.label(end_label)

    def _compile_emit(self, statement: ast.Emit) -> None:
        # Stage the data words in scratch memory, then LOG1(topic).
        for index, expression in enumerate(statement.data):
            self.compile_expression(expression)
            self.asm.push(32 * index).emit(op.MSTORE)
        topic = int.from_bytes(keccak256(statement.signature.encode()), "big")
        self.asm.push(topic)                       # topic1
        self.asm.push(32 * len(statement.data))    # size
        self.asm.push(0)                           # offset
        # LOG1 pops (offset, size, topic1) with offset on top.
        self.asm.emit(op.LOG0 + 1)

    def _compile_send_ether(self, statement: ast.SendEther) -> None:
        # CALL(gas, to, amount, 0, 0, 0, 0); stack built bottom-up.
        self.asm.push(0).push(0).push(0).push(0)
        self.compile_expression(statement.amount)
        self.compile_expression(statement.to)
        self.asm.emit(op.GAS).emit(op.CALL).emit(op.POP)

    def _compile_forward(self, target: ast.Expr, delegate: bool) -> None:
        ok_label = self._fresh_label("dcall_ok")
        # The target expression may use scratch memory (mapping hashing), so
        # it must be evaluated *before* the calldata is staged at offset 0.
        self.compile_expression(target)
        # calldatacopy(0, 0, calldatasize)
        self.asm.emit(op.CALLDATASIZE).push(0).push(0).emit(op.CALLDATACOPY)
        # {delegate,}call(gas, target, [value,] 0, calldatasize, 0, 0)
        self.asm.push(0).push(0).emit(op.CALLDATASIZE).push(0)
        if not delegate:
            self.asm.emit(op.CALLVALUE)
            self.asm.emit(op.DUP1 + 5)  # DUP6: the buried target
        else:
            self.asm.emit(op.DUP1 + 4)  # DUP5: the buried target
        self.asm.emit(op.GAS).emit(op.DELEGATECALL if delegate else op.CALL)
        self.asm.emit(op.SWAP1).emit(op.POP)  # drop the stale target copy
        # returndatacopy(0, 0, returndatasize) then bubble success/revert.
        self.asm.emit(op.RETURNDATASIZE).push(0).push(0).emit(op.RETURNDATACOPY)
        self.asm.jumpi(ok_label)
        self.asm.emit(op.RETURNDATASIZE).push(0).emit(op.REVERT)
        self.asm.label(ok_label)
        self.asm.emit(op.RETURNDATASIZE).push(0).emit(op.RETURN)

    def _compile_encoded_call(self, target: ast.Expr, prototype: str,
                              args: tuple[ast.Expr, ...], delegate: bool,
                              value: ast.Expr = ast.Const(0)) -> None:
        from repro.utils.abi import function_selector

        selector_word = int.from_bytes(function_selector(prototype), "big") << 224
        input_size = 4 + 32 * len(args)
        # Lay the fresh call frame out in scratch memory from offset 0.
        self.asm.push(selector_word).push(0).emit(op.MSTORE)
        for index, argument in enumerate(args):
            self.compile_expression(argument)
            self.asm.push(4 + 32 * index).emit(op.MSTORE)
        self.asm.push(0).push(0)                       # out_size, out_offset
        self.asm.push(input_size).push(0)              # in_size, in_offset
        if delegate:
            self.compile_expression(target)
            self.asm.emit(op.GAS).emit(op.DELEGATECALL)
        else:
            self.compile_expression(value)
            self.compile_expression(target)
            self.asm.emit(op.GAS).emit(op.CALL)
        self.asm.emit(op.POP)

    # ----------------------------------------------------------- expressions
    def compile_expression(self, expression: ast.Expr) -> None:
        if isinstance(expression, ast.Const):
            self.asm.push(expression.value & WORD_MASK)
        elif isinstance(expression, ast.Param):
            self._compile_param(expression)
        elif isinstance(expression, ast.Load):
            self._compile_load(expression)
        elif isinstance(expression, ast.MapLoad):
            self._compile_map_load(expression)
        elif isinstance(expression, ast.Caller):
            self.asm.emit(op.CALLER)
        elif isinstance(expression, ast.CallValue):
            self.asm.emit(op.CALLVALUE)
        elif isinstance(expression, ast.SelfBalance):
            self.asm.emit(op.SELFBALANCE)
        elif isinstance(expression, ast.SelfAddress):
            self.asm.emit(op.ADDRESS)
        elif isinstance(expression, ast.LoopIndex):
            self.asm.push(self._LOOP_COUNTER_SLOT).emit(op.MLOAD)
        elif isinstance(expression, ast.BlockNumber):
            self.asm.emit(op.NUMBER)
        elif isinstance(expression, ast.Timestamp):
            self.asm.emit(op.TIMESTAMP)
        elif isinstance(expression, ast.Selector):
            self.asm.push(0).emit(op.CALLDATALOAD).push(0xE0).emit(op.SHR)
        elif isinstance(expression, ast.BinOp):
            self._compile_binop(expression)
        elif isinstance(expression, ast.Not):
            self.compile_expression(expression.expr)
            self.asm.emit(op.ISZERO)
        else:
            raise CompileError(f"unknown expression: {expression!r}")

    def _compile_param(self, expression: ast.Param) -> None:
        self.asm.push(4 + 32 * expression.index).emit(op.CALLDATALOAD)
        parsed = parse_type(expression.type_name)
        if getattr(parsed, "size", SLOT_BYTES) < SLOT_BYTES:
            # solc-style argument cleanup for sub-word types.
            self.asm.push(parsed.mask).emit(op.AND)

    def _compile_load(self, expression: ast.Load) -> None:
        assignment = self._assignment(expression.var)
        self.asm.push(assignment.slot).emit(op.SLOAD)
        if assignment.size == SLOT_BYTES:
            return
        if assignment.bit_shift:
            self.asm.push(assignment.bit_shift).emit(op.SHR)
        self.asm.push(assignment.mask).emit(op.AND)

    def _compile_map_load(self, expression: ast.MapLoad) -> None:
        assignment = self._assignment(expression.var)
        if not assignment.is_mapping:
            raise CompileError(f"{expression.var} is not a mapping")
        self._compile_mapping_slot(expression.key, assignment)
        self.asm.emit(op.SLOAD)

    def _compile_mapping_slot(self, key: ast.Expr,
                              assignment: SlotAssignment) -> None:
        """Leave keccak256(pad32(key) ++ pad32(marker_slot)) on the stack."""
        self.compile_expression(key)
        self.asm.push(0).emit(op.MSTORE)
        self.asm.push(assignment.slot).push(32).emit(op.MSTORE)
        self.asm.push(64).push(0).emit(op.KECCAK256)

    def _compile_binop(self, expression: ast.BinOp) -> None:
        operator = expression.op
        if operator in ("and", "or"):
            self.compile_expression(expression.left)
            self.asm.emit(op.ISZERO).emit(op.ISZERO)
            self.compile_expression(expression.right)
            self.asm.emit(op.ISZERO).emit(op.ISZERO)
            self.asm.emit(op.AND if operator == "and" else op.OR)
            return
        if operator == "!=":
            self._compile_binop(ast.BinOp("==", expression.left, expression.right))
            self.asm.emit(op.ISZERO)
            return
        if operator == "<=":
            self._compile_binop(ast.BinOp(">", expression.left, expression.right))
            self.asm.emit(op.ISZERO)
            return
        if operator == ">=":
            self._compile_binop(ast.BinOp("<", expression.left, expression.right))
            self.asm.emit(op.ISZERO)
            return
        self.compile_expression(expression.left)
        self.compile_expression(expression.right)
        if operator in _COMMUTATIVE:
            self.asm.emit(_COMMUTATIVE[operator])
        elif operator in _NONCOMMUTATIVE:
            # EVM binops consume (top, next) as (a, b) computing a·b, so the
            # left operand must be on top for non-commutative operators.
            self.asm.emit(op.SWAP1).emit(_NONCOMMUTATIVE[operator])
        else:
            raise CompileError(f"unknown operator: {operator}")

    def _assignment(self, var_name: str) -> SlotAssignment:
        if var_name not in self.layout:
            raise CompileError(f"unknown storage variable: {var_name}")
        return self.layout.get(var_name)


def compile_runtime(contract: ast.Contract,
                    dispatcher_style: str = "solc") -> tuple[bytes, StorageLayout]:
    """Compile the runtime bytecode of ``contract``.

    ``dispatcher_style`` selects the selector-comparison idiom: ``"solc"``
    emits the Listing-3 chain (``DUP1 PUSH4 sig EQ PUSH2 dest JUMPI``);
    ``"vyper"`` emits the XOR/ISZERO shape some compilers use — both are
    recognized by the §5.1 extractors, and the corpus mixes them so the
    analyzers never overfit to one compiler.
    """
    if dispatcher_style not in ("solc", "vyper"):
        raise CompileError(f"unknown dispatcher style: {dispatcher_style!r}")
    layout = compute_layout(
        contract.storage_declarations(),
        [(v.name, v.type_name, v.slot) for v in contract.fixed_slot_vars],
    )
    assembler = Assembler()

    # Prologue: free-memory pointer, as every solc contract starts.
    assembler.push(0x80).push(0x40).emit(op.MSTORE)

    if contract.functions:
        # Calldata shorter than a selector goes straight to the fallback.
        # LT consumes (top, next) as (a, b) computing a < b, so push the
        # size last: CALLDATASIZE < 4.
        assembler.push(4).emit(op.CALLDATASIZE).emit(op.LT)
        assembler.jumpi("fallback")
        # Selector extraction: CALLDATALOAD(0) >> 0xe0.
        assembler.push(0).emit(op.CALLDATALOAD).push(0xE0).emit(op.SHR)
        for function in contract.functions:
            assembler.emit(op.DUP1)
            assembler.push_bytes(function.selector)
            if dispatcher_style == "solc":
                # Listing-3: DUP1 PUSH4 sig EQ PUSH2 dest JUMPI.
                assembler.emit(op.EQ)
            else:
                # Vyper-ish: DUP1 PUSH4 sig XOR ISZERO PUSH2 dest JUMPI.
                assembler.emit(op.XOR).emit(op.ISZERO)
            assembler.jumpi(f"fn_{function.name}")
        assembler.emit(op.POP)

    assembler.label("fallback")
    fallback_compiler = _FunctionCompiler(assembler, layout, "fb")
    if contract.fallback is not None:
        fallback_compiler.compile_body(contract.fallback.body)
        assembler.emit(op.STOP)
    else:
        assembler.push(0).push(0).emit(op.REVERT)

    for function in contract.functions:
        assembler.label(f"fn_{function.name}")
        assembler.emit(op.POP)  # drop the dispatcher's selector copy
        body_compiler = _FunctionCompiler(assembler, layout, f"f_{function.name}")
        body_compiler.compile_body(function.body)
        assembler.emit(op.STOP)

    code = assembler.assemble()

    # Metadata trailer behind INVALID: never executed, but present in real
    # bytecode and a source of PUSH4 lookalikes for naive scanners.
    metadata = keccak256(contract.name.encode() + contract.metadata_salt)[:8]
    return code + bytes([op.INVALID]) + metadata, layout


def compile_init_code(contract: ast.Contract, runtime_code: bytes,
                      layout: StorageLayout) -> bytes:
    """Build init code: run the constructor, then return the runtime."""
    assembler = Assembler()
    constructor_compiler = _FunctionCompiler(assembler, layout, "ctor")
    constructor_compiler.compile_body(contract.constructor)
    constructor_body = assembler.assemble()

    # Fixed-width copy stub so the runtime offset is deterministic:
    # PUSH2 len, PUSH2 offset, PUSH1 0, CODECOPY, PUSH2 len, PUSH1 0, RETURN.
    stub_size = 3 + 3 + 2 + 1 + 3 + 2 + 1
    runtime_offset = len(constructor_body) + stub_size
    stub = bytes([
        op.PUSH0 + 2, *len(runtime_code).to_bytes(2, "big"),
        op.PUSH0 + 2, *runtime_offset.to_bytes(2, "big"),
        op.PUSH0 + 1, 0,
        op.CODECOPY,
        op.PUSH0 + 2, *len(runtime_code).to_bytes(2, "big"),
        op.PUSH0 + 1, 0,
        op.RETURN,
    ])
    return constructor_body + stub + runtime_code


def compile_contract(contract: ast.Contract,
                     dispatcher_style: str = "solc") -> ast.CompiledContract:
    """Compile a contract to runtime + init code."""
    runtime_code, layout = compile_runtime(contract, dispatcher_style)
    init_code = compile_init_code(contract, runtime_code, layout)
    return ast.CompiledContract(
        contract=contract,
        runtime_code=runtime_code,
        init_code=init_code,
        layout=layout,
        selector_table={f.selector: f.prototype for f in contract.functions},
    )
