"""AST of the mini contract language.

The language is deliberately small — storage reads/writes (with Solidity
packing), mappings, require/if/return control flow, ether sends, and the
three delegatecall shapes that matter to the paper:

* ``DelegateForwardCalldata`` — the proxy fallback idiom: forward the raw
  received calldata and bubble the return data (§2.2),
* ``DelegateCallEncoded`` — the library-call idiom: delegatecall with
  re-ABI-encoded arguments at a non-fallback site (the pattern ProxioN
  must *exclude*, §2.2/§6.2), and
* ``CallEncoded`` — a plain external call.

Contracts compile to solc-idiomatic runtime bytecode via
:mod:`repro.lang.compiler` and print to Solidity-looking source via
:mod:`repro.lang.source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.abi import function_selector


# --------------------------------------------------------------- expressions
class Expr:
    """Marker base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: int


@dataclass(frozen=True, slots=True)
class Param(Expr):
    """The ``index``-th ABI-encoded static argument of the running function."""

    index: int
    type_name: str = "uint256"


@dataclass(frozen=True, slots=True)
class Load(Expr):
    """Read a storage variable (packed access compiled automatically)."""

    var: str


@dataclass(frozen=True, slots=True)
class MapLoad(Expr):
    """Read ``var[key]`` from a mapping variable."""

    var: str
    key: "Expr"


@dataclass(frozen=True, slots=True)
class Caller(Expr):
    """``msg.sender``."""


@dataclass(frozen=True, slots=True)
class CallValue(Expr):
    """``msg.value``."""


@dataclass(frozen=True, slots=True)
class SelfBalance(Expr):
    """``address(this).balance``."""


@dataclass(frozen=True, slots=True)
class SelfAddress(Expr):
    """``address(this)``."""


@dataclass(frozen=True, slots=True)
class BlockNumber(Expr):
    """``block.number``."""


@dataclass(frozen=True, slots=True)
class Timestamp(Expr):
    """``block.timestamp``."""


@dataclass(frozen=True, slots=True)
class Selector(Expr):
    """The 4-byte selector of the incoming calldata, as a low-aligned int."""


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """Binary operation; ``op`` one of ``+ - * / % == != < > <= >= & | ^ and or``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Not(Expr):
    expr: "Expr"


# ---------------------------------------------------------------- statements
class Stmt:
    """Marker base class for statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Store(Stmt):
    """Assign to a storage variable (read-modify-write when packed)."""

    var: str
    value: Expr


@dataclass(frozen=True, slots=True)
class StoreAt(Stmt):
    """Raw SSTORE at a *computed* slot (assembly-style storage pointer).

    Real contracts use this for unstructured storage and array tricks; the
    slot is opaque to static analyzers when the expression is symbolic —
    the honest false-negative class for bytecode storage analysis.
    """

    slot: Expr
    value: Expr


@dataclass(frozen=True, slots=True)
class MapStore(Stmt):
    """Assign ``var[key] = value`` in a mapping."""

    var: str
    key: Expr
    value: Expr


@dataclass(frozen=True, slots=True)
class Require(Stmt):
    """Revert unless the condition is non-zero."""

    condition: Expr


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    """Return a single 32-byte value, or nothing."""

    value: Expr | None = None


@dataclass(frozen=True, slots=True)
class RevertStmt(Stmt):
    """Unconditional revert with empty payload."""


@dataclass(frozen=True, slots=True)
class If(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()


@dataclass(frozen=True, slots=True)
class Repeat(Stmt):
    """``for (i = 0; i < count; i++) body`` — a real EVM loop.

    The loop counter lives in scratch memory (word 0x60) and is readable in
    the body via :class:`LoopIndex`.  Nested loops are not supported (one
    counter word).
    """

    count: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True, slots=True)
class LoopIndex(Expr):
    """The current :class:`Repeat` iteration counter."""


@dataclass(frozen=True, slots=True)
class Emit(Stmt):
    """Emit an Ethereum event: LOG1 with ``keccak256(signature)`` as the
    topic and the given expressions ABI-packed as data words."""

    signature: str                    # e.g. "Transfer(address,address,uint256)"
    data: tuple[Expr, ...] = ()


@dataclass(frozen=True, slots=True)
class SendEther(Stmt):
    """``payable(to).transfer(amount)`` (empty-calldata CALL)."""

    to: Expr
    amount: Expr


@dataclass(frozen=True, slots=True)
class DelegateForwardCalldata(Stmt):
    """The proxy-fallback idiom: delegatecall ``target`` with the raw
    incoming calldata, then return (or revert with) its output."""

    target: Expr


@dataclass(frozen=True, slots=True)
class CallForwardCalldata(Stmt):
    """Forward the raw incoming calldata with a plain CALL (not a proxy:
    the callee runs in its *own* storage context)."""

    target: Expr


@dataclass(frozen=True, slots=True)
class DelegateCallEncoded(Stmt):
    """Library-call idiom: delegatecall with freshly ABI-encoded arguments.

    The forwarded input is *not* the incoming calldata, which is exactly why
    ProxioN refuses to classify such contracts as proxies.
    """

    target: Expr
    prototype: str
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True, slots=True)
class CallEncoded(Stmt):
    """Plain external call with ABI-encoded arguments."""

    target: Expr
    prototype: str
    args: tuple[Expr, ...] = ()
    value: Expr = Const(0)


# ----------------------------------------------------------------- contracts
@dataclass(frozen=True, slots=True)
class VarDecl:
    """A storage (or constant) variable declaration."""

    name: str
    type_name: str
    constant: bool = False
    constant_value: int = 0


@dataclass(frozen=True, slots=True)
class FixedSlotVar:
    """A hash-derived fixed-slot variable (EIP-1967/1822 style)."""

    name: str
    type_name: str
    slot: int


@dataclass(frozen=True, slots=True)
class Function:
    """One externally callable function."""

    name: str
    params: tuple[tuple[str, str], ...] = ()  # (name, type_name)
    body: tuple[Stmt, ...] = ()
    returns: str | None = None

    @property
    def prototype(self) -> str:
        arg_types = ",".join(type_name for _, type_name in self.params)
        return f"{self.name}({arg_types})"

    @property
    def selector(self) -> bytes:
        return function_selector(self.prototype)


@dataclass(frozen=True, slots=True)
class Fallback:
    """The fallback function (runs when no selector matches)."""

    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True, slots=True)
class Contract:
    """A full contract definition."""

    name: str
    variables: tuple[VarDecl, ...] = ()
    fixed_slot_vars: tuple[FixedSlotVar, ...] = ()
    functions: tuple[Function, ...] = ()
    fallback: Fallback | None = None
    constructor: tuple[Stmt, ...] = ()
    metadata_salt: bytes = b""

    def storage_declarations(self) -> list[tuple[str, str]]:
        """Ordered (name, type) pairs of slot-consuming variables."""
        return [(v.name, v.type_name) for v in self.variables if not v.constant]

    def function_by_name(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"{self.name} has no function {name!r}")

    @property
    def prototypes(self) -> list[str]:
        return [function.prototype for function in self.functions]

    @property
    def selectors(self) -> list[bytes]:
        return [function.selector for function in self.functions]


@dataclass(slots=True)
class CompiledContract:
    """Compiler output: runtime + init code plus layout metadata."""

    contract: Contract
    runtime_code: bytes
    init_code: bytes
    layout: "object" = None  # StorageLayout; untyped to avoid import cycle
    selector_table: dict[bytes, str] = field(default_factory=dict)
