"""Elementary type system for the mini contract language.

Mirrors Solidity's value types and their storage footprints, which is what
the paper's storage-collision analysis reasons about: a ``bool`` is 1 byte,
an ``address`` 20 bytes, and contiguous declarations pack into 32-byte slots
(§2.3, Listing 2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

SLOT_BYTES = 32


@dataclass(frozen=True, slots=True)
class ValueType:
    """An elementary (single-slot-or-less) type."""

    name: str
    size: int          # bytes occupied in storage
    is_signed: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.size <= SLOT_BYTES:
            raise ValueError(f"invalid storage size {self.size} for {self.name}")

    @property
    def mask(self) -> int:
        return (1 << (self.size * 8)) - 1


@dataclass(frozen=True, slots=True)
class MappingType:
    """``mapping(key => value)``; occupies one marker slot, data lives at
    ``keccak256(pad32(key) ++ pad32(slot))`` exactly as in Solidity."""

    key_type: ValueType
    value_type: ValueType

    @property
    def name(self) -> str:
        return f"mapping({self.key_type.name}=>{self.value_type.name})"

    @property
    def size(self) -> int:
        return SLOT_BYTES  # the marker slot is never packed with neighbours


BOOL = ValueType("bool", 1)
ADDRESS = ValueType("address", 20)
UINT8 = ValueType("uint8", 1)
UINT16 = ValueType("uint16", 2)
UINT32 = ValueType("uint32", 4)
UINT64 = ValueType("uint64", 8)
UINT128 = ValueType("uint128", 16)
UINT256 = ValueType("uint256", 32)
INT256 = ValueType("int256", 32, is_signed=True)
BYTES4 = ValueType("bytes4", 4)
BYTES32 = ValueType("bytes32", 32)

_NAMED = {t.name: t for t in (
    BOOL, ADDRESS, UINT8, UINT16, UINT32, UINT64, UINT128, UINT256,
    INT256, BYTES4, BYTES32,
)}

_UINT_RE = re.compile(r"^uint(\d+)$")
_INT_RE = re.compile(r"^int(\d+)$")
_BYTES_RE = re.compile(r"^bytes(\d+)$")
_MAPPING_RE = re.compile(r"^mapping\((.+?)=>(.+)\)$")


def parse_type(name: str) -> ValueType | MappingType:
    """Parse a Solidity-style type name."""
    name = name.replace(" ", "")
    if name in _NAMED:
        return _NAMED[name]
    mapping_match = _MAPPING_RE.match(name)
    if mapping_match:
        key = parse_type(mapping_match.group(1))
        value = parse_type(mapping_match.group(2))
        if isinstance(key, MappingType) or isinstance(value, MappingType):
            raise ValueError("nested mappings are not supported")
        return MappingType(key, value)
    for pattern, signed in ((_UINT_RE, False), (_INT_RE, True)):
        match = pattern.match(name)
        if match:
            bits = int(match.group(1))
            if bits % 8 or not 8 <= bits <= 256:
                raise ValueError(f"invalid integer width: {name}")
            return ValueType(name, bits // 8, is_signed=signed)
    bytes_match = _BYTES_RE.match(name)
    if bytes_match:
        width = int(bytes_match.group(1))
        if not 1 <= width <= 32:
            raise ValueError(f"invalid bytes width: {name}")
        return ValueType(name, width)
    raise ValueError(f"unknown type: {name}")


def types_compatible(left: str, right: str) -> bool:
    """Loose same-interpretation check used by collision analyses.

    Two slot occupants "agree" when they have the same byte width and
    signedness class; ``address`` vs ``bytes20`` or ``uint160`` is the
    classic same-width-different-interpretation boundary the paper treats
    as a mismatch, so equality of the type *name* is required except for
    integer aliases.
    """
    return parse_type(left) == parse_type(right) and left == right
