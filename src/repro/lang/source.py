"""Render contract ASTs as Solidity-looking source text.

The rendered text is what the :class:`~repro.chain.explorer.SourceRegistry`
stores for "verified" contracts.  Source-based analyses (the USCHunt and
Slither-like baselines, ProxioN's source path) consume the *parsed*
:class:`~repro.chain.explorer.ContractSource`; the text form exists so that
keyword-heuristic baselines (Slither's "delegatecall"/"proxy" search, §9.1)
have something realistic to grep.
"""

from __future__ import annotations

from repro.chain.explorer import ContractSource, StorageVariableDecl
from repro.lang import ast


def _render_expression(expression: ast.Expr) -> str:
    if isinstance(expression, ast.Const):
        return str(expression.value)
    if isinstance(expression, ast.Param):
        return f"arg{expression.index}"
    if isinstance(expression, ast.Load):
        return expression.var
    if isinstance(expression, ast.MapLoad):
        return f"{expression.var}[{_render_expression(expression.key)}]"
    if isinstance(expression, ast.Caller):
        return "msg.sender"
    if isinstance(expression, ast.CallValue):
        return "msg.value"
    if isinstance(expression, ast.SelfBalance):
        return "address(this).balance"
    if isinstance(expression, ast.SelfAddress):
        return "address(this)"
    if isinstance(expression, ast.LoopIndex):
        return "i"
    if isinstance(expression, ast.BlockNumber):
        return "block.number"
    if isinstance(expression, ast.Timestamp):
        return "block.timestamp"
    if isinstance(expression, ast.Selector):
        return "msg.sig"
    if isinstance(expression, ast.BinOp):
        operator = {"and": "&&", "or": "||"}.get(expression.op, expression.op)
        return (f"({_render_expression(expression.left)} {operator} "
                f"{_render_expression(expression.right)})")
    if isinstance(expression, ast.Not):
        return f"!{_render_expression(expression.expr)}"
    return "/*?*/"


def _render_statement(statement: ast.Stmt, indent: str) -> list[str]:
    if isinstance(statement, ast.Store):
        return [f"{indent}{statement.var} = {_render_expression(statement.value)};"]
    if isinstance(statement, ast.StoreAt):
        return [f"{indent}assembly {{ sstore({_render_expression(statement.slot)}, "
                f"{_render_expression(statement.value)}) }}"]
    if isinstance(statement, ast.MapStore):
        return [f"{indent}{statement.var}[{_render_expression(statement.key)}] = "
                f"{_render_expression(statement.value)};"]
    if isinstance(statement, ast.Require):
        return [f"{indent}require({_render_expression(statement.condition)});"]
    if isinstance(statement, ast.Return):
        if statement.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {_render_expression(statement.value)};"]
    if isinstance(statement, ast.RevertStmt):
        return [f"{indent}revert();"]
    if isinstance(statement, ast.If):
        lines = [f"{indent}if ({_render_expression(statement.condition)}) {{"]
        for inner in statement.then_body:
            lines.extend(_render_statement(inner, indent + "    "))
        if statement.else_body:
            lines.append(f"{indent}}} else {{")
            for inner in statement.else_body:
                lines.extend(_render_statement(inner, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(statement, ast.Repeat):
        lines = [f"{indent}for (uint256 i = 0; i < "
                 f"{_render_expression(statement.count)}; i++) {{"]
        for inner in statement.body:
            lines.extend(_render_statement(inner, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(statement, ast.Emit):
        args = ", ".join(_render_expression(a) for a in statement.data)
        event_name = statement.signature.split("(")[0]
        return [f"{indent}emit {event_name}({args});"]
    if isinstance(statement, ast.SendEther):
        return [f"{indent}payable({_render_expression(statement.to)})"
                f".transfer({_render_expression(statement.amount)});"]
    if isinstance(statement, ast.DelegateForwardCalldata):
        return [
            f"{indent}(bool success, bytes memory output) = "
            f"{_render_expression(statement.target)}.delegatecall(msg.data);",
            f"{indent}require(success);",
            f"{indent}return output;",
        ]
    if isinstance(statement, ast.DelegateCallEncoded):
        args = ", ".join(_render_expression(a) for a in statement.args)
        return [f"{indent}{_render_expression(statement.target)}.delegatecall("
                f"abi.encodeWithSignature(\"{statement.prototype}\"{', ' if args else ''}{args}));"]
    if isinstance(statement, ast.CallEncoded):
        args = ", ".join(_render_expression(a) for a in statement.args)
        return [f"{indent}{_render_expression(statement.target)}.call("
                f"abi.encodeWithSignature(\"{statement.prototype}\"{', ' if args else ''}{args}));"]
    return [f"{indent}// <unrenderable>"]


def render_source(contract: ast.Contract) -> str:
    """Pretty-print a contract as Solidity-looking text."""
    lines = ["// SPDX-License-Identifier: MIT",
             "pragma solidity ^0.8.21;",
             "",
             f"contract {contract.name} {{"]
    for variable in contract.variables:
        qualifier = "constant " if variable.constant else "private "
        suffix = f" = {variable.constant_value}" if variable.constant else ""
        lines.append(f"    {variable.type_name} {qualifier}{variable.name}{suffix};")
    for fixed in contract.fixed_slot_vars:
        lines.append(f"    // {fixed.name}: {fixed.type_name} at fixed slot "
                     f"0x{fixed.slot:064x}")
    if contract.constructor:
        lines.append("")
        lines.append("    constructor() {")
        for statement in contract.constructor:
            lines.extend(_render_statement(statement, "        "))
        lines.append("    }")
    for function in contract.functions:
        lines.append("")
        params = ", ".join(f"{type_name} arg{index}"
                           for index, (_, type_name) in enumerate(function.params))
        returns = f" returns ({function.returns})" if function.returns else ""
        lines.append(f"    function {function.name}({params}) public payable{returns} {{")
        for statement in function.body:
            lines.extend(_render_statement(statement, "        "))
        lines.append("    }")
    if contract.fallback is not None:
        lines.append("")
        lines.append("    fallback(bytes calldata input) external payable "
                     "returns (bytes memory) {")
        for statement in contract.fallback.body:
            lines.extend(_render_statement(statement, "        "))
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def contract_source_of(contract: ast.Contract) -> ContractSource:
    """Build the parsed-source record the explorer registry stores."""
    storage_variables = tuple(
        StorageVariableDecl(v.name, v.type_name, is_constant=v.constant)
        for v in contract.variables
    )
    return ContractSource(
        contract_name=contract.name,
        function_prototypes=tuple(contract.prototypes),
        storage_variables=storage_variables,
        text=render_source(contract),
    )
