"""Solidity storage-slot assignment (the packing rules of §2.3).

Variables are assigned to consecutive 32-byte slots in declaration order;
consecutive variables whose sizes sum to at most 32 bytes share a slot
(packed from the least-significant byte upward).  Mappings take a whole
marker slot.  Constants take no slot at all.  Proxy standards additionally
use *fixed* slots derived from Keccak-256 hashes (EIP-1967/1822), which are
modelled as out-of-band layout entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.types import SLOT_BYTES, MappingType, ValueType, parse_type
from repro.utils.keccak import keccak256

# The well-known fixed slots of the proxy EIPs.
EIP1967_IMPLEMENTATION_SLOT = (
    int.from_bytes(keccak256(b"eip1967.proxy.implementation"), "big") - 1
)
EIP1967_ADMIN_SLOT = int.from_bytes(keccak256(b"eip1967.proxy.admin"), "big") - 1
EIP1822_PROXIABLE_SLOT = int.from_bytes(keccak256(b"PROXIABLE"), "big")
DIAMOND_STORAGE_SLOT = int.from_bytes(
    keccak256(b"diamond.standard.diamond.storage"), "big"
)


@dataclass(frozen=True, slots=True)
class SlotAssignment:
    """Where one variable lives: slot number, byte offset, byte width."""

    name: str
    type_name: str
    slot: int
    offset: int      # byte offset from the least-significant end of the slot
    size: int        # bytes occupied
    is_mapping: bool = False
    is_fixed_slot: bool = False  # EIP-1967/1822 style hash-derived slot

    @property
    def bit_shift(self) -> int:
        return self.offset * 8

    @property
    def mask(self) -> int:
        return (1 << (self.size * 8)) - 1

    def overlaps(self, other: "SlotAssignment") -> bool:
        """Byte-range overlap test within a shared slot."""
        if self.slot != other.slot:
            return False
        return (self.offset < other.offset + other.size
                and other.offset < self.offset + self.size)


class StorageLayout:
    """The computed layout of one contract."""

    def __init__(self, assignments: list[SlotAssignment]) -> None:
        self.assignments = assignments
        self._by_name = {a.name: a for a in assignments}
        self.next_free_slot = 1 + max(
            (a.slot for a in assignments if not a.is_fixed_slot), default=-1)

    def get(self, name: str) -> SlotAssignment:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def slots_used(self) -> set[int]:
        return {a.slot for a in self.assignments}


def compute_layout(
    declarations: list[tuple[str, str]],
    fixed_slots: list[tuple[str, str, int]] | None = None,
) -> StorageLayout:
    """Assign slots to ``(name, type_name)`` declarations in order.

    ``fixed_slots`` entries are ``(name, type_name, slot_number)`` for the
    hash-derived EIP slots; they never pack.
    """
    assignments: list[SlotAssignment] = []
    slot = 0
    offset = 0

    for name, type_name in declarations:
        parsed = parse_type(type_name)
        if isinstance(parsed, MappingType):
            if offset:
                slot += 1
                offset = 0
            assignments.append(SlotAssignment(
                name, parsed.name, slot, 0, SLOT_BYTES, is_mapping=True))
            slot += 1
            continue
        assert isinstance(parsed, ValueType)
        if offset + parsed.size > SLOT_BYTES:
            slot += 1
            offset = 0
        assignments.append(SlotAssignment(name, parsed.name, slot,
                                          offset, parsed.size))
        offset += parsed.size
        if offset == SLOT_BYTES:
            slot += 1
            offset = 0

    for name, type_name, fixed_slot in (fixed_slots or []):
        parsed = parse_type(type_name)
        size = parsed.size if isinstance(parsed, ValueType) else SLOT_BYTES
        assignments.append(SlotAssignment(
            name, type_name, fixed_slot, 0, size, is_fixed_slot=True))

    return StorageLayout(assignments)


def mapping_element_slot(key: int, marker_slot: int) -> int:
    """Solidity mapping addressing: keccak256(pad32(key) ++ pad32(slot))."""
    preimage = key.to_bytes(32, "big") + marker_slot.to_bytes(32, "big")
    return int.from_bytes(keccak256(preimage), "big")
