"""Deterministic merging of per-shard :class:`LandscapeReport` objects.

The sharded sweep engine (:mod:`repro.parallel`) analyzes disjoint address
partitions in separate workers and folds the partial reports back into one.
The merge is *deterministic*: given ``order`` (the original sweep's full
address list), analyses and failures are re-emitted in exactly the order
the serial sweep would have produced, so the merged report serializes
byte-identically to ``Proxion.analyze_all`` over the same addresses (see
``docs/parallelism.md`` for the dedup-counter caveat per shard strategy).

Shards must be disjoint: an address appearing in more than one partial
report (whether analyzed or quarantined) is a partitioning bug, and the
merge refuses it loudly instead of silently letting one shard's verdict
shadow another's.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.report import ContractAnalysis, ContractFailure, LandscapeReport
from repro.errors import ConfigurationError

#: The per-cache counter fields a merge sums, in declaration order.
_COUNTER_FIELDS = (
    "proxy_check_cache_hits",
    "proxy_check_cache_misses",
    "function_cache_hits",
    "function_cache_misses",
    "storage_cache_hits",
    "storage_cache_misses",
    "collision_cache_hits",
)


def merge_reports(reports: Iterable[LandscapeReport],
                  order: Sequence[bytes] | None = None) -> LandscapeReport:
    """Fold disjoint partial reports into one :class:`LandscapeReport`.

    ``order`` — normally the sweep's full address list — fixes the
    iteration order of the merged ``analyses``/``failures`` mappings;
    addresses absent from every partial report (dead contracts) are
    skipped.  Without ``order``, partial reports concatenate in the given
    sequence.  Dedup hit/miss counters are summed across shards.

    Raises :class:`~repro.errors.ConfigurationError` when two partial
    reports claim the same address.
    """
    reports = list(reports)
    analyses: dict[bytes, ContractAnalysis] = {}
    failures: dict[bytes, ContractFailure] = {}
    counters = dict.fromkeys(_COUNTER_FIELDS, 0)

    for index, report in enumerate(reports):
        for address in report.analyses.keys() | report.failures.keys():
            if address in analyses or address in failures:
                raise ConfigurationError(
                    f"overlapping shards: address 0x{address.hex()} appears "
                    f"in more than one partial report (second occurrence in "
                    f"report #{index}) — shard partitions must be disjoint")
        analyses.update(report.analyses)
        failures.update(report.failures)
        for field in _COUNTER_FIELDS:
            counters[field] += getattr(report, field)

    merged = LandscapeReport()
    if order is not None:
        known = analyses.keys() | failures.keys()
        missing = known - set(order)
        if missing:
            sample = next(iter(missing))
            raise ConfigurationError(
                f"merge order is missing {len(missing)} analyzed "
                f"address(es), e.g. 0x{sample.hex()} — pass the sweep's "
                f"full address list")
        for address in order:
            if address in analyses:
                merged.add(analyses[address])
            elif address in failures:
                merged.add_failure(failures[address])
    else:
        for analysis in analyses.values():
            merged.add(analysis)
        for failure in failures.values():
            merged.add_failure(failure)
    for field, value in counters.items():
        setattr(merged, field, value)
    return merged


__all__ = ["merge_reports"]
