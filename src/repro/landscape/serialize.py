"""JSON serialization of analysis results.

Turns :class:`~repro.core.report.LandscapeReport` (and single
:class:`~repro.core.report.ContractAnalysis` records) into plain
JSON-compatible dictionaries, for the CLI's ``--json`` output and for
downstream tooling that wants to consume sweeps without importing the
library.  Addresses render as ``0x``-hex; enums as their values.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.report import ContractAnalysis, LandscapeReport
from repro.core.symexec import SlotKey


def _hex(data: bytes | None) -> str | None:
    return None if data is None else "0x" + data.hex()


def _slot(slot: SlotKey) -> dict[str, Any]:
    return {"kind": slot.kind, "base": slot.base}


def analysis_to_dict(analysis: ContractAnalysis) -> dict[str, Any]:
    """One contract's full analysis as a JSON-compatible dict."""
    record: dict[str, Any] = {
        "address": _hex(analysis.address),
        "code_hash": _hex(analysis.code_hash),
        "has_source": analysis.has_source,
        "has_transactions": analysis.has_transactions,
        "hidden": analysis.is_hidden,
        "deploy_block": analysis.deploy_block,
        "deploy_year": analysis.deploy_year,
        "is_proxy": analysis.is_proxy,
        "standard": analysis.standard.value if analysis.standard else None,
        "emulation_failed": analysis.emulation_failed,
    }
    if analysis.check is not None:
        record["check"] = {
            "reason": analysis.check.reason.value if analysis.check.reason else None,
            "logic_address": _hex(analysis.check.logic_address),
            "logic_location": analysis.check.logic_location.value,
            "logic_slot": (hex(analysis.check.logic_slot)
                           if analysis.check.logic_slot is not None else None),
        }
    if analysis.logic_history is not None:
        record["logic_history"] = {
            "addresses": [_hex(a) for a in
                          analysis.logic_history.logic_addresses],
            "upgrade_count": analysis.logic_history.upgrade_count,
            "api_calls_used": analysis.logic_history.api_calls_used,
        }
    record["function_collisions"] = [
        {
            "logic": _hex(report.logic),
            "proxy_mode": report.proxy_mode,
            "logic_mode": report.logic_mode,
            "selectors": [_hex(c.selector) for c in report.collisions],
        }
        for report in analysis.function_reports if report.has_collision
    ]
    record["storage_collisions"] = [
        {
            "logic": _hex(report.logic),
            "collisions": [
                {
                    "slot": _slot(c.slot),
                    "proxy_range": [c.proxy_use.offset, c.proxy_use.end],
                    "logic_range": [c.logic_use.offset, c.logic_use.end],
                    "kind": c.kind,
                    "sensitive": c.sensitive,
                    "exploitable": c.exploitable,
                    "verified": c.verified,
                    "exploit_selector": _hex(c.exploit_selector),
                }
                for c in report.collisions
            ],
        }
        for report in analysis.storage_reports if report.has_collision
    ]
    return record


def report_to_dict(report: LandscapeReport) -> dict[str, Any]:
    """A whole sweep as a JSON-compatible dict with summary counters."""
    return {
        "summary": {
            "contracts": len(report),
            "proxies": len(report.proxies()),
            "hidden_proxies": len(report.hidden_proxies()),
            "function_collision_pairs": report.function_collision_pairs(),
            "storage_collision_pairs": report.storage_collision_pairs(),
            "emulation_failure_rate": report.emulation_failure_rate(),
            "standards": {standard.value: count for standard, count
                          in report.standards_census().items()},
            "dedup": {
                "proxy_check": {"hits": report.proxy_check_cache_hits,
                                "misses": report.proxy_check_cache_misses},
                "function_collision": {"hits": report.function_cache_hits,
                                       "misses": report.function_cache_misses},
                "storage_collision": {"hits": report.storage_cache_hits,
                                      "misses": report.storage_cache_misses},
                "hit_rates": report.dedup_hit_rates(),
            },
        },
        "contracts": [analysis_to_dict(analysis)
                      for analysis in report.analyses.values()],
    }


def report_to_json(report: LandscapeReport, indent: int | None = 2) -> str:
    """Serialize a sweep to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)
