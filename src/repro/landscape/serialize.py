"""JSON serialization of analysis results.

Turns :class:`~repro.core.report.LandscapeReport` (and single
:class:`~repro.core.report.ContractAnalysis` records) into plain
JSON-compatible dictionaries, for the CLI's ``--json`` output and for
downstream tooling that wants to consume sweeps without importing the
library.  Addresses render as ``0x``-hex; enums as their values.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.report import ContractAnalysis, ContractFailure, LandscapeReport
from repro.core.symexec import SlotKey


def _hex(data: bytes | None) -> str | None:
    return None if data is None else "0x" + data.hex()


def _unhex(rendered: str | None) -> bytes | None:
    return None if rendered is None else bytes.fromhex(
        rendered.removeprefix("0x"))


def _slot(slot: SlotKey) -> dict[str, Any]:
    return {"kind": slot.kind, "base": slot.base}


def analysis_to_dict(analysis: ContractAnalysis) -> dict[str, Any]:
    """One contract's full analysis as a JSON-compatible dict."""
    record: dict[str, Any] = {
        "address": _hex(analysis.address),
        "code_hash": _hex(analysis.code_hash),
        "has_source": analysis.has_source,
        "has_transactions": analysis.has_transactions,
        "hidden": analysis.is_hidden,
        "deploy_block": analysis.deploy_block,
        "deploy_year": analysis.deploy_year,
        "is_proxy": analysis.is_proxy,
        "standard": analysis.standard.value if analysis.standard else None,
        "emulation_failed": analysis.emulation_failed,
    }
    if analysis.check is not None:
        record["check"] = {
            "reason": analysis.check.reason.value if analysis.check.reason else None,
            "logic_address": _hex(analysis.check.logic_address),
            "logic_location": analysis.check.logic_location.value,
            "logic_slot": (hex(analysis.check.logic_slot)
                           if analysis.check.logic_slot is not None else None),
        }
    if analysis.logic_history is not None:
        # Deliberately NOT serialized: ``api_calls_used``.  The probe count
        # of Algorithm 1's binary search depends on the chain height at
        # analysis time, while the durable record must be a pure function
        # of chain state — otherwise a follower that lived through a reorg
        # and a fresh sweep of the final canonical chain would disagree
        # byte-for-byte about identical contracts.  The cost telemetry
        # still lands in ``logic_recovery.getstorageat_calls`` and the
        # audit trail.
        record["logic_history"] = {
            "addresses": [_hex(a) for a in
                          analysis.logic_history.logic_addresses],
            "slot": (hex(analysis.logic_history.slot)
                     if analysis.logic_history.slot is not None else None),
            "upgrade_count": analysis.logic_history.upgrade_count,
        }
    record["function_collisions"] = [
        {
            "logic": _hex(report.logic),
            "proxy_mode": report.proxy_mode,
            "logic_mode": report.logic_mode,
            "selectors": [_hex(c.selector) for c in report.collisions],
        }
        for report in analysis.function_reports if report.has_collision
    ]
    record["storage_collisions"] = [
        {
            "logic": _hex(report.logic),
            "collisions": [
                {
                    "slot": _slot(c.slot),
                    "proxy_range": [c.proxy_use.offset, c.proxy_use.end],
                    "logic_range": [c.logic_use.offset, c.logic_use.end],
                    "kind": c.kind,
                    "sensitive": c.sensitive,
                    "exploitable": c.exploitable,
                    "verified": c.verified,
                    "exploit_selector": _hex(c.exploit_selector),
                }
                for c in report.collisions
            ],
        }
        for report in analysis.storage_reports if report.has_collision
    ]
    if analysis.evidence_digest is not None:
        # Audited sweeps only: the compact repro.evidence/1 digest rides
        # with the analysis so checkpoints and merged parallel sweeps keep
        # provenance.  Absent on the default path, which keeps un-audited
        # output byte-identical to previous releases.
        record["evidence"] = analysis.evidence_digest
    return record


def failure_to_dict(failure: ContractFailure) -> dict[str, Any]:
    """One quarantined contract failure as a JSON-compatible dict."""
    return {
        "address": _hex(failure.address),
        "cause": failure.cause,
        "stage": failure.stage,
        "error": failure.error,
    }


def dict_to_failure(record: dict[str, Any]) -> ContractFailure:
    """Inverse of :func:`failure_to_dict` (checkpoint resume)."""
    return ContractFailure(
        address=_unhex(record["address"]),
        cause=record["cause"],
        stage=record.get("stage", "analysis"),
        error=record.get("error", ""),
    )


def report_to_dict(report: LandscapeReport) -> dict[str, Any]:
    """A whole sweep as a JSON-compatible dict with summary counters."""
    return {
        "summary": {
            "contracts": len(report),
            "proxies": len(report.proxies()),
            "hidden_proxies": len(report.hidden_proxies()),
            "function_collision_pairs": report.function_collision_pairs(),
            "storage_collision_pairs": report.storage_collision_pairs(),
            "emulation_failure_rate": report.emulation_failure_rate(),
            "quarantined": {
                "contracts": len(report.failures),
                "by_cause": report.quarantine_census(),
            },
            "standards": {standard.value: count for standard, count
                          in report.standards_census().items()},
            "dedup": {
                "proxy_check": {"hits": report.proxy_check_cache_hits,
                                "misses": report.proxy_check_cache_misses},
                "function_collision": {"hits": report.function_cache_hits,
                                       "misses": report.function_cache_misses},
                "storage_collision": {"hits": report.storage_cache_hits,
                                      "misses": report.storage_cache_misses},
                "hit_rates": report.dedup_hit_rates(),
            },
        },
        "contracts": [analysis_to_dict(analysis)
                      for analysis in report.analyses.values()],
        "failures": [failure_to_dict(failure)
                     for failure in report.failures.values()],
    }


def report_to_json(report: LandscapeReport, indent: int | None = 2) -> str:
    """Serialize a sweep to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent)


# -------------------------------------------------------- deserialization
def dict_to_analysis(record: dict[str, Any]) -> ContractAnalysis:
    """Rebuild a :class:`ContractAnalysis` from its serialized form.

    The inverse of :func:`analysis_to_dict` up to the fields that survive
    serialization — ephemeral inputs (probe calldata, emulation error
    text, collision prototypes, non-colliding reports) are not serialized,
    so the round-trip guarantee is ``analysis_to_dict(dict_to_analysis(d))
    == d``, which is exactly what checkpoint/resume needs: a resumed sweep
    serializes identically to the uninterrupted one.
    """
    from repro.core.function_collision import (
        FunctionCollision,
        FunctionCollisionReport,
    )
    from repro.core.logic_finder import LogicHistory
    from repro.core.proxy_detector import (
        LogicLocation,
        NotProxyReason,
        ProxyCheck,
    )
    from repro.core.standards import ProxyStandard
    from repro.core.storage_collision import (
        RangeUse,
        StorageCollision,
        StorageCollisionReport,
    )

    address = _unhex(record["address"])
    assert address is not None
    analysis = ContractAnalysis(
        address=address,
        code_hash=_unhex(record["code_hash"]) or b"",
        has_source=record.get("has_source", False),
        has_transactions=record.get("has_transactions", False),
        deploy_block=record.get("deploy_block"),
        deploy_year=record.get("deploy_year"),
    )
    check_record = record.get("check")
    if check_record is not None:
        reason = check_record.get("reason")
        slot = check_record.get("logic_slot")
        analysis.check = ProxyCheck(
            address=address,
            is_proxy=record.get("is_proxy", False),
            reason=NotProxyReason(reason) if reason else None,
            logic_address=_unhex(check_record.get("logic_address")),
            logic_location=LogicLocation(check_record["logic_location"]),
            logic_slot=int(slot, 16) if slot is not None else None,
        )
    if record.get("standard"):
        analysis.standard = ProxyStandard(record["standard"])
    history_record = record.get("logic_history")
    if history_record is not None:
        slot = history_record.get("slot")
        # ``change_points`` only survives as its length (upgrade_count is
        # derived from it); synthesize placeholders to preserve the count.
        upgrades = history_record.get("upgrade_count", 0)
        analysis.logic_history = LogicHistory(
            proxy=address,
            slot=int(slot, 16) if slot is not None else None,
            logic_addresses=[a for a in
                             (_unhex(r) for r in
                              history_record.get("addresses", []))
                             if a is not None],
            change_points=[(0, 0)] * (upgrades + 1) if upgrades else (
                [(0, 0)] if history_record.get("addresses") else []),
            api_calls_used=history_record.get("api_calls_used", 0),
        )
    for row in record.get("function_collisions", []):
        analysis.function_reports.append(FunctionCollisionReport(
            proxy=address,
            logic=_unhex(row.get("logic")),
            collisions=[FunctionCollision(selector=_unhex(s) or b"")
                        for s in row.get("selectors", [])],
            proxy_mode=row.get("proxy_mode", "bytecode"),
            logic_mode=row.get("logic_mode", "bytecode"),
        ))
    for row in record.get("storage_collisions", []):
        collisions = []
        for entry in row.get("collisions", []):
            proxy_start, proxy_end = entry["proxy_range"]
            logic_start, logic_end = entry["logic_range"]
            collisions.append(StorageCollision(
                slot=SlotKey(kind=entry["slot"]["kind"],
                             base=entry["slot"]["base"]),
                proxy_use=RangeUse(offset=proxy_start,
                                   size=proxy_end - proxy_start),
                logic_use=RangeUse(offset=logic_start,
                                   size=logic_end - logic_start),
                kind=entry["kind"],
                sensitive=entry.get("sensitive", False),
                exploitable=entry.get("exploitable", False),
                verified=entry.get("verified", False),
                exploit_selector=_unhex(entry.get("exploit_selector")),
            ))
        analysis.storage_reports.append(StorageCollisionReport(
            proxy=address,
            logic=_unhex(row.get("logic")),
            collisions=collisions,
        ))
    analysis.evidence_digest = record.get("evidence")
    return analysis
