"""Table 2 scoring: collision-detection accuracy against ground truth.

Runs ProxioN, USCHunt and CRUSH over the labelled pair corpus
(:mod:`repro.corpus.ground_truth`) through each tool's *own* pipeline —
USCHunt's compile-then-recognize path, CRUSH's transaction-history mining,
ProxioN's emulation-gated detection — and scores verdicts into confusion
matrices.

Two methodologies are supported:

* ``"all"`` — score every labelled pair (the full synthetic ground truth);
* ``"union"`` — the paper's §6.3 methodology: only pairs *flagged by at
  least one tool* are manually inspected and scored, so the universe is
  the union of detections (plus nothing else — positives no tool finds
  are invisible to the paper's protocol, exactly as on mainnet).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.crush import Crush
from repro.baselines.uschunt import USCHunt
from repro.corpus.ground_truth import AccuracyCorpus, LabelledPair
from repro.core.function_collision import FunctionCollisionDetector
from repro.core.proxy_detector import ProxyDetector
from repro.core.storage_collision import StorageCollisionDetector
from repro.errors import ConfigurationError

PairKey = tuple[bytes, bytes]


@dataclass(slots=True)
class ConfusionMatrix:
    """TP/FP/TN/FN with the derived accuracy, as Table 2 reports."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def record(self, predicted: bool, actual: bool) -> None:
        if predicted and actual:
            self.tp += 1
        elif predicted and not actual:
            self.fp += 1
        elif not predicted and actual:
            self.fn += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def row(self) -> str:
        return (f"TP={self.tp:<4d} FP={self.fp:<4d} TN={self.tn:<4d} "
                f"FN={self.fn:<4d} accuracy={self.accuracy:.1%}")


# ------------------------------------------------------- per-tool verdicts
def proxion_storage_verdicts(corpus: AccuracyCorpus) -> dict[PairKey, bool]:
    """ProxioN's full storage pipeline: proxy identification gates the
    collision check, so library pairs and emulation failures drop out."""
    detector = StorageCollisionDetector(
        corpus.registry, corpus.chain.state, corpus.chain.block_context())
    proxy_detector = ProxyDetector(corpus.chain.state,
                                   corpus.chain.block_context())
    verdicts: dict[PairKey, bool] = {}
    for pair in corpus.pairs:
        if not proxy_detector.check(pair.proxy).is_proxy:
            verdicts[(pair.proxy, pair.logic)] = False
            continue
        report = detector.detect(
            corpus.node.get_code(pair.proxy), corpus.node.get_code(pair.logic),
            pair.proxy, pair.logic, verify_exploits=False)
        verdicts[(pair.proxy, pair.logic)] = report.has_collision
    return verdicts


def proxion_function_verdicts(corpus: AccuracyCorpus) -> dict[PairKey, bool]:
    """ProxioN's function pipeline, gated on proxy identification (an
    emulation failure forfeits the pair — §6.3's three FNs)."""
    detector = FunctionCollisionDetector(corpus.registry)
    proxy_detector = ProxyDetector(corpus.chain.state,
                                   corpus.chain.block_context())
    verdicts: dict[PairKey, bool] = {}
    for pair in corpus.pairs:
        if not proxy_detector.check(pair.proxy).is_proxy:
            verdicts[(pair.proxy, pair.logic)] = False
            continue
        report = detector.detect(
            corpus.node.get_code(pair.proxy), corpus.node.get_code(pair.logic),
            pair.proxy, pair.logic)
        verdicts[(pair.proxy, pair.logic)] = report.has_collision
    return verdicts


def uschunt_storage_verdicts(corpus: AccuracyCorpus) -> dict[PairKey, bool]:
    tool = USCHunt(corpus.node, corpus.registry)
    return {
        (pair.proxy, pair.logic):
            bool(tool.storage_collisions(pair.proxy, pair.logic))
        for pair in corpus.pairs
    }


def uschunt_function_verdicts(corpus: AccuracyCorpus) -> dict[PairKey, bool]:
    tool = USCHunt(corpus.node, corpus.registry)
    return {
        (pair.proxy, pair.logic):
            bool(tool.function_collisions(pair.proxy, pair.logic))
        for pair in corpus.pairs
    }


def crush_storage_verdicts(corpus: AccuracyCorpus) -> dict[PairKey, bool]:
    """CRUSH's own pipeline: pairs are mined from transaction history
    (library delegatecalls included — its FP source), then storage-checked."""
    tool = Crush(corpus.node)
    mined = tool.mine_pairs([pair.proxy for pair in corpus.pairs])
    verdicts: dict[PairKey, bool] = {}
    for pair in corpus.pairs:
        key = (pair.proxy, pair.logic)
        if key not in mined.pairs:
            verdicts[key] = False
            continue
        report = tool.storage_collisions(pair.proxy, pair.logic)
        verdicts[key] = report.has_collision
    return verdicts


# --------------------------------------------------------------- assembly
def _score(pairs: list[LabelledPair], verdicts: dict[PairKey, bool],
           actual_of, universe: set[PairKey] | None) -> ConfusionMatrix:
    matrix = ConfusionMatrix()
    for pair in pairs:
        key = (pair.proxy, pair.logic)
        if universe is not None and key not in universe:
            continue
        matrix.record(verdicts.get(key, False), actual_of(pair))
    return matrix


def table2(corpus: AccuracyCorpus,
           methodology: str = "all") -> dict[str, dict[str, ConfusionMatrix]]:
    """The full Table 2: tool × collision-type confusion matrices."""
    if methodology not in ("all", "union"):
        raise ConfigurationError(f"unknown methodology: {methodology}")

    storage_verdicts = {
        "USCHunt": uschunt_storage_verdicts(corpus),
        "CRUSH": crush_storage_verdicts(corpus),
        "Proxion": proxion_storage_verdicts(corpus),
    }
    function_verdicts = {
        "USCHunt": uschunt_function_verdicts(corpus),
        "Proxion": proxion_function_verdicts(corpus),
    }

    storage_universe = function_universe = None
    if methodology == "union":
        storage_universe = {
            key for verdicts in storage_verdicts.values()
            for key, flagged in verdicts.items() if flagged}
        function_universe = {
            key for verdicts in function_verdicts.values()
            for key, flagged in verdicts.items() if flagged}

    return {
        "storage": {
            tool: _score(corpus.pairs, verdicts,
                         lambda pair: pair.storage_collision,
                         storage_universe)
            for tool, verdicts in storage_verdicts.items()
        },
        "function": {
            tool: _score(corpus.pairs, verdicts,
                         lambda pair: pair.function_collision,
                         function_universe)
            for tool, verdicts in function_verdicts.items()
        },
    }


# Backwards-compatible single-matrix entry points.
def score_proxion_storage(corpus: AccuracyCorpus) -> ConfusionMatrix:
    return _score(corpus.pairs, proxion_storage_verdicts(corpus),
                  lambda pair: pair.storage_collision, None)


def score_proxion_function(corpus: AccuracyCorpus) -> ConfusionMatrix:
    return _score(corpus.pairs, proxion_function_verdicts(corpus),
                  lambda pair: pair.function_collision, None)


def score_uschunt_storage(corpus: AccuracyCorpus) -> ConfusionMatrix:
    return _score(corpus.pairs, uschunt_storage_verdicts(corpus),
                  lambda pair: pair.storage_collision, None)


def score_uschunt_function(corpus: AccuracyCorpus) -> ConfusionMatrix:
    return _score(corpus.pairs, uschunt_function_verdicts(corpus),
                  lambda pair: pair.function_collision, None)


def score_crush_storage(corpus: AccuracyCorpus) -> ConfusionMatrix:
    return _score(corpus.pairs, crush_storage_verdicts(corpus),
                  lambda pair: pair.storage_collision, None)
