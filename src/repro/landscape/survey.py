"""§7 landscape analytics: the data behind Figures 2/4/5/6 and Tables 3/4.

Each function turns a :class:`~repro.core.report.LandscapeReport` (plus the
chain metadata) into exactly the series/rows the corresponding figure or
table plots, so the benchmark harnesses only format output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.core.report import ContractAnalysis, LandscapeReport
from repro.core.standards import ProxyStandard

YEARS = tuple(range(2015, 2024))

# Figure 2 / Figure 4 availability quadrants.
SOURCE_AND_TX = "source+tx"
SOURCE_ONLY = "source-only"
TX_ONLY = "tx-only"
HIDDEN = "hidden"

QUADRANTS = (SOURCE_ONLY, SOURCE_AND_TX, TX_ONLY, HIDDEN)


def quadrant_of(analysis: ContractAnalysis) -> str:
    if analysis.has_source and analysis.has_transactions:
        return SOURCE_AND_TX
    if analysis.has_source:
        return SOURCE_ONLY
    if analysis.has_transactions:
        return TX_ONLY
    return HIDDEN


# --------------------------------------------------------------- Figure 2
def figure2_accumulated_contracts(
        report: LandscapeReport) -> dict[int, dict[str, int]]:
    """Cumulative alive contracts per year, split by availability quadrant."""
    yearly: dict[int, Counter] = {year: Counter() for year in YEARS}
    for analysis in report.analyses.values():
        year = analysis.deploy_year
        if year is None or year not in yearly:
            continue
        yearly[year][quadrant_of(analysis)] += 1

    accumulated: dict[int, dict[str, int]] = {}
    running = Counter()
    for year in YEARS:
        running += yearly[year]
        accumulated[year] = {quadrant: running.get(quadrant, 0)
                             for quadrant in QUADRANTS}
    return accumulated


# --------------------------------------------------------------- Figure 4
PAIR_BOTH_SOURCE = "both-source"
PAIR_LOGIC_SOURCE = "only-logic-source"
PAIR_PROXY_SOURCE = "only-proxy-source"
PAIR_NO_SOURCE = "no-source"

PAIR_CLASSES = (PAIR_BOTH_SOURCE, PAIR_LOGIC_SOURCE,
                PAIR_PROXY_SOURCE, PAIR_NO_SOURCE)


def figure4_pair_availability(report: LandscapeReport, node: ArchiveNode,
                              registry: SourceRegistry) -> dict[int, dict[str, int]]:
    """Cumulative proxy/logic pairs per year by source availability."""
    yearly: dict[int, Counter] = {year: Counter() for year in YEARS}
    for analysis in report.analyses.values():
        if not analysis.is_proxy or analysis.logic_history is None:
            continue
        year = analysis.deploy_year
        if year is None or year not in yearly:
            continue
        proxy_has_source = analysis.has_source
        for logic in analysis.logic_history.logic_addresses:
            logic_has_source = registry.resolve(
                logic, node.get_code(logic)) is not None
            if proxy_has_source and logic_has_source:
                pair_class = PAIR_BOTH_SOURCE
            elif logic_has_source:
                pair_class = PAIR_LOGIC_SOURCE
            elif proxy_has_source:
                pair_class = PAIR_PROXY_SOURCE
            else:
                pair_class = PAIR_NO_SOURCE
            yearly[year][pair_class] += 1

    accumulated: dict[int, dict[str, int]] = {}
    running = Counter()
    for year in YEARS:
        running += yearly[year]
        accumulated[year] = {pair_class: running.get(pair_class, 0)
                             for pair_class in PAIR_CLASSES}
    return accumulated


# ---------------------------------------------------------------- Table 3
@dataclass(slots=True)
class CollisionsByYear:
    """Table 3's rows plus the duplicate-share headline."""

    function_by_year: dict[int, int] = field(default_factory=dict)
    storage_by_year: dict[int, int] = field(default_factory=dict)
    duplicate_function_collisions: int = 0
    total_function_collisions: int = 0

    @property
    def duplicate_share(self) -> float:
        if not self.total_function_collisions:
            return 0.0
        return self.duplicate_function_collisions / self.total_function_collisions


def table3_collisions_by_year(report: LandscapeReport) -> CollisionsByYear:
    result = CollisionsByYear(
        function_by_year={year: 0 for year in YEARS},
        storage_by_year={year: 0 for year in YEARS},
    )
    code_hash_counts = Counter(
        analysis.code_hash for analysis in report.analyses.values()
        if analysis.is_proxy and analysis.has_function_collision)
    for analysis in report.analyses.values():
        year = analysis.deploy_year
        if year is None or year not in result.function_by_year:
            continue
        if analysis.has_function_collision:
            result.function_by_year[year] += 1
            result.total_function_collisions += 1
            if code_hash_counts[analysis.code_hash] > 1:
                result.duplicate_function_collisions += 1
        if analysis.has_storage_collision:
            result.storage_by_year[year] += 1
    return result


# --------------------------------------------------------------- Figure 5
@dataclass(slots=True)
class DuplicateCensus:
    """Figure 5: duplicate-count distribution for proxies and logics."""

    proxy_duplicate_counts: list[int] = field(default_factory=list)
    logic_duplicate_counts: list[int] = field(default_factory=list)

    @property
    def unique_proxies(self) -> int:
        return len(self.proxy_duplicate_counts)

    @property
    def unique_logics(self) -> int:
        return len(self.logic_duplicate_counts)

    @property
    def total_proxies(self) -> int:
        return sum(self.proxy_duplicate_counts)

    def top_proxy_share(self, top: int = 3) -> float:
        if not self.proxy_duplicate_counts:
            return 0.0
        return sum(self.proxy_duplicate_counts[:top]) / self.total_proxies


def figure5_duplicates(report: LandscapeReport,
                       node: ArchiveNode) -> DuplicateCensus:
    proxy_hashes = Counter()
    logic_hashes = Counter()
    logic_addresses: set[bytes] = set()
    from repro.utils.keccak import keccak256

    for analysis in report.analyses.values():
        if not analysis.is_proxy:
            continue
        proxy_hashes[analysis.code_hash] += 1
        if analysis.logic_history is None:
            continue
        logic_addresses.update(analysis.logic_history.logic_addresses)
    # Each *distinct logic contract* counts once; duplication is then
    # measured across those contracts' bytecodes (Fig. 5b's population).
    for logic in logic_addresses:
        code = node.get_code(logic)
        if code:
            logic_hashes[keccak256(code)] += 1
    return DuplicateCensus(
        proxy_duplicate_counts=sorted(proxy_hashes.values(), reverse=True),
        logic_duplicate_counts=sorted(logic_hashes.values(), reverse=True),
    )


# ---------------------------------------------------------------- Table 4
def table4_standards(report: LandscapeReport) -> dict[str, tuple[int, float]]:
    """Standards census with (count, share-of-proxies) per row."""
    census = report.standards_census()
    total = sum(census.values())
    rows: dict[str, tuple[int, float]] = {}
    for standard in (ProxyStandard.EIP1167, ProxyStandard.EIP1822,
                     ProxyStandard.EIP1967, ProxyStandard.OTHER):
        count = census.get(standard, 0)
        rows[standard.value] = (count, count / total if total else 0.0)
    return rows


# --------------------------------------------------------------- Figure 6
@dataclass(slots=True)
class UpgradeCensus:
    """Figure 6: upgrade-count histogram and the headline statistics."""

    histogram: dict[int, int] = field(default_factory=dict)
    total_upgrade_events: int = 0
    upgraded_proxies: int = 0
    total_proxies: int = 0

    @property
    def never_upgraded_share(self) -> float:
        if not self.total_proxies:
            return 0.0
        return 1.0 - self.upgraded_proxies / self.total_proxies

    @property
    def mean_logic_contracts(self) -> float:
        """Upgrade events per *upgraded* proxy.

        This is the paper's "1.32 associated logic contracts on average":
        68,804 upgrade events over 51,925 upgraded proxies = 1.325.
        """
        if not self.upgraded_proxies:
            return 0.0
        return self.total_upgrade_events / self.upgraded_proxies


def figure6_upgrades(report: LandscapeReport) -> UpgradeCensus:
    census = UpgradeCensus()
    for analysis in report.analyses.values():
        if not analysis.is_proxy or analysis.logic_history is None:
            continue
        census.total_proxies += 1
        upgrades = analysis.logic_history.upgrade_count
        census.histogram[upgrades] = census.histogram.get(upgrades, 0) + 1
        census.total_upgrade_events += upgrades
        if upgrades:
            census.upgraded_proxies += 1
    return census
