"""§6–§7 analytics: survey series, accuracy scoring."""

from repro.landscape.accuracy import (
    ConfusionMatrix,
    score_crush_storage,
    score_proxion_function,
    score_proxion_storage,
    score_uschunt_function,
    score_uschunt_storage,
    table2,
)
from repro.landscape.checkpoint import SweepCheckpoint, shard_checkpoint_path
from repro.landscape.merge import merge_reports
from repro.landscape.serialize import (
    analysis_to_dict,
    dict_to_analysis,
    dict_to_failure,
    failure_to_dict,
    report_to_dict,
    report_to_json,
)
from repro.landscape.survey import (
    CollisionsByYear,
    DuplicateCensus,
    UpgradeCensus,
    figure2_accumulated_contracts,
    figure4_pair_availability,
    figure5_duplicates,
    figure6_upgrades,
    quadrant_of,
    table3_collisions_by_year,
    table4_standards,
)

__all__ = [
    "CollisionsByYear",
    "SweepCheckpoint",
    "analysis_to_dict",
    "dict_to_analysis",
    "dict_to_failure",
    "failure_to_dict",
    "merge_reports",
    "report_to_dict",
    "report_to_json",
    "shard_checkpoint_path",
    "ConfusionMatrix",
    "DuplicateCensus",
    "UpgradeCensus",
    "figure2_accumulated_contracts",
    "figure4_pair_availability",
    "figure5_duplicates",
    "figure6_upgrades",
    "quadrant_of",
    "score_crush_storage",
    "score_proxion_function",
    "score_proxion_storage",
    "score_uschunt_function",
    "score_uschunt_storage",
    "table2",
    "table3_collisions_by_year",
    "table4_standards",
]
