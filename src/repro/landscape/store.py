"""SQLite persistence for analysis sweeps.

A 36M-contract analysis (65 hours on the paper's server) cannot live in
memory between sessions; the real system necessarily persists results.
:class:`ResultStore` is that layer: sweeps are written into a small
relational schema (contracts, logic links, collisions) and can be queried
without re-running any analysis.

Only the standard library's :mod:`sqlite3` is used.  A path of ``":memory:"``
gives an ephemeral store (the default, handy for tests).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.core.report import ContractAnalysis, LandscapeReport

_SCHEMA = """
CREATE TABLE IF NOT EXISTS contracts (
    address        TEXT PRIMARY KEY,
    code_hash      TEXT NOT NULL,
    has_source     INTEGER NOT NULL,
    has_tx         INTEGER NOT NULL,
    deploy_block   INTEGER,
    deploy_year    INTEGER,
    is_proxy       INTEGER NOT NULL,
    standard       TEXT,
    logic_location TEXT,
    logic_slot     TEXT,
    emulation_failed INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS logic_links (
    proxy    TEXT NOT NULL,
    position INTEGER NOT NULL,
    logic    TEXT NOT NULL,
    PRIMARY KEY (proxy, position)
);
CREATE TABLE IF NOT EXISTS collisions (
    proxy     TEXT NOT NULL,
    logic     TEXT NOT NULL,
    kind      TEXT NOT NULL,            -- 'function' | 'storage'
    detail    TEXT NOT NULL,            -- selector hex / slot description
    sensitive INTEGER NOT NULL DEFAULT 0,
    verified  INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_contracts_proxy ON contracts(is_proxy);
CREATE INDEX IF NOT EXISTS idx_contracts_year ON contracts(deploy_year);
CREATE INDEX IF NOT EXISTS idx_collisions_kind ON collisions(kind);
"""


def _hex(data: bytes | None) -> str | None:
    return None if data is None else "0x" + data.hex()


@dataclass(frozen=True, slots=True)
class StoredContract:
    """One row of the ``contracts`` table."""

    address: str
    code_hash: str
    has_source: bool
    has_transactions: bool
    deploy_year: int | None
    is_proxy: bool
    standard: str | None

    @property
    def is_hidden(self) -> bool:
        return not self.has_source and not self.has_transactions


class ResultStore:
    """Persist and query ProxioN sweeps."""

    def __init__(self, path: str = ":memory:") -> None:
        self._connection = sqlite3.connect(path)
        self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ---------------------------------------------------------------- writes
    def save_analysis(self, analysis: ContractAnalysis) -> None:
        check = analysis.check
        self._connection.execute(
            "INSERT OR REPLACE INTO contracts VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                _hex(analysis.address),
                _hex(analysis.code_hash),
                int(analysis.has_source),
                int(analysis.has_transactions),
                analysis.deploy_block,
                analysis.deploy_year,
                int(analysis.is_proxy),
                analysis.standard.value if analysis.standard else None,
                check.logic_location.value if check else None,
                (hex(check.logic_slot)
                 if check and check.logic_slot is not None else None),
                int(analysis.emulation_failed),
            ))
        proxy_hex = _hex(analysis.address)
        self._connection.execute(
            "DELETE FROM logic_links WHERE proxy = ?", (proxy_hex,))
        self._connection.execute(
            "DELETE FROM collisions WHERE proxy = ?", (proxy_hex,))
        if analysis.logic_history is not None:
            self._connection.executemany(
                "INSERT INTO logic_links VALUES (?, ?, ?)",
                [(proxy_hex, position, _hex(logic))
                 for position, logic in enumerate(
                     analysis.logic_history.logic_addresses)])
        for report in analysis.function_reports:
            for collision in report.collisions:
                self._connection.execute(
                    "INSERT INTO collisions VALUES (?, ?, 'function', ?, 0, 0)",
                    (proxy_hex, _hex(report.logic),
                     _hex(collision.selector)))
        for report in analysis.storage_reports:
            for collision in report.collisions:
                self._connection.execute(
                    "INSERT INTO collisions VALUES "
                    "(?, ?, 'storage', ?, ?, ?)",
                    (proxy_hex, _hex(report.logic), str(collision.slot),
                     int(collision.sensitive), int(collision.verified)))

    def save_report(self, report: LandscapeReport) -> None:
        for analysis in report.analyses.values():
            self.save_analysis(analysis)
        self._connection.commit()

    # ---------------------------------------------------------------- reads
    def contract_count(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM contracts").fetchone()
        return row[0]

    def proxies(self, standard: str | None = None,
                year: int | None = None,
                hidden_only: bool = False) -> list[StoredContract]:
        query = ("SELECT address, code_hash, has_source, has_tx, "
                 "deploy_year, is_proxy, standard FROM contracts "
                 "WHERE is_proxy = 1")
        parameters: list = []
        if standard is not None:
            query += " AND standard = ?"
            parameters.append(standard)
        if year is not None:
            query += " AND deploy_year = ?"
            parameters.append(year)
        if hidden_only:
            query += " AND has_source = 0 AND has_tx = 0"
        rows = self._connection.execute(query, parameters).fetchall()
        return [StoredContract(address, code_hash, bool(has_source),
                               bool(has_tx), deploy_year, bool(is_proxy),
                               stored_standard)
                for (address, code_hash, has_source, has_tx, deploy_year,
                     is_proxy, stored_standard) in rows]

    def logic_chain(self, proxy_address: str) -> list[str]:
        rows = self._connection.execute(
            "SELECT logic FROM logic_links WHERE proxy = ? ORDER BY position",
            (proxy_address,)).fetchall()
        return [row[0] for row in rows]

    def collisions(self, kind: str | None = None,
                   verified_only: bool = False) -> list[tuple[str, str, str]]:
        query = "SELECT proxy, logic, detail FROM collisions WHERE 1=1"
        parameters: list = []
        if kind is not None:
            query += " AND kind = ?"
            parameters.append(kind)
        if verified_only:
            query += " AND verified = 1"
        return self._connection.execute(query, parameters).fetchall()

    def standards_census(self) -> dict[str, int]:
        rows = self._connection.execute(
            "SELECT standard, COUNT(*) FROM contracts "
            "WHERE is_proxy = 1 GROUP BY standard").fetchall()
        return {standard: count for standard, count in rows}

    def yearly_counts(self) -> dict[int, int]:
        rows = self._connection.execute(
            "SELECT deploy_year, COUNT(*) FROM contracts "
            "WHERE deploy_year IS NOT NULL GROUP BY deploy_year").fetchall()
        return {year: count for year, count in rows}
