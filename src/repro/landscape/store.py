"""Legacy result-store shim over :mod:`repro.store` (deprecated).

:class:`ResultStore` predates the durable analysis store; it persisted a
*finished* report post-hoc into its own three-table schema.  There is now
exactly one persistence format — ``repro.store/1``
(:class:`~repro.store.AnalysisStore`), which the pipeline writes through
*during* the sweep — and this module is a thin compatibility layer over
it: same constructor, same write entry points, same query surface
(implemented on the new tables), emitting a :class:`DeprecationWarning`
that points at the replacement.

Prefer ``survey --store PATH`` (the CLI's ``--db`` is an alias of it) and
:class:`repro.store.AnalysisStore` in code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.report import ContractAnalysis, LandscapeReport
from repro.store.store import AnalysisStore


@dataclass(frozen=True, slots=True)
class StoredContract:
    """One proxy row, as the legacy query surface shaped it."""

    address: str
    code_hash: str
    has_source: bool
    has_transactions: bool
    deploy_year: int | None
    is_proxy: bool
    standard: str | None

    @property
    def is_hidden(self) -> bool:
        return not self.has_source and not self.has_transactions


class ResultStore:
    """Deprecated alias of :class:`repro.store.AnalysisStore`.

    Kept for one release so existing callers (and ``survey --db``) keep
    working; the data lands in the unified ``repro.store/1`` schema, so
    a database written here is directly usable with ``--store``,
    ``--incremental`` and ``repro store fsck|stats|vacuum``.
    """

    def __init__(self, path: str = ":memory:") -> None:
        warnings.warn(
            "ResultStore is deprecated; use repro.store.AnalysisStore "
            "(same data, durable repro.store/1 schema) instead",
            DeprecationWarning, stacklevel=2)
        self._store = AnalysisStore(path)

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ---------------------------------------------------------------- writes
    def save_analysis(self, analysis: ContractAnalysis) -> None:
        self._store.save_analysis(analysis)

    def save_report(self, report: LandscapeReport) -> None:
        self._store.save_report(report)

    # ---------------------------------------------------------------- reads
    def contract_count(self) -> int:
        return self._store.contract_count()

    def proxies(self, standard: str | None = None,
                year: int | None = None,
                hidden_only: bool = False) -> list[StoredContract]:
        rows = self._store.proxies(standard=standard, year=year,
                                   hidden_only=hidden_only)
        return [StoredContract(address, code_hash, bool(has_source),
                               bool(has_tx), deploy_year, bool(is_proxy),
                               stored_standard)
                for (address, code_hash, has_source, has_tx, deploy_year,
                     is_proxy, stored_standard) in rows]

    def logic_chain(self, proxy_address: str) -> list[str]:
        return self._store.logic_chain(proxy_address)

    def collisions(self, kind: str | None = None,
                   verified_only: bool = False) -> list[tuple[str, str, str]]:
        return self._store.collisions(kind=kind, verified_only=verified_only)

    def standards_census(self) -> dict[str, int]:
        return self._store.standards_census()

    def yearly_counts(self) -> dict[int, int]:
        return self._store.yearly_counts()
