"""JSONL sweep checkpoints: kill a sweep, resume from the last contract.

A §6-scale landscape sweep runs for days; losing it to a node restart or an
OOM kill is not acceptable.  :class:`SweepCheckpoint` gives
:meth:`repro.core.pipeline.Proxion.analyze_all` durable, append-only
progress:

* line 1 is a header — schema tag, address-list fingerprint, total count —
  so a resume against the *wrong* landscape fails loudly instead of
  producing a silently mismatched report;
* every completed contract appends one self-contained JSON line
  (``analysis`` / ``failure`` / ``skip``), flushed immediately, so a kill
  at any instant loses at most the contract in flight;
* on resume, restored analyses are rebuilt through
  :func:`~repro.landscape.serialize.dict_to_analysis` and pre-seed the
  report, and the completed-address set tells the pipeline where to pick
  up.

The format is *kill -9 tolerant* end to end: the header is fsynced so a
resumable file is never empty, and a truncated or garbled **final** line
(the classic crash-mid-write artifact) is dropped on load and counted in
:attr:`SweepCheckpoint.recovered_truncations` — the contract it described
is simply re-analyzed.  Corruption anywhere *before* the tail is not a
crash artifact and still refuses to resume.

Because analyses are serialized losslessly (w.r.t. what
``report_to_dict`` emits), a resumed sweep serializes identically to the
uninterrupted one — the checkpoint-equivalence property the chaos suite
asserts.  That losslessness covers the optional ``evidence`` digest an
audited sweep embeds per analysis (``survey --audit``), so resumed and
merged sweeps keep verdict provenance without re-recording it.  Note the per-sweep dedup counters are the one exception: a
resumed process only pays cache misses for the tail it actually analyzes,
so ``summary.dedup`` legitimately differs (see ``docs/robustness.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterable

from repro.core.report import ContractAnalysis, ContractFailure
from repro.errors import ConfigurationError
from repro.landscape.serialize import (
    analysis_to_dict,
    dict_to_analysis,
    dict_to_failure,
    failure_to_dict,
)

#: Version tag of the checkpoint file layout.
SCHEMA = "repro.checkpoint/1"


def shard_checkpoint_path(path: str, shard: int) -> str:
    """The per-shard checkpoint file of a sharded sweep.

    A parallel sweep with ``--checkpoint FILE --workers N`` keeps one
    independent ``repro.checkpoint/1`` file per shard —
    ``FILE.shard00 .. FILE.shard<N-1>`` — each fingerprinted against its
    own shard's address list, so every shard resumes (and fails loudly on
    a mismatched partition) independently of the others.
    """
    return f"{path}.shard{shard:02d}"


def fingerprint(addresses: Iterable[bytes]) -> str:
    """Order-sensitive fingerprint of the sweep's address list."""
    digest = hashlib.sha256()
    for address in addresses:
        digest.update(address)
        digest.update(b"|")
    return digest.hexdigest()[:16]


class SweepCheckpoint:
    """Append-only JSONL progress log of one landscape sweep.

    Build with :meth:`start` (fresh file) or :meth:`resume` (load an
    existing one, then keep appending).  Pass to
    ``Proxion.analyze_all(addresses, checkpoint=...)``.
    """

    def __init__(self, path: str, addresses: list[bytes],
                 _resume: bool = False) -> None:
        self.path = path
        self._fingerprint = fingerprint(addresses)
        self._total = len(addresses)
        self.completed: set[bytes] = set()
        self._analyses: list[dict[str, Any]] = []
        self._failures: list[dict[str, Any]] = []
        self.skipped: set[bytes] = set()
        #: Partial/garbled tail lines dropped by :meth:`_load` (crash
        #: mid-write artifacts); surfaced as the
        #: ``checkpoint.recovered_truncations`` metric on resume.
        self.recovered_truncations = 0
        if _resume:
            self._load()
            self._stream = open(path, "a", encoding="utf-8")
        else:
            self._stream = open(path, "w", encoding="utf-8")
            self._append({"schema": SCHEMA,
                          "fingerprint": self._fingerprint,
                          "total": self._total})
            # The header must be durable before any worker is allowed to
            # crash against this file: flush + fsync so a resume can never
            # find an empty (headerless) checkpoint.
            os.fsync(self._stream.fileno())

    # ----------------------------------------------------------- constructors
    @classmethod
    def start(cls, path: str, addresses: list[bytes]) -> "SweepCheckpoint":
        """Begin a fresh checkpoint (truncates any existing file)."""
        return cls(path, addresses)

    @classmethod
    def resume(cls, path: str, addresses: list[bytes]) -> "SweepCheckpoint":
        """Load an existing checkpoint and continue appending to it."""
        if not os.path.exists(path):
            raise ConfigurationError(f"no checkpoint to resume at {path!r}")
        return cls(path, addresses, _resume=True)

    # -------------------------------------------------------------- recording
    def _append(self, record: dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        # One line per completed contract; flush so a kill -9 loses at most
        # the contract currently being analyzed.
        self._stream.flush()

    def record_analysis(self, analysis: ContractAnalysis) -> None:
        record = analysis_to_dict(analysis)
        self.completed.add(analysis.address)
        self._analyses.append(record)
        self._append({"kind": "analysis", "data": record})

    def record_failure(self, failure: ContractFailure) -> None:
        record = failure_to_dict(failure)
        self.completed.add(failure.address)
        self._failures.append(record)
        self._append({"kind": "failure", "data": record})

    def record_skip(self, address: bytes) -> None:
        """A dead (§3.1-excluded) address — completed without an analysis."""
        self.completed.add(address)
        self.skipped.add(address)
        self._append({"kind": "skip", "address": "0x" + address.hex()})

    # --------------------------------------------------------------- restoring
    def restored_analyses(self) -> list[ContractAnalysis]:
        return [dict_to_analysis(record) for record in self._analyses]

    def restored_failures(self) -> list[ContractFailure]:
        return [dict_to_failure(record) for record in self._failures]

    def _load(self) -> None:
        with open(self.path, encoding="utf-8") as stream:
            lines = [line for line in stream if line.strip()]
        if not lines:
            raise ConfigurationError(
                f"checkpoint {self.path!r} is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"checkpoint {self.path!r} has an unreadable header "
                f"({error}) — refusing to resume") from None
        if header.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"checkpoint {self.path!r} has schema "
                f"{header.get('schema')!r}, expected {SCHEMA!r}")
        if header.get("fingerprint") != self._fingerprint:
            raise ConfigurationError(
                f"checkpoint {self.path!r} was written for a different "
                f"address list (fingerprint {header.get('fingerprint')!r} "
                f"!= {self._fingerprint!r}) — refusing to resume")
        last = len(lines) - 1
        for index, line in enumerate(lines[1:], start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == last:
                    # A partial final line is the expected artifact of a
                    # kill mid-write: drop it (its contract is simply
                    # re-analyzed) and account for the recovery.
                    self.recovered_truncations += 1
                    continue
                raise ConfigurationError(
                    f"checkpoint {self.path!r} is corrupt at line "
                    f"{index + 1} (not the final line, so not a "
                    f"crash-truncation artifact) — refusing to resume"
                ) from None
            kind = record.get("kind")
            if kind == "analysis":
                data = record["data"]
                self._analyses.append(data)
                self.completed.add(
                    bytes.fromhex(data["address"].removeprefix("0x")))
            elif kind == "failure":
                data = record["data"]
                self._failures.append(data)
                self.completed.add(
                    bytes.fromhex(data["address"].removeprefix("0x")))
            elif kind == "skip":
                address = bytes.fromhex(
                    record["address"].removeprefix("0x"))
                self.completed.add(address)
                self.skipped.add(address)
            # Unknown kinds are skipped, not fatal: forward compatibility
            # with later minor additions to the same schema version.

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["SCHEMA", "SweepCheckpoint", "fingerprint",
           "shard_checkpoint_path"]
