"""The Salehi et al. baseline (WTSC '22): transaction replay.

Salehi et al. study upgradeability ownership by *replaying past
transactions* against the contract under an instrumented EVM and watching
for delegate calls.  Like CRUSH it is bytecode-compatible (no source
needed), but its reach is bounded by the transaction history: contracts
without transactions — or whose recorded transactions never exercised the
fallback path — are missed.
"""

from __future__ import annotations

from repro.chain.node import ArchiveNode
from repro.evm.environment import ExecutionConfig, TransactionContext
from repro.evm.interpreter import EVM, Message
from repro.evm.state import OverlayState
from repro.evm.tracer import CallTracer


class SalehiReplay:
    """Replay-based proxy detection."""

    name = "Salehi et al."

    def __init__(self, node: ArchiveNode, max_replays: int = 16,
                 use_historical_state: bool = False) -> None:
        self._node = node
        self._max_replays = max_replays
        # Replaying against the state *at the transaction's block* is more
        # faithful (an upgraded-away logic still resolves); the default
        # replays against current state, as a tool without archive access
        # would.
        self._use_historical_state = use_historical_state

    def is_proxy(self, address: bytes) -> bool:
        """Replay up to ``max_replays`` historical transactions."""
        code = self._node.get_code(address)
        if not code:
            return False
        replayed = 0
        for receipt in self._node.transactions_of(address):
            transaction = receipt.transaction
            if transaction.to != address:
                continue
            if replayed >= self._max_replays:
                break
            replayed += 1
            tracer = CallTracer()
            if self._use_historical_state:
                base = self._node.chain.state.view_at(receipt.block_number)
            else:
                base = self._node.chain.state
            overlay = OverlayState(base)
            evm = EVM(
                overlay,
                block=self._node.chain.block_context(),
                tx=TransactionContext(origin=transaction.sender),
                config=ExecutionConfig(instruction_budget=300_000),
                tracer=tracer,
            )
            evm.execute(Message(
                sender=transaction.sender,
                to=address,
                value=0,
                data=transaction.data,
                gas=5_000_000,
            ))
            for event in tracer.calls:
                if (event.kind == "DELEGATECALL"
                        and event.caller_storage_address == address
                        and event.input_data == transaction.data):
                    return True
        return False

    def find_proxies(self, addresses: list[bytes]) -> set[bytes]:
        return {address for address in addresses if self.is_proxy(address)}
