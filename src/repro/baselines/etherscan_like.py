"""The Etherscan proxy-verification baseline (§9.1).

Etherscan's integrated checker flags any contract whose bytecode contains
the ``DELEGATECALL`` opcode as a proxy — a pure opcode-presence test that
Etherscan itself acknowledges produces numerous false positives (library
callers, one-off delegatecall users).  No collision detection of any kind.
"""

from __future__ import annotations

from repro.chain.node import ArchiveNode
from repro.evm.disassembler import contains_delegatecall


class EtherscanVerifier:
    """Opcode-presence proxy detection."""

    name = "EtherScan"

    def __init__(self, node: ArchiveNode) -> None:
        self._node = node

    def is_proxy(self, address: bytes) -> bool:
        code = self._node.get_code(address)
        return bool(code) and contains_delegatecall(code)

    def find_proxies(self, addresses: list[bytes]) -> set[bytes]:
        return {address for address in addresses if self.is_proxy(address)}
