"""Reimplementations of the comparison tools from Table 1 / §6 / §9."""

from repro.baselines.crush import Crush, CrushResult
from repro.baselines.etherscan_like import EtherscanVerifier
from repro.baselines.salehi import SalehiReplay
from repro.baselines.slither_like import SlitherKeyword
from repro.baselines.uschunt import (
    SUPPORTED_COMPILERS,
    USCHunt,
    USCHuntResult,
    USCHuntStorageFinding,
)

__all__ = [
    "Crush",
    "CrushResult",
    "EtherscanVerifier",
    "SUPPORTED_COMPILERS",
    "SalehiReplay",
    "SlitherKeyword",
    "USCHunt",
    "USCHuntResult",
    "USCHuntStorageFinding",
]
