"""The CRUSH baseline (Ruaro et al., NDSS '24).

CRUSH mines *historical transactions* for DELEGATECALL instructions: every
contract observed issuing one is treated as a proxy and the (caller, target)
pairs as proxy/logic pairs.  Consequences the paper measures (§6.2/§6.3):

* contracts with **no past transactions** are invisible (the hidden class);
* **library callers** are swept in as proxies — false positives ProxioN's
  forwarded-calldata criterion excludes;
* only **storage collisions** are detected (no function collisions), using
  the same slicing/symbolic-execution engine ProxioN reuses (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.node import ArchiveNode
from repro.core.storage_collision import (
    StorageCollisionDetector,
    StorageCollisionReport,
)


@dataclass(slots=True)
class CrushResult:
    """CRUSH's view of one landscape."""

    proxies: set[bytes] = field(default_factory=set)
    pairs: set[tuple[bytes, bytes]] = field(default_factory=set)
    storage_reports: list[StorageCollisionReport] = field(default_factory=list)

    @property
    def collision_pairs(self) -> int:
        return sum(1 for report in self.storage_reports if report.has_collision)

    @property
    def verified_exploits(self) -> int:
        return sum(1 for report in self.storage_reports
                   if report.has_verified_exploit)


class Crush:
    """Transaction-history proxy mining + storage-collision detection."""

    name = "CRUSH"

    def __init__(self, node: ArchiveNode) -> None:
        self._node = node
        self._storage_detector = StorageCollisionDetector(
            registry=None,
            state=node.chain.state,
            block=node.chain.block_context(),
        )

    def mine_pairs(self, addresses: list[bytes]) -> CrushResult:
        """Scan each address's transaction history for DELEGATECALLs."""
        result = CrushResult()
        for address in addresses:
            for receipt in self._node.transactions_of(address):
                for event in receipt.internal_calls:
                    if event.kind != "DELEGATECALL":
                        continue
                    if event.caller_storage_address != address:
                        continue
                    # Any DELEGATECALL qualifies — including library calls
                    # with re-encoded arguments (ProxioN's exclusion).
                    result.proxies.add(address)
                    result.pairs.add((address, event.target))
        return result

    def analyze(self, addresses: list[bytes],
                verify_exploits: bool = True) -> CrushResult:
        """Full CRUSH run: mine pairs, then storage-collision each pair."""
        result = self.mine_pairs(addresses)
        for proxy, logic in sorted(result.pairs):
            proxy_code = self._node.get_code(proxy)
            logic_code = self._node.get_code(logic)
            if not proxy_code or not logic_code:
                continue
            result.storage_reports.append(self._storage_detector.detect(
                proxy_code, logic_code, proxy, logic,
                verify_exploits=verify_exploits))
        return result

    def storage_collisions(self, proxy: bytes,
                           logic: bytes) -> StorageCollisionReport:
        """Pairwise storage check (the engine ProxioN reuses)."""
        return self._storage_detector.detect(
            self._node.get_code(proxy), self._node.get_code(logic),
            proxy, logic)
