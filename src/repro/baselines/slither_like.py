"""The Slither baseline (§9.1): source-only, keyword-driven proxy checks.

Slither's upgradeability checks operate on verified source and lean on
keyword/pattern searches ("proxy", "delegatecall"), which yields false
positives on contracts that merely mention the keywords and misses every
contract without published source.  It also does not resolve the associated
logic contracts, so its collision checking needs the pair handed to it.
"""

from __future__ import annotations

from repro.chain.explorer import SourceRegistry
from repro.chain.node import ArchiveNode
from repro.utils.abi import function_selector

_KEYWORDS = ("delegatecall", "proxy")


class SlitherKeyword:
    """Source keyword search for proxies + source-level collision check."""

    name = "Slither"

    def __init__(self, node: ArchiveNode, registry: SourceRegistry) -> None:
        self._node = node
        self._registry = registry

    def is_proxy(self, address: bytes) -> bool | None:
        """Keyword verdict; ``None`` when no source is available."""
        source = self._registry.resolve(address,
                                        self._node.get_code(address))
        if source is None:
            return None
        lowered = source.text.lower()
        return any(keyword in lowered for keyword in _KEYWORDS)

    def find_proxies(self, addresses: list[bytes]) -> set[bytes]:
        return {address for address in addresses if self.is_proxy(address)}

    def function_collisions(self, proxy: bytes, logic: bytes) -> set[bytes] | None:
        """Prototype-hash intersection; ``None`` when either source is missing."""
        proxy_source = self._registry.resolve(proxy, self._node.get_code(proxy))
        logic_source = self._registry.resolve(logic, self._node.get_code(logic))
        if proxy_source is None or logic_source is None:
            return None
        proxy_selectors = {function_selector(p)
                           for p in proxy_source.function_prototypes}
        logic_selectors = {function_selector(p)
                           for p in logic_source.function_prototypes}
        return proxy_selectors & logic_selectors
