"""The USCHunt baseline (Bodell et al., USENIX Security '23).

USCHunt builds on Slither: it needs *verified source*, must compile it, and
then statically recognizes upgradeable proxies and their collisions.  The
behaviours the paper measures against (§6.2/§6.3) are modelled explicitly:

* **compilation halts**: ~30% of Sanctuary contracts fail to compile under
  default flags (unknown compiler versions).  Sources whose
  ``compiler_version`` is outside the supported set halt the analysis;
* **proxy detection**: source-level — a fallback containing a delegatecall;
* **function collisions**: prototype intersection (source-only);
* **storage collisions**: layout comparison that flags *differently named*
  variables sharing a slot — which sweeps in storage padding and produces
  the false positives Table 2 charges USCHunt with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.explorer import ContractSource, SourceRegistry
from repro.chain.node import ArchiveNode
from repro.lang.storage_layout import compute_layout
from repro.utils.abi import function_selector

# Versions the modelled toolchain can compile; anything else halts, like
# USCHunt under default compiler flags.
SUPPORTED_COMPILERS = ("v0.8.21", "v0.8.19", "v0.8.17", "v0.8.0", "v0.7.6")


@dataclass(slots=True)
class USCHuntResult:
    """Per-contract outcome: halted, not-a-proxy, or proxy."""

    address: bytes
    halted: bool = False
    is_proxy: bool = False


@dataclass(slots=True)
class USCHuntStorageFinding:
    """A claimed storage collision (name-mismatch heuristic)."""

    slot: int
    proxy_variable: str
    logic_variable: str
    proxy_type: str
    logic_type: str

    @property
    def is_name_only_mismatch(self) -> bool:
        """Same slot/type but different names — the padding FP class."""
        return self.proxy_type == self.logic_type


class USCHunt:
    """Source-only upgradeable-proxy hunter."""

    name = "USCHunt"

    def __init__(self, node: ArchiveNode, registry: SourceRegistry) -> None:
        self._node = node
        self._registry = registry
        self.halt_count = 0

    def _source(self, address: bytes) -> ContractSource | None:
        return self._registry.resolve(address, self._node.get_code(address))

    def check(self, address: bytes) -> USCHuntResult:
        source = self._source(address)
        if source is None:
            return USCHuntResult(address)
        if source.compiler_version not in SUPPORTED_COMPILERS:
            self.halt_count += 1
            return USCHuntResult(address, halted=True)
        return USCHuntResult(
            address, is_proxy=self._recognizes_proxy(source))

    @staticmethod
    def _recognizes_proxy(source: ContractSource) -> bool:
        """Slither-style syntactic proxy recognition.

        Requires a fallback delegatecall *and* a recognizable
        implementation-address variable (named like ``logic``/``impl``/
        ``implementation``) or a known fixed-slot annotation.  Proxies that
        keep their target under a non-standard name slip through — the
        source of USCHunt's Table 2 false negatives ("the underlying
        Slither fails to identify proxy contracts").
        """
        if not source.has_fallback_delegatecall:
            return False
        recognizable = {"logic", "impl", "implementation", "target",
                        "proxiable", "facets"}
        if any(variable.name.lower() in recognizable
               for variable in source.storage_variables):
            return True
        return "fixed slot" in source.text.lower()

    def find_proxies(self, addresses: list[bytes]) -> set[bytes]:
        return {address for address in addresses
                if self.check(address).is_proxy}

    # ---------------------------------------------------------- collisions
    def function_collisions(self, proxy: bytes, logic: bytes) -> set[bytes]:
        """Prototype intersection — but only when the proxy was recognized.

        USCHunt's collision stage runs downstream of its proxy detection:
        if the contract halted or was not flagged as a proxy, no collisions
        are reported (the Table 2 false-negative mechanism).
        """
        if not self.check(proxy).is_proxy:
            return set()
        proxy_source = self._source(proxy)
        logic_source = self._source(logic)
        if proxy_source is None or logic_source is None:
            return set()
        return (
            {function_selector(p) for p in proxy_source.function_prototypes}
            & {function_selector(p) for p in logic_source.function_prototypes}
        )

    def storage_collisions(self, proxy: bytes,
                           logic: bytes) -> list[USCHuntStorageFinding]:
        """Name-mismatch layout comparison (the FP-prone heuristic)."""
        if not self.check(proxy).is_proxy:
            return []
        proxy_source = self._source(proxy)
        logic_source = self._source(logic)
        if proxy_source is None or logic_source is None:
            return []

        findings: list[USCHuntStorageFinding] = []
        proxy_layout = compute_layout(
            [(v.name, v.type_name) for v in proxy_source.storage_variables
             if not v.is_constant])
        logic_layout = compute_layout(
            [(v.name, v.type_name) for v in logic_source.storage_variables
             if not v.is_constant])
        for proxy_assignment in proxy_layout:
            for logic_assignment in logic_layout:
                if proxy_assignment.slot != logic_assignment.slot:
                    continue
                if not proxy_assignment.overlaps(logic_assignment):
                    continue
                if proxy_assignment.name == logic_assignment.name:
                    continue
                # Different names sharing a slot: USCHunt calls this a
                # collision even when types and offsets agree (padding).
                findings.append(USCHuntStorageFinding(
                    slot=proxy_assignment.slot,
                    proxy_variable=proxy_assignment.name,
                    logic_variable=logic_assignment.name,
                    proxy_type=proxy_assignment.type_name,
                    logic_type=logic_assignment.type_name,
                ))
        return findings
