#!/usr/bin/env python3
"""CI gate: the serve daemon's query API keeps its service contract.

Seeds a store with a real sweep, fronts it with an in-process
:class:`repro.serve.ServeApp`, and asserts the guarantees
``docs/service.md`` documents:

1. **Byte-identity** — ``repro explain ADDR --json --store PATH`` and
   ``GET /v1/contract/ADDR`` return byte-identical bodies for every
   stored verdict class (the ``repro.query/1`` single-serializer claim).
2. **Latency** — a keep-alive query burst over the settled store stays
   under the ``--p99-ms`` bound (generous for CI hardware; the
   ``serve_queries`` bench workload tracks the real trajectory).
3. **Overload armour** — at 2x over-admission a client is shed with
   429s (``Retry-After`` attached, typed ``repro.query/1`` error
   bodies), every response is a fast 200-or-429 (no queue collapse:
   the refusals must not be slower than the answers), and the
   observability routes stay unthrottled throughout.

Usage::

    PYTHONPATH=src python tools/check_serve.py --total 40 --seed 5

Exit codes: 0 pass, 1 contract violated, 2 usage error.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile
from http.client import HTTPConnection


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--total", type=int, default=40)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--queries", type=int, default=200,
                        help="burst size for the latency measurement")
    parser.add_argument("--p99-ms", type=float, default=100.0,
                        help="p99 latency bound for the burst (default "
                             "100ms — generous for shared CI hardware)")
    args = parser.parse_args(argv)

    from time import perf_counter

    from repro.cli import main as repro_main
    from repro.core.pipeline import Proxion
    from repro.corpus.generator import generate_landscape
    from repro.serve import ServeApp, ServeConfig
    from repro.store import attach_store
    from repro.store.store import AnalysisStore

    problems: list[str] = []
    workdir = tempfile.mkdtemp(prefix="repro-serve-gate-")
    store_path = os.path.join(workdir, "svc.store")

    # ---- seed: one real sweep settles the store the daemon fronts ------
    world = generate_landscape(total=args.total, seed=args.seed)
    with attach_store(store_path) as binding:
        proxion = Proxion(world.node, registry=world.registry,
                          dataset=world.dataset, store=binding)
        report = proxion.analyze_all()
    addresses = ["0x" + address.hex() for address in report.analyses]
    print(f"seed: {len(addresses)} contracts settled into {store_path}")

    def cli_answer(rendered: str) -> bytes:
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            code = repro_main(["explain", rendered, "--json",
                               "--store", store_path])
        if code != 0:
            problems.append(f"explain {rendered} --store exited {code}")
        return sink.getvalue().encode("utf-8")

    # ---- 1. byte-identity: CLI and HTTP share one serializer ----------
    config = ServeConfig(store_path=store_path, total=args.total,
                         seed=args.seed,
                         rate_per_s=1e9, burst=args.queries * 4)
    with ServeApp(config, landscape=world) as app:
        connection = HTTPConnection("127.0.0.1", app.port, timeout=30)

        def http_get(path: str) -> tuple[int, dict, bytes]:
            connection.request("GET", path)
            response = connection.getresponse()
            return (response.status, dict(response.headers),
                    response.read())

        identical = 0
        for rendered in addresses:
            status, _, body = http_get(f"/v1/contract/{rendered}")
            if status != 200:
                problems.append(f"GET /v1/contract/{rendered} -> {status}")
                continue
            if body != cli_answer(rendered):
                problems.append(f"{rendered}: CLI and HTTP bodies diverge")
                continue
            identical += 1
        print(f"byte-identity: {identical}/{len(addresses)} contract "
              f"answers identical across CLI and HTTP")

        # ---- 2. latency: the hot path under a keep-alive burst --------
        latencies: list[float] = []
        burst_start = perf_counter()
        for index in range(args.queries):
            rendered = addresses[index % len(addresses)]
            began = perf_counter()
            status, _, _ = http_get(f"/v1/contract/{rendered}")
            latencies.append(perf_counter() - began)
            if status != 200:
                problems.append(f"burst query {index} -> {status}")
        wall = perf_counter() - burst_start
        p50 = _percentile(latencies, 0.50) * 1000
        p99 = _percentile(latencies, 0.99) * 1000
        print(f"burst: {args.queries} queries in {wall:.2f}s "
              f"({args.queries / wall:.0f} qps), p50 {p50:.2f}ms, "
              f"p99 {p99:.2f}ms")
        if p99 > args.p99_ms:
            problems.append(f"p99 {p99:.2f}ms exceeds the "
                            f"{args.p99_ms}ms bound")
        connection.close()

    # ---- 3. overload: 2x over-admission is shed with fast 429s --------
    burst_tokens = 20
    throttled_config = ServeConfig(store_path=store_path, total=args.total,
                                   seed=args.seed,
                                   rate_per_s=1.0, burst=burst_tokens)
    with ServeApp(throttled_config, landscape=world) as app:
        connection = HTTPConnection("127.0.0.1", app.port, timeout=30)
        codes: list[int] = []
        refusal_times: list[float] = []
        storm_start = perf_counter()
        for index in range(burst_tokens * 2):   # 2x over-admission
            rendered = addresses[index % len(addresses)]
            began = perf_counter()
            connection.request("GET", f"/v1/contract/{rendered}")
            response = connection.getresponse()
            body = response.read()
            elapsed = perf_counter() - began
            codes.append(response.status)
            if response.status == 429:
                refusal_times.append(elapsed)
                payload = json.loads(body)
                if (payload.get("schema") != "repro.query/1"
                        or payload.get("kind") != "error"
                        or not response.headers.get("Retry-After")):
                    problems.append("429 body/headers are not the typed "
                                    "ErrorAnswer contract")
        storm_wall = perf_counter() - storm_start
        shed = codes.count(429)
        served = codes.count(200)
        print(f"overload: {served} served, {shed} shed with 429 out of "
              f"{len(codes)} at 2x over-admission ({storm_wall:.2f}s)")
        if shed < burst_tokens // 2:
            problems.append(f"expected >= {burst_tokens // 2} 429s at 2x "
                            f"over-admission, got {shed}")
        if set(codes) - {200, 429}:
            problems.append(f"unexpected status codes under overload: "
                            f"{sorted(set(codes) - {200, 429})}")
        if refusal_times and max(refusal_times) > 1.0:
            problems.append(f"a 429 took {max(refusal_times):.2f}s — "
                            f"refusals must be fast, not queued")
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        response.read()
        if response.status != 200:
            problems.append(f"/metrics was shed under overload "
                            f"({response.status}) — obs routes must stay "
                            f"unthrottled")
        connection.close()
        throttled = app.metrics.counter_total("serve.throttled")
        if throttled < shed:
            problems.append(f"serve.throttled counter ({throttled}) "
                            f"undercounts the {shed} shed requests")

    # ---- store is untouched by being served --------------------------
    with AnalysisStore(store_path) as reader:
        if reader.contract_count() != len(addresses):
            problems.append("serving mutated the settled contract count")

    if problems:
        print("serve gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"serve gate passed: {identical} byte-identical answers, "
          f"p99 {p99:.2f}ms under the {args.p99_ms}ms bound, "
          f"{shed} fast 429s at 2x over-admission")
    return 0


if __name__ == "__main__":
    sys.exit(main())
